//! Smoke tests for the figure/table regeneration pipeline: small-scale versions of every
//! experiment the bench binaries run, checking that the *shape* of each result matches the
//! paper's claims.

use analysis::prelude::*;
use noise::DeviceModel;
use protocol::session::Impersonation;

#[test]
fn table1_shape_matches_the_paper() {
    let rows = bench::table1_rows();
    assert_eq!(rows.len(), 5);
    let proposed = rows.last().unwrap();
    assert_eq!(proposed.protocol, "Proposed UA-DI-QSDC");
    assert!(proposed.user_authentication);
    assert_eq!(proposed.qubits_per_bit, 1.0);
    assert!(rows[..4].iter().all(|r| !r.user_authentication));
    // Rendering succeeds and includes every protocol.
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.protocol.clone(), r.qubits_per_bit.to_string()])
        .collect();
    let md = render_markdown_table(&["protocol", "qubits/bit"], &cells);
    assert!(md.contains("Proposed UA-DI-QSDC"));
}

#[test]
fn fig2_shape_high_fidelity_at_eta_10() {
    let rows = bench::fig2_experiment(&DeviceModel::ibm_brisbane_like(), 10, 512, 101);
    assert_eq!(rows.len(), 4);
    for row in &rows {
        assert_eq!(row.shots, 512);
        assert!(
            row.accuracy() > 0.85,
            "paper reports ≥0.95 average fidelity at η=10; {} gave {}",
            row.encoded,
            row.accuracy()
        );
        // The dominant outcome is the encoded message.
        let max_count = *row.counts.iter().max().unwrap();
        let encoded_index = ["00", "01", "10", "11"]
            .iter()
            .position(|&l| l == row.encoded)
            .unwrap();
        assert_eq!(row.counts[encoded_index], max_count);
    }
    let mean_fidelity: f64 = rows.iter().map(|r| r.fidelity).sum::<f64>() / 4.0;
    assert!(mean_fidelity > 0.85);
}

#[test]
fn fig3_shape_monotone_decay_and_sixty_percent_crossing() {
    // Coarse version of the sweep: the accuracy decreases (roughly) with η, stays high at
    // η = 10 and lands in the vicinity of the paper's 60 % threshold by η = 700.
    let etas = [10usize, 200, 400, 700];
    let points = bench::fig3_experiment(&DeviceModel::ibm_brisbane_like(), &etas, 384, 202);
    assert_eq!(points.len(), 4);
    assert!(
        points[0].accuracy > 0.9,
        "η=10 accuracy: {}",
        points[0].accuracy
    );
    assert!(
        points[3].accuracy < points[0].accuracy - 0.2,
        "η=700 must be far below η=10: {points:?}"
    );
    assert!(
        points[3].accuracy < 0.72,
        "η=700 accuracy should approach the paper's ~60% threshold, got {}",
        points[3].accuracy
    );
    assert!(points[3].accuracy > 0.3);
    // The trend over the sweep is negative.
    let trend: Vec<(f64, f64)> = points.iter().map(|p| (p.eta as f64, p.accuracy)).collect();
    let (slope, _) = linear_trend(&trend).unwrap();
    assert!(slope < 0.0);
}

#[test]
fn impersonation_detection_curve_shape() {
    let points = bench::impersonation_experiment(&[1, 3], Impersonation::OfAlice, 80, 303);
    assert_eq!(points.len(), 2);
    assert!(points[0].measured < points[1].measured + 0.05);
    assert!((points[0].analytic - 0.75).abs() < 1e-12);
    assert!(points[1].analytic > 0.98);
    for p in &points {
        assert!(p.deviation() < 0.12, "{p:?}");
    }
}

#[test]
fn channel_attack_rows_shape() {
    let (attacked, honest) =
        bench::channel_attack_experiment(bench::ChannelAttackKind::ManInTheMiddle, 4, 404);
    assert_eq!(attacked.delivered, 0);
    assert_eq!(honest.delivered, 4);
    assert!(attacked.detection_rate > 0.99);
    assert!(honest.detection_rate < 0.01);
    // Under MITM the second CHSH check shows no Bell violation.
    if let Some(s2) = attacked.mean_chsh_round2 {
        assert!(s2 <= 2.1);
    }
    assert!(honest.mean_chsh_round2.unwrap() > 2.2);
}

#[test]
fn chsh_estimation_spread_shrinks_with_more_pairs() {
    let points = bench::chsh_baseline_experiment(&[50, 800], &[0.0], 6, 505);
    assert_eq!(points.len(), 2);
    let small = &points[0];
    let large = &points[1];
    assert!(
        small.std_dev > large.std_dev,
        "more check pairs must tighten the estimate: {points:?}"
    );
    assert!((large.mean_chsh - 2.0 * std::f64::consts::SQRT_2).abs() < 0.2);
}
