//! Golden wire-format fixtures for the cross-process shard pipeline.
//!
//! `ShardPlan`, `ShardResult` and `MergeCheckpoint` are shipped between
//! processes (and persisted on shared disks) as JSON, so a fleet depends on
//! their exact shape. The canonical files under `tests/fixtures/` lock that
//! format: each test asserts that **today's code still parses the checked-in
//! bytes** to the expected value *and* still serializes that value to the
//! identical bytes — any accidental field rename, reorder, or representation
//! change turns these tests red before it breaks a fleet.
//!
//! To regenerate after an *intentional* format change (which requires a
//! checkpoint-version bump for `MergeCheckpoint`):
//!
//! ```text
//! UA_DI_QSDC_UPDATE_FIXTURES=1 cargo test --test wire_format
//! ```

use bench::shard_io::demo_scenario;
use ua_di_qsdc::prelude::*;
use ua_di_qsdc::protocol::engine::queue::{content_fingerprint, CHECKPOINT_VERSION};

use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// In update mode, (re)writes the fixture; otherwise asserts the checked-in
/// bytes equal today's serialization of the same value.
fn check_bytes(name: &str, generated: &str) -> String {
    let path = fixture_path(name);
    if std::env::var_os(ua_di_qsdc::protocol::env_keys::UPDATE_FIXTURES).is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, generated).unwrap();
        return generated.to_string();
    }
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {}: {e}\n(run with UA_DI_QSDC_UPDATE_FIXTURES=1 to create it)",
            path.display()
        )
    });
    assert_eq!(
        on_disk, generated,
        "{name}: today's serialization diverged from the checked-in wire format"
    );
    on_disk
}

/// The deterministic artifacts every fixture derives from: the `shardctl`
/// demo scenario, a 6-trial run planned under seed 99, and the sub-shard
/// covering trials 2..4.
fn artifacts() -> (Scenario, ShardPlan, ShardPlan) {
    let scenario =
        demo_scenario("intercept", 7, BackendKind::DensityMatrix).expect("demo scenario builds");
    let whole = SessionEngine::new(99).plan(&scenario, 6);
    let sub = whole.subrange(2, 2);
    (scenario, whole, sub)
}

#[test]
fn shard_plan_wire_format_is_stable() {
    let (scenario, whole, sub) = artifacts();
    let text = check_bytes("shard_plan.json", &serde::json::to_string(&sub));
    let parsed: ShardPlan = serde::json::from_str(&text).expect("fixture still parses");
    assert_eq!(parsed, sub);
    // The parsed plan is fully usable: provenance validates and the
    // fingerprint still matches the scenario it carries.
    parsed.validate().expect("fixture plan validates");
    assert_eq!(parsed.scenario, scenario);
    assert_eq!(parsed.fingerprint, scenario.fingerprint());
    assert_eq!(parsed.master_seed, whole.master_seed);
    assert_eq!((parsed.trial_start, parsed.trial_count), (2, 2));
}

#[test]
fn shard_result_wire_formats_are_stable() {
    let (_, _, sub) = artifacts();
    let engine = SessionEngine::new(0);
    for (name, output) in [
        ("shard_result_summary.json", ShardOutput::Summary),
        ("shard_result_outcomes.json", ShardOutput::Outcomes),
    ] {
        let result = engine.execute_shard(&sub, output).expect("shard executes");
        let text = check_bytes(name, &serde::json::to_string(&result));
        let parsed: ShardResult = serde::json::from_str(&text).expect("fixture still parses");
        assert_eq!(parsed, result, "{name}");
        let payload: &ShardPayload = &parsed.payload;
        assert_eq!(payload.kind(), output.as_str());
        assert_eq!(payload.trials(), 2);
    }
}

/// The deterministic campaign every campaign fixture derives from: the demo
/// scenario swept over η × both backends, two trials per point, seed 99.
fn fixture_campaign() -> Campaign {
    let base =
        demo_scenario("intercept", 7, BackendKind::DensityMatrix).expect("demo scenario builds");
    Campaign {
        label: "wire-fixture".to_string(),
        master_seed: 99,
        trials: 2,
        workload: CampaignWorkload::Session { base },
        space: CampaignSpace::Grid(vec![
            Axis::Eta(vec![0, 10]),
            Axis::Backend(BackendKind::ALL.to_vec()),
        ]),
    }
}

#[test]
fn campaign_wire_format_is_stable() {
    let campaign = fixture_campaign();
    let text = check_bytes("campaign.json", &serde::json::to_string(&campaign));
    let parsed: Campaign = serde::json::from_str(&text).expect("fixture still parses");
    assert_eq!(parsed, campaign);
    // The parsed campaign is fully usable: it expands to the same points
    // (grid product, last axis fastest) under the same fingerprint.
    assert_eq!(parsed.fingerprint(), campaign.fingerprint());
    let points = parsed.expand().expect("fixture campaign expands");
    assert_eq!(points.len(), 2 * BackendKind::ALL.len());
    assert_eq!(
        points[1].coords[1],
        AxisValue::Backend(BackendKind::Statevector)
    );
    // The fixture bytes pin every backend's canonical serde name — including
    // the twirled substrate.
    for kind in BackendKind::ALL {
        assert!(
            text.contains(&format!("\"{kind}\"")),
            "fixture must spell out {kind}"
        );
    }
}

#[test]
fn campaign_report_wire_format_is_stable() {
    let report = fixture_campaign()
        .run_direct(Parallelism::Serial, &NoSampler)
        .expect("fixture campaign runs");
    let text = check_bytes("campaign_report.json", &serde::json::to_string(&report));
    let parsed: CampaignReport = serde::json::from_str(&text).expect("fixture still parses");
    assert_eq!(parsed, report);
    assert_eq!(parsed.points.len(), 2 * BackendKind::ALL.len());
    for point in &parsed.points {
        let point: &CampaignPointReport = point;
        let summary = point.summary.as_ref().expect("session points summarize");
        assert_eq!(summary.trials, 2);
        // The demo scenario is adversarial, so the interval lands in the
        // detection column — and a Wilson interval always brackets its rate.
        let interval: RateInterval = point
            .detection
            .or(point.false_alarm)
            .expect("abort rate is classified");
        assert!(interval.lower <= interval.rate && interval.rate <= interval.upper);
    }
}

/// `shardctl queue status` / `shardctl campaign status` print these over
/// JSON pipes, so fleet tooling parses them; their shapes are wire format
/// just like the checkpoints they summarize.
#[test]
fn status_wire_formats_are_stable() {
    let queue = QueueStatus {
        total_shards: 3,
        pending: 1,
        leased: 1,
        done: 1,
        trials_done: 2,
        trials_total: 6,
    };
    let text = check_bytes("queue_status.json", &serde::json::to_string(&queue));
    let parsed: QueueStatus = serde::json::from_str(&text).expect("fixture still parses");
    assert_eq!(parsed, queue);
    assert!(!parsed.complete());

    let campaign = CampaignStatus {
        points_total: 8,
        points_done: 8,
        trials_done: 16,
        trials_total: 16,
    };
    let text = check_bytes("campaign_status.json", &serde::json::to_string(&campaign));
    let parsed: CampaignStatus = serde::json::from_str(&text).expect("fixture still parses");
    assert_eq!(parsed, campaign);
    assert!(parsed.complete());
}

/// The `qsdc-serve` protocol: every request, every response, and the spool
/// job manifest. One fixture per direction locks the full enum surface —
/// a deployed client survives a server upgrade exactly as long as these
/// bytes do not move.
#[test]
fn serve_wire_formats_are_stable() {
    use ua_di_qsdc::protocol::wire::{
        ErrorKind, JobManifest, JobSpec, JobState, Request, Response, MANIFEST_VERSION,
        WIRE_VERSION,
    };
    let (scenario, _, _) = artifacts();
    let engine = SessionEngine::new(99);
    let summary = engine
        .run_trials(&scenario, 2)
        .expect("fixture summary runs");

    let requests = vec![
        Request::Submit {
            job: JobSpec::Session {
                scenario: scenario.clone(),
                trials: 6,
                seed: 99,
            },
        },
        Request::Submit {
            job: JobSpec::Campaign {
                campaign: fixture_campaign(),
            },
        },
        Request::Cancel { job: 1 },
        Request::Status { job: 1 },
        Request::Ping,
    ];
    let text = check_bytes("serve_requests.json", &serde::json::to_string(&requests));
    let parsed: Vec<Request> = serde::json::from_str(&text).expect("fixture still parses");
    assert_eq!(parsed, requests);

    let responses = vec![
        Response::Hello {
            server: "qsdc-serve fixture".to_string(),
            wire_version: WIRE_VERSION,
            quota: 4,
            snapshot_trials: 8,
        },
        Response::Accepted { job: 1 },
        Response::Busy {
            in_flight: 4,
            quota: 4,
        },
        Response::Snapshot {
            job: 1,
            trials_done: 2,
            trials_total: 6,
            summary: summary.clone(),
        },
        Response::Done {
            job: 1,
            summary: Some(summary),
            report: None,
        },
        Response::Cancelled { job: 2 },
        Response::Status {
            job: 1,
            state: JobState::Running,
            trials_done: 2,
            trials_total: 6,
        },
        Response::Pong,
        Response::Error {
            kind: ErrorKind::Malformed,
            message: "not a request".to_string(),
        },
    ];
    let text = check_bytes("serve_responses.json", &serde::json::to_string(&responses));
    let parsed: Vec<Response> = serde::json::from_str(&text).expect("fixture still parses");
    assert_eq!(parsed, responses);
    // Every named error kind and job state keeps its canonical spelling.
    for kind in [
        ErrorKind::Malformed,
        ErrorKind::Oversized,
        ErrorKind::UnknownJob,
        ErrorKind::Unsupported,
        ErrorKind::Internal,
    ] {
        let json = serde::json::to_string(&kind);
        assert_eq!(serde::json::from_str::<ErrorKind>(&json).unwrap(), kind);
    }
    for state in [JobState::Running, JobState::Done, JobState::Cancelled] {
        let json = serde::json::to_string(&state);
        assert_eq!(serde::json::from_str::<JobState>(&json).unwrap(), state);
    }

    let manifest = JobManifest {
        version: MANIFEST_VERSION,
        job: 1,
        client: "client-127.0.0.1:40000".to_string(),
        spec: JobSpec::Session {
            scenario,
            trials: 6,
            seed: 99,
        },
        shard_trials: 2,
    };
    let text = check_bytes(
        "serve_job_manifest.json",
        &serde::json::to_string(&manifest),
    );
    let parsed: JobManifest = serde::json::from_str(&text).expect("fixture still parses");
    assert_eq!(parsed, manifest);
    assert_eq!(parsed.version, MANIFEST_VERSION);
}

#[test]
fn merge_checkpoint_wire_format_is_stable() {
    let (_, whole, sub) = artifacts();
    let engine = SessionEngine::new(0);
    let done_result = engine
        .execute_shard(&whole.subrange(0, 2), ShardOutput::Summary)
        .expect("shard executes");
    let done_bytes = serde::json::to_string(&done_result).into_bytes();
    // One slot in each lifecycle state, so the fixture locks all three
    // `SlotState` encodings (the lease expiry is a fixed instant — wall
    // clocks have no place in a golden file).
    let checkpoint = MergeCheckpoint {
        version: CHECKPOINT_VERSION,
        plan: whole.clone(),
        output: ShardOutput::Summary,
        shards: vec![
            ShardSlot {
                trial_start: 0,
                trial_count: 2,
                state: SlotState::Done {
                    result_fingerprint: content_fingerprint(&done_bytes),
                },
            },
            ShardSlot {
                trial_start: 2,
                trial_count: 2,
                state: SlotState::Leased {
                    worker: "fleet-worker-1".to_string(),
                    expires_at_ms: 1_700_000_000_000,
                },
            },
            ShardSlot {
                trial_start: 4,
                trial_count: 2,
                state: SlotState::Pending,
            },
        ],
    };
    let text = check_bytes(
        "merge_checkpoint.json",
        &serde::json::to_string(&checkpoint),
    );
    let parsed: MergeCheckpoint = serde::json::from_str(&text).expect("fixture still parses");
    assert_eq!(parsed, checkpoint);
    assert_eq!(parsed.version, CHECKPOINT_VERSION);
    parsed
        .plan
        .validate()
        .expect("fixture checkpoint plan validates");
    // The checkpointed sub-ranges still re-derive valid, re-stamped plans.
    let rederived = parsed.plan.subrange(2, 2);
    assert_eq!(rederived, sub);
}
