//! Cross-crate integration tests for the security claims: every attack from the paper's
//! Section III is detected by the protocol, and the classical channel leaks nothing.

use attacks::prelude::*;
use ua_di_qsdc::prelude::*;

fn attack_config() -> SessionConfig {
    SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(220)
        .auth_error_tolerance(0.0)
        .build()
        .unwrap()
}

#[test]
fn impersonation_of_either_party_is_detected_with_long_identities() {
    let mut rng = rng_from_seed(11);
    let identities = IdentityPair::generate(10, &mut rng);
    for target in [Impersonation::OfAlice, Impersonation::OfBob] {
        let summary =
            run_impersonation_trials(&attack_config(), &identities, target, 10, &mut rng).unwrap();
        assert_eq!(
            summary.undetected_deliveries, 0,
            "an impersonator with a 10-qubit identity gap must never receive the message: {summary}"
        );
        assert!(summary.detection_rate > 0.9, "{summary}");
    }
}

#[test]
fn impersonation_detection_rate_follows_quarter_power_law() {
    let mut rng = rng_from_seed(12);
    let identities = IdentityPair::generate(1, &mut rng);
    let summary = run_impersonation_trials(
        &attack_config(),
        &identities,
        Impersonation::OfBob,
        300,
        &mut rng,
    )
    .unwrap();
    // l = 1: analytic detection probability is 0.75.
    assert!((summary.detection_rate - 0.75).abs() < 0.08, "{summary}");
}

#[test]
fn intercept_resend_never_delivers_and_kills_the_chsh_violation() {
    let mut rng = rng_from_seed(13);
    let identities = IdentityPair::generate(4, &mut rng);
    let summary = run_attack_trials(
        &attack_config(),
        &identities,
        InterceptResendAttack::computational,
        5,
        &mut rng,
    )
    .unwrap();
    assert_eq!(summary.delivered, 0, "{summary}");
    assert!(summary.mean_chsh_round1.unwrap() > 2.2, "round 1 precedes the attack");
    if let Some(s2) = summary.mean_chsh_round2 {
        assert!(s2 <= 2.1, "round 2 must not show a Bell violation, got {s2}");
    }
}

#[test]
fn mitm_and_entangle_measure_are_detected_every_time() {
    let mut rng = rng_from_seed(14);
    let identities = IdentityPair::generate(4, &mut rng);
    let mitm = run_attack_trials(
        &attack_config(),
        &identities,
        ManInTheMiddleAttack::random_computational,
        5,
        &mut rng,
    )
    .unwrap();
    assert_eq!(mitm.delivered, 0, "{mitm}");
    let entangle = run_attack_trials(
        &attack_config(),
        &identities,
        EntangleMeasureAttack::full,
        5,
        &mut rng,
    )
    .unwrap();
    assert_eq!(entangle.delivered, 0, "{entangle}");
    assert!(entangle.detection_rate() > 0.99);
}

#[test]
fn weak_entangling_probes_may_pass_but_strong_ones_never_do() {
    // The information/disturbance trade-off: a weak probe gains little and may slip through;
    // the full CNOT probe (which would give Eve the whole computational value) is always caught.
    let mut rng = rng_from_seed(15);
    let identities = IdentityPair::generate(4, &mut rng);
    let strong = run_attack_trials(
        &attack_config(),
        &identities,
        EntangleMeasureAttack::full,
        4,
        &mut rng,
    )
    .unwrap();
    assert_eq!(strong.delivered, 0);
    let weak = run_attack_trials(
        &attack_config(),
        &identities,
        || EntangleMeasureAttack::with_strength(0.05),
        4,
        &mut rng,
    )
    .unwrap();
    // A 5% probe barely disturbs the state; the protocol usually proceeds.
    assert!(weak.delivered >= 2, "{weak}");
}

#[test]
fn classical_transcripts_leak_nothing_across_many_sessions() {
    let mut rng = rng_from_seed(16);
    let identities = IdentityPair::generate(4, &mut rng);
    let config = attack_config();
    let transcripts: Vec<_> = (0..30)
        .map(|_| {
            run_session(&config, &identities, &mut rng)
                .unwrap()
                .transcript
        })
        .collect();
    let audit = LeakageAudit::with_identity(&transcripts, &identities.bob);
    assert!(audit.structurally_clean(), "{audit}");
    assert!(audit.bell_distribution_bias() < 0.12, "{audit}");
    assert!(audit.mutual_information_with_id_b.unwrap() < 0.12, "{audit}");
}

#[test]
fn baseline_without_authentication_cannot_detect_an_impersonator() {
    // The contrast that motivates the paper: same attack, no defence in the baseline.
    let mut rng = rng_from_seed(17);
    let config = attack_config();
    let message = SecretMessage::random(config.message_bits(), &mut rng);
    let mut tap = qchannel::quantum::NoTap;
    let outcome = run_baseline_di_qsdc(&config, &message, &mut tap, &mut rng).unwrap();
    assert!(outcome.delivered, "{outcome}");
}
