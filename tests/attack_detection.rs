//! Cross-crate integration tests for the security claims: every attack from the paper's
//! Section III is detected when its scenario runs through the `SessionEngine`, and the
//! classical channel leaks nothing.

use attacks::prelude::*;
use ua_di_qsdc::prelude::*;

fn attack_config() -> SessionConfig {
    SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(220)
        .auth_error_tolerance(0.0)
        .build()
        .unwrap()
}

#[test]
fn impersonation_of_either_party_is_detected_with_long_identities() {
    let identities = IdentityPair::generate(10, &mut rng_from_seed(11));
    let engine = SessionEngine::new(11);
    for adversary in [Adversary::ImpersonateAlice, Adversary::ImpersonateBob] {
        let scenario = Scenario::new(attack_config(), identities.clone())
            .with_label(adversary.name())
            .with_adversary(adversary);
        let summary = engine.run_trials(&scenario, 10).unwrap();
        assert_eq!(
            summary.delivered, 0,
            "an impersonator with a 10-qubit identity gap must never receive the message: {summary}"
        );
        assert!(summary.detection_rate() > 0.9, "{summary}");
    }
}

#[test]
fn impersonation_detection_rate_follows_quarter_power_law() {
    let identities = IdentityPair::generate(1, &mut rng_from_seed(12));
    let summary = run_impersonation_trials(
        &attack_config(),
        &identities,
        Impersonation::OfBob,
        300,
        &mut rng_from_seed(12),
    )
    .unwrap();
    // l = 1: analytic detection probability is 0.75.
    assert!((summary.detection_rate - 0.75).abs() < 0.08, "{summary}");
}

#[test]
fn intercept_resend_never_delivers_and_kills_the_chsh_violation() {
    let identities = IdentityPair::generate(4, &mut rng_from_seed(13));
    let scenario = Scenario::new(attack_config(), identities).with_adversary(
        Adversary::InterceptResend(qchannel::taps::InterceptBasis::Computational),
    );
    let summary = SessionEngine::new(13).run_trials(&scenario, 5).unwrap();
    assert_eq!(summary.delivered, 0, "{summary}");
    assert!(
        summary.mean_chsh_round1.unwrap() > 2.2,
        "round 1 precedes the attack"
    );
    if let Some(s2) = summary.mean_chsh_round2 {
        assert!(
            s2 <= 2.1,
            "round 2 must not show a Bell violation, got {s2}"
        );
    }
}

#[test]
fn mitm_and_entangle_measure_are_detected_every_time() {
    let identities = IdentityPair::generate(4, &mut rng_from_seed(14));
    let scenarios = [
        Scenario::new(attack_config(), identities.clone())
            .with_label("mitm")
            .with_adversary(Adversary::ManInTheMiddle(
                qchannel::taps::SubstituteState::RandomComputational,
            )),
        Scenario::new(attack_config(), identities)
            .with_label("entangle-measure")
            .with_adversary(Adversary::EntangleMeasure { strength: 1.0 }),
    ];
    let summaries = SessionEngine::new(14).run_batch(&scenarios, 5).unwrap();
    for summary in &summaries {
        assert_eq!(summary.delivered, 0, "{summary}");
        assert!(summary.detection_rate() > 0.99, "{summary}");
    }
}

#[test]
fn weak_entangling_probes_may_pass_but_strong_ones_never_do() {
    // The information/disturbance trade-off: a weak probe gains little and may slip through;
    // the full CNOT probe (which would give Eve the whole computational value) is always caught.
    let identities = IdentityPair::generate(4, &mut rng_from_seed(15));
    let engine = SessionEngine::new(15);
    let strong = Scenario::new(attack_config(), identities.clone())
        .with_label("strong-probe")
        .with_adversary(Adversary::EntangleMeasure { strength: 1.0 });
    let strong_summary = engine.run_trials(&strong, 4).unwrap();
    assert_eq!(strong_summary.delivered, 0);
    let weak = Scenario::new(attack_config(), identities)
        .with_label("weak-probe")
        .with_adversary(Adversary::EntangleMeasure { strength: 0.05 });
    let weak_summary = engine.run_trials(&weak, 4).unwrap();
    // A 5% probe barely disturbs the state; the protocol usually proceeds.
    assert!(weak_summary.delivered >= 2, "{weak_summary}");
}

#[test]
fn classical_transcripts_leak_nothing_across_many_sessions() {
    let identities = IdentityPair::generate(4, &mut rng_from_seed(16));
    let scenario = Scenario::new(attack_config(), identities.clone()).with_label("leakage");
    let transcripts: Vec<_> = SessionEngine::new(16)
        .run_outcomes(&scenario, 30)
        .unwrap()
        .into_iter()
        .map(|outcome| outcome.transcript)
        .collect();
    let audit = LeakageAudit::with_identity(&transcripts, &identities.bob);
    assert!(audit.structurally_clean(), "{audit}");
    assert!(audit.bell_distribution_bias() < 0.12, "{audit}");
    assert!(
        audit.mutual_information_with_id_b.unwrap() < 0.12,
        "{audit}"
    );
}

#[test]
fn baseline_without_authentication_cannot_detect_an_impersonator() {
    // The contrast that motivates the paper: same attack, no defence in the baseline.
    let mut rng = rng_from_seed(17);
    let config = attack_config();
    let message = SecretMessage::random(config.message_bits(), &mut rng);
    let mut tap = qchannel::quantum::NoTap;
    let outcome = run_baseline_di_qsdc(&config, &message, &mut tap, &mut rng).unwrap();
    assert!(outcome.delivered, "{outcome}");
}
