//! Cross-crate integration tests: the whole stack (mathkit → qsim → noise → qchannel →
//! protocol) exercised through the facade crate's public API — scenarios executed by the
//! `SessionEngine`, the same way a downstream user would drive it.

use ua_di_qsdc::prelude::*;

fn config_with_channel(eta: usize, message_bits: usize) -> SessionConfig {
    let channel = if eta == 0 {
        ChannelSpec::ideal()
    } else {
        ChannelSpec::noisy_identity_chain(eta, DeviceModel::ibm_brisbane_like())
    };
    SessionConfig::builder()
        .message_bits(message_bits)
        .check_bits(4)
        .di_check_pairs(240)
        .channel(channel)
        .build()
        .expect("valid config")
}

#[test]
fn ideal_channel_session_delivers_exact_message() {
    let identities = IdentityPair::generate(6, &mut rng_from_seed(1));
    let message = SecretMessage::from_bitstring("11010010101011110000").unwrap();
    let scenario = Scenario::new(config_with_channel(0, message.len()), identities)
        .with_message(message.clone());
    let outcome = SessionEngine::new(1).run(&scenario).unwrap();
    assert!(outcome.is_delivered(), "{}", outcome.status);
    assert_eq!(outcome.received_message.unwrap(), message);
    assert_eq!(outcome.message_bit_error_rate, Some(0.0));
}

#[test]
fn short_noisy_channel_session_has_high_accuracy_and_chsh_violation() {
    let identities = IdentityPair::generate(6, &mut rng_from_seed(2));
    let scenario = Scenario::new(config_with_channel(10, 24), identities);
    let outcome = SessionEngine::new(2).run(&scenario).unwrap();
    assert!(outcome.is_delivered(), "{}", outcome.status);
    assert!(outcome.message_accuracy().unwrap() > 0.85);
    let s1 = outcome.di_check_round1.unwrap().chsh.unwrap();
    let s2 = outcome.di_check_round2.unwrap().chsh.unwrap();
    assert!(
        s1 > 2.0 && s2 > 2.0,
        "honest noisy run keeps both CHSH rounds quantum (s1={s1}, s2={s2})"
    );
    assert!(s1 <= 2.0 * std::f64::consts::SQRT_2 + 0.4);
}

#[test]
fn text_round_trip_through_the_protocol() {
    let identities = IdentityPair::generate(4, &mut rng_from_seed(3));
    let message = SecretMessage::from_text("qsdc");
    let scenario =
        Scenario::new(config_with_channel(0, message.len()), identities).with_message(message);
    let outcome = SessionEngine::new(3).run(&scenario).unwrap();
    assert_eq!(outcome.received_message.unwrap().to_text_lossy(), "qsdc");
}

#[test]
fn resource_accounting_matches_paper_formula() {
    // N + 2l + 2d pairs, one transmitted qubit per pair except the first check round.
    let identities = IdentityPair::generate(5, &mut rng_from_seed(4));
    let config = config_with_channel(0, 16);
    let scenario = Scenario::new(config.clone(), identities.clone());
    let outcome = SessionEngine::new(4).run(&scenario).unwrap();
    let n = config.message_qubits();
    let d = config.di_check_pairs();
    let l = identities.qubit_len();
    assert_eq!(outcome.resources.total_pairs, n + 2 * l + 2 * d);
    assert_eq!(outcome.resources.message_pairs, n);
    assert_eq!(outcome.resources.identity_pairs, 2 * l);
    assert_eq!(outcome.resources.check_pairs, 2 * d);
    assert_eq!(outcome.resources.transmitted_qubits, n + 2 * l + d);
    assert!((outcome.resources.qubits_per_message_bit - 1.0).abs() < 1e-12);
}

#[test]
fn transcript_is_public_but_harmless() {
    let identities = IdentityPair::generate(4, &mut rng_from_seed(5));
    let scenario = Scenario::new(config_with_channel(0, 16), identities);
    let outcome = SessionEngine::new(5).run(&scenario).unwrap();
    let audit = LeakageAudit::structural(std::slice::from_ref(&outcome.transcript));
    assert!(audit.structurally_clean());
    assert!(
        outcome.transcript.len() >= 8,
        "all protocol phases announce something"
    );
    assert!(!outcome.transcript.contains_abort());
}

#[test]
fn sessions_are_reproducible_for_a_fixed_master_seed() {
    let identities = IdentityPair::generate(4, &mut rng_from_seed(6));
    let scenario = Scenario::new(config_with_channel(10, 16), identities);
    let a = SessionEngine::new(7).run(&scenario).unwrap();
    let b = SessionEngine::new(7).run(&scenario).unwrap();
    assert_eq!(a, b, "identical engines replay identical outcomes");
    assert_eq!(a.sent_message, b.sent_message);
    assert_eq!(
        a.di_check_round1.unwrap().chsh,
        b.di_check_round1.unwrap().chsh
    );
}

#[test]
fn longer_channels_degrade_delivered_accuracy() {
    let identities = IdentityPair::generate(4, &mut rng_from_seed(8));
    let scenarios: Vec<Scenario> = [10usize, 400]
        .into_iter()
        .map(|eta| {
            let config = SessionConfig::builder()
                .message_bits(40)
                .check_bits(8)
                .di_check_pairs(240)
                .check_bit_error_tolerance(1.0) // never abort on integrity so we can observe accuracy
                .auth_error_tolerance(1.0)
                .channel(ChannelSpec::noisy_identity_chain(
                    eta,
                    DeviceModel::ibm_brisbane_like(),
                ))
                .build()
                .unwrap();
            Scenario::new(config, identities.clone()).with_label(format!("eta-{eta}"))
        })
        .collect();
    let summaries = SessionEngine::new(8).run_batch(&scenarios, 1).unwrap();
    for summary in &summaries {
        assert_eq!(summary.delivered, 1, "{summary}");
    }
    let accuracies: Vec<f64> = summaries
        .iter()
        .map(|s| s.mean_message_accuracy.unwrap())
        .collect();
    assert!(
        accuracies[0] > accuracies[1],
        "accuracy must degrade with channel length: {accuracies:?}"
    );
}
