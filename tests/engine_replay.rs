//! Replay guarantees of the execution engine: scenarios serde round-trip, and a fixed master
//! seed reproduces `run_batch` results bit for bit — independent of batch composition, order,
//! and the number of worker threads.
//!
//! The CI `determinism` job runs this file several times with the `UA_DI_QSDC_PARALLELISM`
//! environment variable set to `serial`, `threads:2` and `threads:8`; the env-selected tests
//! below compare that mode's results against the serial baseline and fail on any divergence.

use ua_di_qsdc::prelude::*;

/// The parallelism mode under test: taken from `UA_DI_QSDC_PARALLELISM` when set (as the CI
/// determinism matrix does), serial otherwise.
fn env_parallelism() -> Parallelism {
    Parallelism::from_env().unwrap_or(Parallelism::Serial)
}

fn scenarios() -> Vec<Scenario> {
    let mut rng = rng_from_seed(77);
    let identities = IdentityPair::generate(4, &mut rng);
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(64)
        .build()
        .unwrap();
    vec![
        Scenario::new(config.clone(), identities.clone()).with_label("honest"),
        Scenario::new(config.clone(), identities.clone())
            .with_label("fixed-message")
            .with_message(SecretMessage::from_bitstring("10110100").unwrap()),
        Scenario::new(config.clone(), identities.clone())
            .with_label("impersonation")
            .with_adversary(Adversary::ImpersonateBob),
        Scenario::new(config.clone(), identities.clone())
            .with_label("intercept")
            .with_adversary(Adversary::InterceptResend(
                qchannel::taps::InterceptBasis::Computational,
            )),
        Scenario::new(config.clone(), identities.clone())
            .with_label("mitm")
            .with_adversary(Adversary::ManInTheMiddle(
                qchannel::taps::SubstituteState::RandomBb84,
            )),
        Scenario::new(config.clone(), identities.clone())
            .with_label("weak-probe")
            .with_adversary(Adversary::EntangleMeasure { strength: 0.3 }),
        // The sampled statevector substrate carries the same replay, serde
        // and sharding guarantees as the default emulation.
        Scenario::new(config.clone(), identities.clone())
            .with_label("honest-statevector")
            .with_backend(BackendKind::Statevector),
        Scenario::new(config, identities)
            .with_label("intercept-statevector")
            .with_adversary(Adversary::InterceptResend(
                qchannel::taps::InterceptBasis::Computational,
            ))
            .with_backend(BackendKind::Statevector),
    ]
}

#[test]
fn scenario_serde_round_trips() {
    for scenario in scenarios() {
        let json = serde::json::to_string(&scenario);
        let back: Scenario = serde::json::from_str(&json).expect("scenario deserializes");
        assert_eq!(back, scenario, "via {json}");
        assert_eq!(
            back.fingerprint(),
            scenario.fingerprint(),
            "fingerprints must survive the round trip"
        );
    }
}

#[test]
fn deserialized_scenarios_replay_identically() {
    // A scenario shipped through its serialized form (e.g. to a remote worker) must produce
    // exactly the outcomes of the original.
    let engine = SessionEngine::new(2024);
    for scenario in scenarios() {
        let json = serde::json::to_string(&scenario);
        let shipped: Scenario = serde::json::from_str(&json).unwrap();
        let original = engine.run(&scenario).unwrap();
        let replayed = engine.run(&shipped).unwrap();
        assert_eq!(original, replayed, "scenario `{}`", scenario.label);
    }
}

#[test]
fn run_batch_replays_bit_for_bit_under_a_fixed_master_seed() {
    let batch = scenarios();
    let trials = 3;
    let first = SessionEngine::new(424242)
        .run_batch(&batch, trials)
        .unwrap();
    let second = SessionEngine::new(424242)
        .run_batch(&batch, trials)
        .unwrap();
    assert_eq!(
        first, second,
        "identical master seeds must replay identically"
    );
    // Bit-for-bit extends to the serialized form.
    assert_eq!(
        serde::json::to_string(&first),
        serde::json::to_string(&second)
    );
    // A different master seed gives a genuinely different execution.
    let third = SessionEngine::new(424243)
        .run_batch(&batch, trials)
        .unwrap();
    assert_ne!(first, third);
}

#[test]
fn run_batch_results_do_not_depend_on_batch_shape() {
    let batch = scenarios();
    let engine = SessionEngine::new(9000);
    let full = engine.run_batch(&batch, 2).unwrap();
    // Reversed order: summaries follow their scenarios.
    let reversed_batch: Vec<Scenario> = batch.iter().rev().cloned().collect();
    let reversed = engine.run_batch(&reversed_batch, 2).unwrap();
    for (summary, expected) in reversed.iter().zip(full.iter().rev()) {
        assert_eq!(summary, expected);
    }
    // Single-scenario slices: identical to their position in the full batch.
    for (scenario, expected) in batch.iter().zip(&full) {
        let alone = engine.run_trials(scenario, 2).unwrap();
        assert_eq!(&alone, expected);
    }
}

#[test]
fn threaded_run_batch_is_byte_identical_to_serial() {
    let batch = scenarios();
    let trials = 3;
    let serial = SessionEngine::new(77)
        .run_batch(&batch, trials)
        .expect("serial batch runs");
    let serial_bytes = serde::json::to_string(&serial);
    for n in [1usize, 2, 8] {
        let threaded = SessionEngine::new(77)
            .with_parallelism(Parallelism::Threads(n))
            .run_batch(&batch, trials)
            .expect("threaded batch runs");
        assert_eq!(threaded, serial, "Threads({n}) diverged from Serial");
        assert_eq!(
            serde::json::to_string(&threaded),
            serial_bytes,
            "Threads({n}) serialized form diverged from Serial"
        );
    }
    // The per-outcome path carries the same guarantee, down to transcripts.
    let serial_outcomes = SessionEngine::new(77)
        .run_outcomes(&batch[0], 4)
        .expect("serial outcomes run");
    for n in [2usize, 8] {
        let threaded_outcomes = SessionEngine::new(77)
            .with_parallelism(Parallelism::Threads(n))
            .run_outcomes(&batch[0], 4)
            .expect("threaded outcomes run");
        assert_eq!(threaded_outcomes, serial_outcomes);
    }
}

#[test]
fn env_selected_parallelism_matches_serial() {
    let mode = env_parallelism();
    let batch = scenarios();
    let serial = SessionEngine::new(20240916)
        .run_batch(&batch, 2)
        .expect("serial batch runs");
    let selected = SessionEngine::new(20240916)
        .with_parallelism(mode)
        .run_batch(&batch, 2)
        .expect("env-selected batch runs");
    assert_eq!(
        serde::json::to_string(&selected),
        serde::json::to_string(&serial),
        "parallelism mode {mode} diverged from the serial baseline"
    );
}

#[test]
fn env_selected_parallelism_replays_run_trials_with_stats() {
    let mode = env_parallelism();
    let scenario = &scenarios()[0];
    let engine = SessionEngine::new(4242).with_parallelism(mode);
    let (summary, stats) = engine
        .run_trials_with_stats(scenario, 5)
        .expect("trials run");
    assert_eq!(summary.trials, 5);
    assert_eq!(stats.tasks, 5);
    assert_eq!(
        stats.tasks_per_worker.iter().sum::<usize>(),
        5,
        "every trial must be accounted to exactly one worker: {stats}"
    );
    let reference = SessionEngine::new(4242)
        .run_trials(scenario, 5)
        .expect("serial trials run");
    assert_eq!(summary, reference);
}

#[test]
fn shards_shipped_as_json_merge_to_the_single_process_run() {
    // The full multi-process story in miniature, exactly as `shardctl
    // plan | run | merge` ships it: plans leave as JSON, every shard is
    // executed by a *fresh* engine built only from the deserialized plan,
    // results come back as JSON, and the merge reproduces the single-process
    // run byte for byte — for summary and outcome payloads alike.
    for scenario in scenarios() {
        let trials = 4;
        let engine = SessionEngine::new(777);
        let whole_summary = engine.run_trials(&scenario, trials).unwrap();
        let whole_outcomes = engine.run_outcomes(&scenario, trials).unwrap();

        let plans_json = serde::json::to_string(&engine.plan(&scenario, trials).split_into(3));
        let plans: Vec<ShardPlan> = serde::json::from_str(&plans_json).unwrap();
        for (output, expected) in [
            (ShardOutput::Summary, None),
            (ShardOutput::Outcomes, Some(&whole_outcomes)),
        ] {
            let results_json: Vec<String> = plans
                .iter()
                .map(|plan| {
                    // Worker process: any engine, any seed — the plan governs.
                    let result = SessionEngine::new(1).execute_shard(plan, output).unwrap();
                    serde::json::to_string(&result)
                })
                .collect();
            let results: Vec<ShardResult> = results_json
                .iter()
                .map(|json| serde::json::from_str(json).unwrap())
                .collect();
            match merge_shard_results(results).unwrap() {
                MergedRun::Summary(summary) => {
                    assert_eq!(summary, whole_summary, "scenario `{}`", scenario.label);
                    assert_eq!(
                        serde::json::to_string(&summary),
                        serde::json::to_string(&whole_summary)
                    );
                }
                MergedRun::Outcomes(outcomes) => {
                    assert_eq!(
                        &outcomes,
                        expected.unwrap(),
                        "scenario `{}`",
                        scenario.label
                    );
                    assert_eq!(
                        serde::json::to_string(&outcomes),
                        serde::json::to_string(expected.unwrap())
                    );
                }
            }
        }
    }
}

#[test]
fn trial_summaries_serde_round_trip() {
    let summaries = SessionEngine::new(5)
        .run_batch(&scenarios()[..2], 2)
        .unwrap();
    for summary in summaries {
        let json = serde::json::to_string(&summary);
        let back: TrialSummary = serde::json::from_str(&json).unwrap();
        assert_eq!(back, summary, "via {json}");
    }
}
