//! Campaign lowering tests: any declarative parameter-space campaign,
//! expanded onto per-point shard queues and drained by an interleaved,
//! crash-prone fleet, folds into a report **bit-identical** (`f64::to_bits`
//! on every rate, plus the serialized bytes) to executing each point
//! directly with a [`SessionEngine`] — plus expansion unit tests (empty
//! spaces, explicit point lists, duplicate rejection, fingerprint
//! stability).

use proptest::prelude::*;
use protocol::engine::{
    derive_point_seed, Adversary, Axis, AxisValue, BackendKind, Campaign, CampaignError,
    CampaignRun, CampaignSpace, CampaignWorkload, ClaimOutcome, NoSampler, Parallelism, Scenario,
    SessionEngine, ShardQueue, SubmitOutcome,
};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use qchannel::taps::InterceptBasis;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique campaign directory, removed on drop (also on assertion panics).
struct TempCampaignDir(PathBuf);

impl TempCampaignDir {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        TempCampaignDir(std::env::temp_dir().join(format!(
            "ua-di-qsdc-campaign-proptest-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempCampaignDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base_scenario(identity_seed: u64) -> Scenario {
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(24)
        .build()
        .expect("generated config is valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(identity_seed);
    let identities = IdentityPair::generate(2, &mut rng);
    Scenario::new(config, identities)
}

fn session_campaign(
    identity_seed: u64,
    master_seed: u64,
    trials: usize,
    axes: Vec<Axis>,
) -> Campaign {
    Campaign {
        label: "proptest".into(),
        master_seed,
        trials,
        workload: CampaignWorkload::Session {
            base: base_scenario(identity_seed),
        },
        space: CampaignSpace::Grid(axes),
    }
}

// ------------------------------------------------------------- expansion --

#[test]
fn empty_grid_and_empty_point_list_are_rejected() {
    let grid = session_campaign(1, 2, 3, vec![]);
    assert!(matches!(grid.expand(), Err(CampaignError::EmptySpace)));
    let mut points = grid.clone();
    points.space = CampaignSpace::Points(vec![]);
    assert!(matches!(points.expand(), Err(CampaignError::EmptySpace)));
}

#[test]
fn empty_axis_is_rejected_by_name() {
    let campaign = session_campaign(1, 2, 3, vec![Axis::Eta(vec![10]), Axis::Backend(vec![])]);
    match campaign.expand() {
        Err(CampaignError::EmptyAxis { axis }) => assert_eq!(axis, "backend"),
        other => panic!("expected EmptyAxis, got {other:?}"),
    }
}

#[test]
fn explicit_point_list_expands_as_written() {
    let mut campaign = session_campaign(1, 5, 2, vec![]);
    campaign.space = CampaignSpace::Points(vec![vec![
        AxisValue::Adversary(Adversary::InterceptResend(InterceptBasis::Computational)),
        AxisValue::Trials(4),
    ]]);
    let points = campaign.expand().expect("single point expands");
    assert_eq!(points.len(), 1);
    assert_eq!(
        points[0].trials, 4,
        "Trials coordinate overrides the default"
    );
    assert_eq!(points[0].seed, derive_point_seed(5, 0));
    let scenario = points[0].scenario.as_ref().expect("session point");
    assert!(scenario.label.contains("intercept-and-resend"));
}

#[test]
fn duplicate_points_are_rejected() {
    let campaign = session_campaign(1, 2, 3, vec![Axis::Eta(vec![10, 10])]);
    match campaign.expand() {
        Err(CampaignError::DuplicatePoint { first, second }) => {
            assert_eq!((first, second), (0, 1));
        }
        other => panic!("expected DuplicatePoint, got {other:?}"),
    }
}

#[test]
fn campaign_fingerprint_is_stable() {
    // Locked literal: a fingerprint change breaks every stored campaign
    // directory and sample record in the wild, so it must be deliberate.
    // The backend axis is spelled out (not `BackendKind::ALL`) so adding a
    // substrate never silently moves this pin.
    let campaign = session_campaign(
        7,
        99,
        2,
        vec![
            Axis::Eta(vec![0, 10]),
            Axis::Backend(vec![BackendKind::DensityMatrix, BackendKind::Statevector]),
        ],
    );
    assert_eq!(campaign.fingerprint(), 0x5a30_173b_98da_34ab_u64);
    // Point labels never reach the fingerprint.
    let mut relabeled = campaign.clone();
    relabeled.label = "something else".into();
    assert_eq!(relabeled.fingerprint(), campaign.fingerprint());
    // Widening an axis (e.g. onto the twirled substrate) is new content and
    // must re-fingerprint.
    let mut widened = campaign.clone();
    widened.space = CampaignSpace::Grid(vec![
        Axis::Eta(vec![0, 10]),
        Axis::Backend(BackendKind::ALL.to_vec()),
    ]);
    assert_ne!(widened.fingerprint(), campaign.fingerprint());
}

// ------------------------------------------------------- queue equivalence --

const LEASE_MS: u64 = 10_000;

/// Drains every point queue of `run` with interleaved claims across points
/// (the `schedule` picks which still-undrained point serves each claim) and
/// a worker SIGKILLed right after claim number `kill_point` — its lease must
/// expire before that shard is stolen.
fn drain_interleaved_with_kill(run: &CampaignRun, schedule: &[usize], kill_point: usize) {
    let engine = SessionEngine::new(0); // seed irrelevant: the plans govern
    let queues: Vec<ShardQueue> = (0..run.points().len())
        .map(|i| run.point_queue(i).expect("session point queue"))
        .collect();
    let mut drained = vec![false; queues.len()];
    let mut clock: u64 = 1;
    let mut step = 0usize;
    let mut claims = 0usize;
    let mut killed = false;
    while drained.iter().any(|d| !d) {
        let scheduled = schedule[step % schedule.len()] % queues.len();
        step += 1;
        clock += 1;
        let Some(index) = (0..queues.len())
            .map(|offset| (scheduled + offset) % queues.len())
            .find(|&i| !drained[i])
        else {
            break;
        };
        match queues[index]
            .claim_at("fleet", LEASE_MS, clock)
            .expect("claim never fails on a healthy directory")
        {
            ClaimOutcome::Claimed(plan) => {
                claims += 1;
                if !killed && claims == kill_point + 1 {
                    // SIGKILL between claim and submit: the shard stays leased
                    // until the lease expires, then the fleet steals it.
                    killed = true;
                    continue;
                }
                let result = engine
                    .execute_shard(&plan, protocol::engine::ShardOutput::Summary)
                    .expect("shard executes");
                match queues[index].submit(&result).expect("submit never fails") {
                    SubmitOutcome::Recorded | SubmitOutcome::AlreadyDone => {}
                }
            }
            ClaimOutcome::Wait { .. } => {
                // Only the killed worker's lease blocks progress: expire it.
                clock += LEASE_MS;
            }
            ClaimOutcome::Drained => drained[index] = true,
        }
    }
}

proptest! {
    #[test]
    fn queued_campaign_reports_match_direct_execution(
        eta_count in 1usize..3,
        with_adversary_axis in 0usize..2,
        trials in 1usize..3,
        shard_trials in 1usize..3,
        schedule in proptest::collection::vec(0usize..8, 1..10),
        kill_point in 0usize..10,
        identity_seed in 0u64..1_000_000,
        master_seed in 0u64..1_000_000,
    ) {
        let mut axes = vec![Axis::Eta((0..eta_count).map(|i| i * 10).collect())];
        if with_adversary_axis == 1 {
            axes.push(Axis::Adversary(vec![
                Adversary::Honest,
                Adversary::InterceptResend(InterceptBasis::Computational),
            ]));
        }
        let campaign = session_campaign(identity_seed, master_seed, trials, axes);

        // The in-process reference, and per-point direct engine runs.
        let direct = campaign
            .run_direct(Parallelism::Serial, &NoSampler)
            .expect("direct run succeeds");
        let engine = SessionEngine::new(master_seed);
        let points = campaign.expand().expect("campaign expands");

        // The fleet path: per-point queues, interleaved claims, one kill.
        let tmp = TempCampaignDir::new();
        let run = CampaignRun::init(&tmp.0, &campaign, shard_trials).expect("run initializes");
        drain_interleaved_with_kill(&run, &schedule, kill_point);

        // A process restart: reopen the directory and fold the report.
        let reopened = CampaignRun::open(&tmp.0).expect("campaign directory reopens");
        let status = reopened.status().expect("status");
        prop_assert!(status.complete());
        let report = reopened.report().expect("complete campaign folds");

        prop_assert_eq!(report.points.len(), points.len());
        for (point_report, point) in report.points.iter().zip(&points) {
            let summary = point_report.summary.as_ref().expect("session summary");
            let scenario = point.scenario.as_ref().expect("session scenario");
            let whole = engine.run_trials(scenario, point.trials).expect("direct point run");
            prop_assert_eq!(summary, &whole);
            prop_assert_eq!(
                summary.mean_chsh_round1.map(f64::to_bits),
                whole.mean_chsh_round1.map(f64::to_bits)
            );
            prop_assert_eq!(
                summary.mean_chsh_round2.map(f64::to_bits),
                whole.mean_chsh_round2.map(f64::to_bits)
            );
            prop_assert_eq!(
                summary.mean_message_accuracy.map(f64::to_bits),
                whole.mean_message_accuracy.map(f64::to_bits)
            );
        }
        // …and the whole report serializes byte-identically to run_direct.
        prop_assert_eq!(
            serde::json::to_string(&report),
            serde::json::to_string(&direct),
            "queued campaign report must serialize byte-identically"
        );
    }
}
