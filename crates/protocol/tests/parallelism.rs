//! Property tests for deterministic parallel execution: for *random*
//! scenarios, master seeds, and trial counts, `run_trials` must produce
//! field-for-field identical summaries under every [`Parallelism`] mode —
//! including the zero-trial edge case where `detection_rate`/`delivery_rate`
//! fall back to 0.0 instead of dividing by zero.

use proptest::prelude::*;
use protocol::engine::{Adversary, Parallelism, Scenario, SessionEngine};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use qchannel::taps::{InterceptBasis, SubstituteState};
use rand::SeedableRng;

/// The parallel policies every property is checked against, serial first.
const MODES: [Parallelism; 4] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(5),
    Parallelism::Auto,
];

fn scenario(
    message_bits: usize,
    check_bits: usize,
    identity_qubits: usize,
    adversary_index: usize,
    identity_seed: u64,
) -> Scenario {
    let config = SessionConfig::builder()
        .message_bits(message_bits)
        .check_bits(check_bits)
        .di_check_pairs(24)
        .build()
        .expect("generated config is valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(identity_seed);
    let identities = IdentityPair::generate(identity_qubits, &mut rng);
    let adversary = match adversary_index {
        0 => Adversary::Honest,
        1 => Adversary::ImpersonateAlice,
        2 => Adversary::ImpersonateBob,
        3 => Adversary::InterceptResend(InterceptBasis::Computational),
        4 => Adversary::ManInTheMiddle(SubstituteState::RandomBb84),
        _ => Adversary::EntangleMeasure { strength: 0.5 },
    };
    Scenario::new(config, identities).with_adversary(adversary)
}

proptest! {
    #[test]
    fn run_trials_is_identical_under_every_parallelism_mode(
        half_message in 1usize..5,
        check_pairs in 0usize..3,
        identity_qubits in 1usize..4,
        adversary_index in 0usize..6,
        identity_seed in 0u64..1_000_000,
        master_seed in 0u64..1_000_000,
        trials in 0usize..4,
    ) {
        // message + check bits must be even: draw both in units of whole pairs.
        let scenario = scenario(
            2 * half_message,
            2 * check_pairs,
            identity_qubits,
            adversary_index,
            identity_seed,
        );
        let reference = SessionEngine::new(master_seed)
            .run_trials(&scenario, trials)
            .expect("serial trials run");
        prop_assert_eq!(reference.trials, trials);
        if trials == 0 {
            prop_assert_eq!(reference.detection_rate(), 0.0);
            prop_assert_eq!(reference.delivery_rate(), 0.0);
            prop_assert_eq!(reference.mean_chsh_round1, None);
        }
        for mode in MODES {
            let summary = SessionEngine::new(master_seed)
                .with_parallelism(mode)
                .run_trials(&scenario, trials)
                .expect("parallel trials run");
            // Field-for-field equality, not just PartialEq: a regression in a
            // single mean shows up by name.
            prop_assert_eq!(&summary.label, &reference.label, "label under {}", mode);
            prop_assert_eq!(&summary.adversary, &reference.adversary, "adversary under {}", mode);
            prop_assert_eq!(summary.trials, reference.trials, "trials under {}", mode);
            prop_assert_eq!(summary.delivered, reference.delivered, "delivered under {}", mode);
            prop_assert_eq!(
                summary.aborted_di_check1,
                reference.aborted_di_check1,
                "aborted_di_check1 under {}", mode
            );
            prop_assert_eq!(
                summary.aborted_bob_auth,
                reference.aborted_bob_auth,
                "aborted_bob_auth under {}", mode
            );
            prop_assert_eq!(
                summary.aborted_alice_auth,
                reference.aborted_alice_auth,
                "aborted_alice_auth under {}", mode
            );
            prop_assert_eq!(
                summary.aborted_di_check2,
                reference.aborted_di_check2,
                "aborted_di_check2 under {}", mode
            );
            prop_assert_eq!(
                summary.aborted_integrity,
                reference.aborted_integrity,
                "aborted_integrity under {}", mode
            );
            prop_assert_eq!(
                summary.mean_chsh_round1,
                reference.mean_chsh_round1,
                "mean_chsh_round1 under {}", mode
            );
            prop_assert_eq!(
                summary.mean_chsh_round2,
                reference.mean_chsh_round2,
                "mean_chsh_round2 under {}", mode
            );
            prop_assert_eq!(
                summary.mean_message_accuracy,
                reference.mean_message_accuracy,
                "mean_message_accuracy under {}", mode
            );
            prop_assert_eq!(summary.detection_rate(), reference.detection_rate());
            prop_assert_eq!(summary.delivery_rate(), reference.delivery_rate());
        }
    }

    #[test]
    fn run_outcomes_matches_serial_under_every_mode(
        master_seed in 0u64..1_000_000,
        trials in 1usize..4,
    ) {
        let scenario = scenario(4, 0, 2, 0, master_seed);
        let reference = SessionEngine::new(master_seed)
            .run_outcomes(&scenario, trials)
            .expect("serial outcomes run");
        for mode in MODES {
            let outcomes = SessionEngine::new(master_seed)
                .with_parallelism(mode)
                .run_outcomes(&scenario, trials)
                .expect("parallel outcomes run");
            prop_assert_eq!(&outcomes, &reference, "outcomes under {}", mode);
        }
    }
}
