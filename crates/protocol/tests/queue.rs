//! Crash-recovery property tests for the resumable shard queue: for
//! arbitrary shard partitions, worker counts, claim interleavings and a
//! randomly chosen kill point, a checkpoint-then-resume drain produces a
//! merged run **bit-identical** (`f64::to_bits` on every summary mean, plus
//! the serialized bytes) to the uninterrupted serial run — on both
//! production backends and for both payload kinds.

use proptest::prelude::*;
use protocol::engine::{
    Adversary, BackendKind, ClaimOutcome, MergedRun, Scenario, SessionEngine, ShardOutput,
    ShardQueue, SubmitOutcome,
};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use qchannel::taps::{InterceptBasis, SubstituteState};
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique queue directory, removed on drop (also on assertion panics).
struct TempQueueDir(PathBuf);

impl TempQueueDir {
    fn new() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        TempQueueDir(std::env::temp_dir().join(format!(
            "ua-di-qsdc-queue-proptest-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempQueueDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scenario(adversary_index: usize, backend_index: usize, identity_seed: u64) -> Scenario {
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(24)
        .build()
        .expect("generated config is valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(identity_seed);
    let identities = IdentityPair::generate(2, &mut rng);
    let adversary = match adversary_index {
        0 => Adversary::Honest,
        1 => Adversary::InterceptResend(InterceptBasis::Computational),
        _ => Adversary::ManInTheMiddle(SubstituteState::RandomBb84),
    };
    Scenario::new(config, identities)
        .with_adversary(adversary)
        .with_backend(BackendKind::ALL[backend_index % BackendKind::ALL.len()])
}

const LEASE_MS: u64 = 10_000;

/// Drives a fleet of named workers against the queue under a synthetic
/// clock. `schedule` decides which worker claims next; the worker whose
/// claim is step `kill_point` is SIGKILLed right after claiming: it never
/// submits, and its lease must expire before the shard comes back.
/// Returns how many claims were issued in total.
fn drain_with_kill(
    queue: &ShardQueue,
    workers: usize,
    schedule: &[usize],
    kill_point: usize,
    output: ShardOutput,
) -> usize {
    let engine = SessionEngine::new(0); // seed irrelevant: the plans govern
    let mut clock: u64 = 1;
    let mut dead: Vec<bool> = vec![false; workers];
    let mut step = 0usize;
    let mut claims = 0usize;
    loop {
        let scheduled = schedule[step % schedule.len()] % workers;
        step += 1;
        clock += 1;
        // A dead worker's turn goes to the next live one (the schedule keeps
        // its shape, the fleet keeps draining).
        let Some(worker_index) = (0..workers)
            .map(|offset| (scheduled + offset) % workers)
            .find(|&w| !dead[w])
        else {
            return claims;
        };
        let worker = format!("worker-{worker_index}");
        match queue
            .claim_at(&worker, LEASE_MS, clock)
            .expect("claim never fails on a healthy directory")
        {
            ClaimOutcome::Claimed(plan) => {
                claims += 1;
                if claims == kill_point + 1 {
                    // SIGKILL between claim and submit: the shard stays
                    // leased until the lease expires, then another worker
                    // steals it. If this was the last live worker, the
                    // resume path below revives the fleet.
                    dead[worker_index] = true;
                    continue;
                }
                let result = engine.execute_shard(&plan, output).expect("shard executes");
                // Both outcomes are fine: another worker may have stolen and
                // completed this shard already.
                match queue.submit(&result).expect("submit never fails") {
                    SubmitOutcome::Recorded | SubmitOutcome::AlreadyDone => {}
                }
            }
            ClaimOutcome::Wait { .. } => {
                // Everything claimable is leased (possibly by the dead
                // worker): advance past lease expiry so work is stolen.
                clock += LEASE_MS;
            }
            ClaimOutcome::Drained => {
                if dead.iter().all(|&d| d) {
                    panic!("every worker died before the queue drained");
                }
                return claims;
            }
        }
        if dead.iter().all(|&d| d) {
            // The whole fleet is gone — the caller resumes with new workers.
            return claims;
        }
    }
}

proptest! {
    /// The heartbeat contract, under a synthetic clock: a slow-but-alive
    /// worker that extends its lease before every expiry is **never** stolen
    /// from, no matter how the heartbeat gaps and thief probes interleave —
    /// while a dead worker (same lease, no heartbeats) still expires and its
    /// shard is stolen exactly when the clock passes its lease.
    #[test]
    fn heartbeats_protect_live_workers_while_dead_leases_expire(
        lease_ms in 10u64..5_000,
        gap_fracs in proptest::collection::vec(0u64..100, 1..16),
        identity_seed in 0u64..1_000_000,
        master_seed in 0u64..1_000_000,
    ) {
        let scenario = scenario(0, 0, identity_seed);
        let engine = SessionEngine::new(master_seed);
        let tmp = TempQueueDir::new();
        // Two shards: trials 0..2 (the live worker's) and 2..4 (the dead
        // worker's) — claims hand out slots in trial order.
        let queue = ShardQueue::init(
            &tmp.0,
            &engine.plan(&scenario, 4),
            2,
            ShardOutput::Summary,
        )
        .expect("queue initializes");

        let ClaimOutcome::Claimed(alive_plan) = queue.claim_at("alive", lease_ms, 0).expect("claim") else {
            panic!("alive worker claims the first shard");
        };
        let ClaimOutcome::Claimed(dead_plan) = queue.claim_at("dead", lease_ms, 0).expect("claim") else {
            panic!("dead worker claims the second shard");
        };
        prop_assert_eq!(alive_plan.trial_start, 0);
        prop_assert_eq!(dead_plan.trial_start, 2);

        // The live worker heartbeats with arbitrary gaps, each strictly
        // shorter than its lease (that is what "alive" means); the dead one
        // never extends. A thief probes for claimable work after every beat.
        let mut now: u64 = 0;
        let mut dead_stolen_at: Option<u64> = None;
        for frac in &gap_fracs {
            let gap = 1 + frac * (lease_ms - 1) / 100; // 1..lease_ms
            now += gap;
            queue
                .extend_lease_at("alive", &alive_plan, lease_ms, now)
                .expect("a worker that beats before expiry always extends");
            match queue.claim_at("thief", 10_000, now).expect("probe") {
                ClaimOutcome::Claimed(stolen) => {
                    prop_assert_eq!(
                        stolen.trial_start, 2,
                        "only the dead worker's shard is ever stolen"
                    );
                    prop_assert!(
                        now >= lease_ms,
                        "theft happens only after the dead lease expired"
                    );
                    prop_assert!(dead_stolen_at.is_none(), "stolen exactly once");
                    dead_stolen_at = Some(now);
                    // The thief completes the stolen shard.
                    let result = engine
                        .execute_shard(&stolen, ShardOutput::Summary)
                        .expect("executes");
                    queue.submit(&result).expect("submits");
                }
                ClaimOutcome::Wait { .. } => {
                    // Nothing stealable: the dead lease is still live, or
                    // the thief already took it and holds its own lease.
                }
                ClaimOutcome::Drained => prop_assert!(false, "queue cannot drain early"),
            }
        }

        // However the probes fell, pushing the clock past the dead lease
        // (but within the freshly-extended live one) must expire exactly
        // the dead worker's shard and no other.
        if dead_stolen_at.is_none() {
            let past_dead = now.max(lease_ms);
            let ClaimOutcome::Claimed(stolen) =
                queue.claim_at("thief", 10_000, past_dead).expect("steal") else {
                panic!("the dead worker's expired shard is claimable");
            };
            prop_assert_eq!(stolen.trial_start, 2);
            let result = engine
                .execute_shard(&stolen, ShardOutput::Summary)
                .expect("executes");
            queue.submit(&result).expect("submits");
        }

        // The slow-but-alive worker was never stolen from: its submission
        // is the one that lands, not a duplicate of somebody else's.
        let result = engine
            .execute_shard(&alive_plan, ShardOutput::Summary)
            .expect("executes");
        prop_assert_eq!(
            queue.submit(&result).expect("submits"),
            SubmitOutcome::Recorded,
            "a heartbeating worker's shard is never re-executed elsewhere"
        );
        prop_assert!(queue.status().expect("status").complete());
        prop_assert_eq!(
            serde::json::to_string(&queue.merge().expect("merge").into_summary().unwrap()),
            serde::json::to_string(&engine.run_trials(&scenario, 4).expect("whole run"))
        );
    }

    #[test]
    fn killed_and_resumed_drains_merge_bit_identically(
        trials in 0usize..5,
        shard_trials in 1usize..4,
        workers in 1usize..4,
        schedule in proptest::collection::vec(0usize..8, 1..12),
        kill_point in 0usize..12,
        adversary_index in 0usize..3,
        backend_index in 0usize..2,
        identity_seed in 0u64..1_000_000,
        master_seed in 0u64..1_000_000,
        summary_payload in 0usize..2,
    ) {
        let output = if summary_payload == 0 {
            ShardOutput::Outcomes
        } else {
            ShardOutput::Summary
        };
        let scenario = scenario(adversary_index, backend_index, identity_seed);
        let engine = SessionEngine::new(master_seed);

        // The uninterrupted single-process reference.
        let whole_summary = engine.run_trials(&scenario, trials).expect("whole run");
        let whole_outcomes = engine.run_outcomes(&scenario, trials).expect("whole run");

        // A cooperative drain with a worker killed mid-run…
        let tmp = TempQueueDir::new();
        let queue = ShardQueue::init(
            &tmp.0,
            &engine.plan(&scenario, trials),
            shard_trials,
            output,
        )
        .expect("queue initializes");
        drain_with_kill(&queue, workers, &schedule, kill_point, output);

        // …then a process restart: reopen the directory, verify and recover
        // the checkpoint (dead leases return to pending), and drain whatever
        // remains with a fresh single worker.
        let resumed = ShardQueue::open(&tmp.0).expect("checkpoint reopens");
        resumed.recover_at(u64::MAX).expect("recovery verifies the results dir");
        let executor = SessionEngine::new(12345);
        loop {
            match resumed.claim_at("resumer", LEASE_MS, u64::MAX).expect("claim") {
                ClaimOutcome::Claimed(plan) => {
                    let result = executor.execute_shard(&plan, output).expect("executes");
                    resumed.submit(&result).expect("submits");
                }
                ClaimOutcome::Drained => break,
                ClaimOutcome::Wait { .. } => unreachable!("recovery cleared every lease"),
            }
        }

        let status = resumed.status().expect("status");
        prop_assert!(status.complete());
        prop_assert_eq!(status.trials_done, trials as u64);

        match resumed.merge().expect("complete merge") {
            MergedRun::Summary(summary) => {
                prop_assert_eq!(&summary, &whole_summary);
                // Bit-for-bit on every floating-point mean…
                prop_assert_eq!(
                    summary.mean_chsh_round1.map(f64::to_bits),
                    whole_summary.mean_chsh_round1.map(f64::to_bits)
                );
                prop_assert_eq!(
                    summary.mean_chsh_round2.map(f64::to_bits),
                    whole_summary.mean_chsh_round2.map(f64::to_bits)
                );
                prop_assert_eq!(
                    summary.mean_message_accuracy.map(f64::to_bits),
                    whole_summary.mean_message_accuracy.map(f64::to_bits)
                );
                // …and on the serialized wire form.
                prop_assert_eq!(
                    serde::json::to_string(&summary),
                    serde::json::to_string(&whole_summary),
                    "resumed merge must serialize byte-identically"
                );
            }
            MergedRun::Outcomes(outcomes) => {
                prop_assert_eq!(&outcomes, &whole_outcomes);
                prop_assert_eq!(
                    serde::json::to_string(&outcomes),
                    serde::json::to_string(&whole_outcomes),
                    "resumed merge must serialize byte-identically"
                );
            }
        }
    }
}
