//! Property tests for the plan / execute / merge pipeline: for **either
//! production backend**, *any* partition of a run into shards — including
//! empty and single-trial shards — executed on independent engines and merged
//! in trial order, must be byte-identical to the unsharded run on that
//! backend, and `TrialSummaryBuilder::merge` must match serial accumulation
//! bit for bit.

use proptest::prelude::*;
use protocol::engine::{
    merge_shard_results, Adversary, BackendKind, Scenario, SessionEngine, ShardMerger, ShardOutput,
    ShardPlan, TrialSummary,
};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use qchannel::taps::{InterceptBasis, SubstituteState};
use rand::SeedableRng;

fn backend(backend_index: usize) -> BackendKind {
    BackendKind::ALL[backend_index % BackendKind::ALL.len()]
}

fn scenario(adversary_index: usize, identity_seed: u64) -> Scenario {
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(24)
        .build()
        .expect("generated config is valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(identity_seed);
    let identities = IdentityPair::generate(2, &mut rng);
    let adversary = match adversary_index {
        0 => Adversary::Honest,
        1 => Adversary::ImpersonateBob,
        2 => Adversary::InterceptResend(InterceptBasis::Computational),
        3 => Adversary::ManInTheMiddle(SubstituteState::RandomBb84),
        _ => Adversary::EntangleMeasure { strength: 0.5 },
    };
    Scenario::new(config, identities).with_adversary(adversary)
}

/// Turns random cut values into a contiguous partition of `0..trials`.
/// Duplicate cuts produce empty shards on purpose — they must merge cleanly.
fn partition(whole: &ShardPlan, trials: usize, cuts: &[usize]) -> Vec<ShardPlan> {
    let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (trials + 1)).collect();
    boundaries.push(0);
    boundaries.push(trials);
    boundaries.sort_unstable();
    boundaries
        .windows(2)
        .map(|pair| whole.subrange(pair[0], pair[1] - pair[0]))
        .collect()
}

/// Regression: shard results produced on different simulation substrates must
/// never fold into one run (the backend used to be invisible to the
/// plan fingerprint and the merger).
#[test]
fn mixing_backends_in_one_merge_is_rejected() {
    use protocol::engine::MergeError;
    let base = scenario(0, 99);
    let engine = SessionEngine::new(99);
    let mut results = Vec::new();
    for (index, kind) in BackendKind::ALL.into_iter().enumerate() {
        let plans = engine
            .plan(&base.clone().with_backend(kind), 4)
            .split_into(2);
        results.push(
            engine
                .execute_shard(&plans[index % plans.len()], ShardOutput::Summary)
                .expect("shard executes"),
        );
    }
    assert!(matches!(
        merge_shard_results(results),
        Err(MergeError::BackendMismatch { .. })
    ));
}

proptest! {
    #[test]
    fn any_partition_merges_to_the_unsharded_run(
        trials in 0usize..6,
        cuts in proptest::collection::vec(0usize..64, 0..5),
        adversary_index in 0usize..5,
        backend_index in 0usize..BackendKind::ALL.len(),
        identity_seed in 0u64..1_000_000,
        master_seed in 0u64..1_000_000,
    ) {
        let scenario = scenario(adversary_index, identity_seed).with_backend(backend(backend_index));
        let engine = SessionEngine::new(master_seed);
        let whole_outcomes = engine.run_outcomes(&scenario, trials).expect("whole run");
        let whole_summary = engine.run_trials(&scenario, trials).expect("whole summary");
        let plans = partition(&engine.plan(&scenario, trials), trials, &cuts);
        prop_assert_eq!(plans.iter().map(|p| p.trial_count).sum::<usize>(), trials);

        // Execute every shard on its own engine with an unrelated master
        // seed: the plan alone must determine the results.
        let execute = |output: ShardOutput| {
            plans
                .iter()
                .enumerate()
                .map(|(i, plan)| {
                    SessionEngine::new(master_seed ^ (i as u64 + 1) << 7)
                        .execute_shard(plan, output)
                        .expect("shard executes")
                })
                .collect::<Vec<_>>()
        };

        // In-order streaming merge of outcome payloads.
        let mut merger = ShardMerger::new();
        for result in execute(ShardOutput::Outcomes) {
            merger.push(result).expect("in-order push");
        }
        let merged = merger.finish().expect("complete merge").into_outcomes().unwrap();
        prop_assert_eq!(&merged, &whole_outcomes);
        prop_assert_eq!(
            serde::json::to_string(&merged),
            serde::json::to_string(&whole_outcomes),
            "sharded outcomes must serialize byte-identically"
        );

        // Out-of-order merge of summary partials (reversed, then sorted by
        // `merge_shard_results`).
        let mut results = execute(ShardOutput::Summary);
        results.reverse();
        let merged: TrialSummary = merge_shard_results(results)
            .expect("complete merge")
            .into_summary()
            .unwrap();
        prop_assert_eq!(&merged, &whole_summary);
        prop_assert_eq!(
            serde::json::to_string(&merged),
            serde::json::to_string(&whole_summary),
            "sharded summary must serialize byte-identically"
        );
    }

    #[test]
    fn builder_merge_matches_serial_accumulation(
        trials in 0usize..6,
        cuts in proptest::collection::vec(0usize..64, 0..5),
        adversary_index in 0usize..5,
        backend_index in 0usize..BackendKind::ALL.len(),
        identity_seed in 0u64..1_000_000,
        master_seed in 0u64..1_000_000,
    ) {
        use protocol::engine::TrialSummaryBuilder;
        let scenario = scenario(adversary_index, identity_seed).with_backend(backend(backend_index));
        let engine = SessionEngine::new(master_seed);
        let outcomes = engine.run_outcomes(&scenario, trials).expect("outcomes");

        // Serial accumulation: one builder records every outcome in order.
        let mut serial = TrialSummaryBuilder::new("s", "a");
        for outcome in &outcomes {
            serial.record(outcome);
        }

        // Partitioned accumulation: per-segment partials merged in order.
        let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % (trials + 1)).collect();
        boundaries.push(0);
        boundaries.push(trials);
        boundaries.sort_unstable();
        let mut merged = TrialSummaryBuilder::new("s", "a");
        for pair in boundaries.windows(2) {
            let mut partial = TrialSummaryBuilder::new("s", "a");
            for outcome in &outcomes[pair[0]..pair[1]] {
                partial.record(outcome);
            }
            merged.merge(partial);
        }

        prop_assert_eq!(merged.trials_recorded(), serial.trials_recorded());
        let merged = merged.finish();
        let serial = serial.finish();
        prop_assert_eq!(&merged, &serial);
        // Bit-for-bit, not just `==`: compare the raw bits of every mean.
        prop_assert_eq!(
            merged.mean_chsh_round1.map(f64::to_bits),
            serial.mean_chsh_round1.map(f64::to_bits)
        );
        prop_assert_eq!(
            merged.mean_chsh_round2.map(f64::to_bits),
            serial.mean_chsh_round2.map(f64::to_bits)
        );
        prop_assert_eq!(
            merged.mean_message_accuracy.map(f64::to_bits),
            serial.mean_message_accuracy.map(f64::to_bits)
        );
        prop_assert_eq!(serde::json::to_string(&merged), serde::json::to_string(&serial));
    }
}
