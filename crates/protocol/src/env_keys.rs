//! The workspace's environment-variable names, spelled exactly once.
//!
//! Every knob this reproduction reads from the process environment is named
//! `UA_DI_QSDC_*`, and every read site refers to these constants — never to
//! a string literal. The `detlint` tool's `env-keys` rule enforces this
//! statically: a `"UA_DI_QSDC_…"` literal anywhere outside this module is a
//! diagnostic, so a typo cannot silently fork the configuration surface
//! into two variables that each half of the code reads.
//!
//! Environment reads themselves are restricted by the `wall-clock` rule to
//! binary entry points, tests, and explicitly waived library sites (the
//! policy is documented in `docs/determinism.md`): configuration is read
//! once at the edge and passed down, so a result can never depend on
//! ambient process state that a replay would not reproduce.

/// Selects the execution policy (`serial`, `threads:N`, or `auto`); read by
/// [`Parallelism::from_env`](crate::engine::Parallelism::from_env).
pub const PARALLELISM: &str = "UA_DI_QSDC_PARALLELISM";

/// Chaos-testing hook: stalls a fleet worker for N milliseconds between
/// claiming and executing each shard, so a test can SIGKILL it while it
/// provably holds a lease. Read by the `shardctl` binary only.
pub const QUEUE_THROTTLE_MS: &str = "UA_DI_QSDC_QUEUE_THROTTLE_MS";

/// When set, golden-fixture tests rewrite their checked-in fixtures instead
/// of asserting against them.
pub const UPDATE_FIXTURES: &str = "UA_DI_QSDC_UPDATE_FIXTURES";

/// The `host:port` the `qsdc-serve` binary listens on (default
/// `127.0.0.1:7878`; `:0` picks an ephemeral port and prints it). Read by
/// the `qsdc-serve` binary only.
pub const SERVE_ADDR: &str = "UA_DI_QSDC_SERVE_ADDR";

/// The `qsdc-serve` spool directory: every accepted job is lowered onto a
/// shard queue under it, which is what makes a SIGKILLed server resumable.
/// Read by the `qsdc-serve` binary only.
pub const SERVE_SPOOL: &str = "UA_DI_QSDC_SERVE_SPOOL";

/// Worker-pool size of the `qsdc-serve` binary (default: one per available
/// CPU). Read by the `qsdc-serve` binary only.
pub const SERVE_WORKERS: &str = "UA_DI_QSDC_SERVE_WORKERS";

/// Per-client in-flight job quota of the `qsdc-serve` binary; submissions
/// past it are answered with a `Busy` response. Read by the `qsdc-serve`
/// binary only.
pub const SERVE_QUOTA: &str = "UA_DI_QSDC_SERVE_QUOTA";

/// Shard granularity (and therefore snapshot-streaming interval, in trials)
/// the `qsdc-serve` binary lowers session jobs with. Read by the
/// `qsdc-serve` binary only.
pub const SERVE_SNAPSHOT_TRIALS: &str = "UA_DI_QSDC_SERVE_SNAPSHOT_TRIALS";

#[cfg(test)]
mod tests {
    #[test]
    fn every_key_carries_the_workspace_prefix() {
        for key in [
            super::PARALLELISM,
            super::QUEUE_THROTTLE_MS,
            super::UPDATE_FIXTURES,
            super::SERVE_ADDR,
            super::SERVE_SPOOL,
            super::SERVE_WORKERS,
            super::SERVE_QUOTA,
            super::SERVE_SNAPSHOT_TRIALS,
        ] {
            assert!(key.starts_with("UA_DI_QSDC_"), "{key}");
        }
    }
}
