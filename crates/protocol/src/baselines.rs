//! Baseline: DI-QSDC without user authentication.
//!
//! The closest prior work (Zhou et al. 2020, row 1 of Table I) is a DI-QSDC protocol with the
//! same resource (EPR pairs), the same encoding (dense-coding Paulis) and the same decoding
//! (BSM), but **no identity authentication**. [`run_baseline_di_qsdc`] implements that shape so
//! the comparison rows of Table I are backed by runnable code and so the impersonation
//! experiment can show the concrete difference: the baseline happily delivers a message to an
//! impersonator, the proposed protocol does not.

use crate::config::SessionConfig;
use crate::di_check::{run_di_check, DiCheckReport, DiCheckRound};
use crate::error::ProtocolError;
use crate::message::{PaddedMessage, SecretMessage};
use qchannel::epr::EprPair;
use qchannel::quantum::{ChannelTap, NoTap, QuantumChannel};
use qsim::pauli::Pauli;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of a baseline (no-authentication) DI-QSDC run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// `true` when the message reached the receiver (whoever that was).
    pub delivered: bool,
    /// Reason for an abort, when not delivered.
    pub abort_reason: Option<String>,
    /// First-round CHSH report.
    pub di_check_round1: Option<DiCheckReport>,
    /// Second-round CHSH report.
    pub di_check_round2: Option<DiCheckReport>,
    /// The message that was sent.
    pub sent_message: SecretMessage,
    /// The message the receiver decoded (on delivery).
    pub received_message: Option<SecretMessage>,
    /// Check-bit error rate observed by the receiver.
    pub check_bit_error_rate: Option<f64>,
    /// Ground-truth message bit error rate (on delivery).
    pub message_bit_error_rate: Option<f64>,
    /// Total EPR pairs consumed (`N + 2d`).
    pub total_pairs: usize,
}

impl BaselineOutcome {
    /// Fraction of message bits delivered correctly.
    pub fn message_accuracy(&self) -> Option<f64> {
        self.message_bit_error_rate.map(|e| 1.0 - e)
    }
}

impl fmt::Display for BaselineOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.delivered {
            write!(f, "baseline DI-QSDC: delivered")
        } else {
            write!(
                f,
                "baseline DI-QSDC: aborted ({})",
                self.abort_reason.as_deref().unwrap_or("unknown")
            )
        }
    }
}

/// Runs the no-authentication baseline: entanglement sharing, first DI check, Pauli encoding,
/// transmission, second DI check, BSM decoding — the proposed protocol minus phases dealing
/// with `id_A` / `id_B`.
///
/// The `tap` lets the same attack strategies used against the full protocol run against the
/// baseline. Because there is no authentication, an impersonation "attack" cannot be detected
/// at all — exactly the gap the paper's contribution closes.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on configuration misuse.
pub fn run_baseline_di_qsdc<R: Rng>(
    config: &SessionConfig,
    message: &SecretMessage,
    tap: &mut dyn ChannelTap,
    rng: &mut R,
) -> Result<BaselineOutcome, ProtocolError> {
    if message.len() != config.message_bits() {
        return Err(ProtocolError::MessageLengthMismatch {
            expected: config.message_bits(),
            actual: message.len(),
        });
    }
    let d = config.di_check_pairs();
    let padded = PaddedMessage::embed(message, config.check_bits(), rng)?;
    let n_qubits = padded.qubit_len();
    let total_pairs = n_qubits + 2 * d;
    let channel = QuantumChannel::new(config.channel().clone());

    // Entanglement sharing.
    let mut pairs: Vec<EprPair> = Vec::with_capacity(total_pairs);
    for _ in 0..total_pairs {
        let mut pair = EprPair::from_noisy_source(config.channel().device());
        channel.distribute_tapped(&mut pair, tap, rng);
        pairs.push(pair);
    }

    // First DI check.
    let mut positions: Vec<usize> = (0..total_pairs).collect();
    positions.shuffle(rng);
    let check1: Vec<usize> = positions[..d].to_vec();
    let rest: Vec<usize> = positions[d..].to_vec();
    let mut check1_pairs: Vec<EprPair> = check1.iter().map(|&p| pairs[p].clone()).collect();
    let (report1, _) = run_di_check(
        DiCheckRound::First,
        &mut check1_pairs,
        config.chsh_abort_threshold(),
        rng,
    );
    if !report1.passed {
        return Ok(BaselineOutcome {
            delivered: false,
            abort_reason: Some(format!("first DI check failed: {report1}")),
            di_check_round1: Some(report1),
            di_check_round2: None,
            sent_message: message.clone(),
            received_message: None,
            check_bit_error_rate: None,
            message_bit_error_rate: None,
            total_pairs,
        });
    }

    // Encoding and transmission.
    let mut rest = rest;
    rest.shuffle(rng);
    let check2: Vec<usize> = rest[..d].to_vec();
    let ma: Vec<usize> = rest[d..d + n_qubits].to_vec();
    for (pauli, &pos) in padded.as_paulis().iter().zip(&ma) {
        pairs[pos].apply_alice_pauli(*pauli);
    }
    for &pos in check2.iter().chain(&ma) {
        channel.transmit_tapped(&mut pairs[pos], tap, rng);
    }

    // Second DI check.
    let mut check2_pairs: Vec<EprPair> = check2.iter().map(|&p| pairs[p].clone()).collect();
    let (report2, _) = run_di_check(
        DiCheckRound::Second,
        &mut check2_pairs,
        config.chsh_abort_threshold(),
        rng,
    );
    if !report2.passed {
        return Ok(BaselineOutcome {
            delivered: false,
            abort_reason: Some(format!("second DI check failed: {report2}")),
            di_check_round1: Some(report1),
            di_check_round2: Some(report2),
            sent_message: message.clone(),
            received_message: None,
            check_bit_error_rate: None,
            message_bit_error_rate: None,
            total_pairs,
        });
    }

    // Decoding.
    let mut received_paulis: Vec<Pauli> = Vec::with_capacity(n_qubits);
    for &pos in &ma {
        received_paulis.push(pairs[pos].bell_measure(rng).state.encoding_pauli());
    }
    let received_bits = PaddedMessage::bits_from_paulis(&received_paulis);
    let check_error = padded.check_bit_error_rate(&received_bits);
    if check_error > config.check_bit_error_tolerance() {
        return Ok(BaselineOutcome {
            delivered: false,
            abort_reason: Some(format!("check-bit error rate {check_error:.3} too high")),
            di_check_round1: Some(report1),
            di_check_round2: Some(report2),
            sent_message: message.clone(),
            received_message: None,
            check_bit_error_rate: Some(check_error),
            message_bit_error_rate: None,
            total_pairs,
        });
    }
    let received = padded.extract_message(&received_bits);
    let error_rate = message.bit_error_rate(&received);
    Ok(BaselineOutcome {
        delivered: true,
        abort_reason: None,
        di_check_round1: Some(report1),
        di_check_round2: Some(report2),
        sent_message: message.clone(),
        received_message: Some(received),
        check_bit_error_rate: Some(check_error),
        message_bit_error_rate: Some(error_rate),
        total_pairs,
    })
}

/// Convenience wrapper running the baseline with no eavesdropper.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on configuration misuse.
pub fn run_baseline_honest<R: Rng>(
    config: &SessionConfig,
    message: &SecretMessage,
    rng: &mut R,
) -> Result<BaselineOutcome, ProtocolError> {
    let mut tap = NoTap;
    run_baseline_di_qsdc(config, message, &mut tap, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noise::DeviceModel;
    use qchannel::quantum::ChannelSpec;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn config() -> SessionConfig {
        SessionConfig::builder()
            .message_bits(16)
            .check_bits(4)
            .di_check_pairs(220)
            .build()
            .unwrap()
    }

    #[test]
    fn honest_baseline_delivers_exactly() {
        let mut r = rng(1);
        let message = SecretMessage::random(16, &mut r);
        let outcome = run_baseline_honest(&config(), &message, &mut r).unwrap();
        assert!(outcome.delivered, "{outcome}");
        assert_eq!(outcome.received_message.as_ref().unwrap(), &message);
        assert_eq!(outcome.message_accuracy(), Some(1.0));
        assert_eq!(outcome.total_pairs, 10 + 2 * 220);
    }

    #[test]
    fn baseline_uses_fewer_pairs_than_the_authenticated_protocol() {
        // No identity blocks → 2l fewer pairs.
        let cfg = config();
        let mut r = rng(2);
        let message = SecretMessage::random(16, &mut r);
        let outcome = run_baseline_honest(&cfg, &message, &mut r).unwrap();
        assert_eq!(outcome.total_pairs + 2 * 5, cfg.total_pairs(5));
    }

    #[test]
    fn baseline_on_noisy_channel_still_delivers() {
        let cfg = SessionConfig::builder()
            .message_bits(16)
            .check_bits(4)
            .di_check_pairs(220)
            .channel(ChannelSpec::noisy_identity_chain(
                10,
                DeviceModel::ibm_brisbane_like(),
            ))
            .build()
            .unwrap();
        let mut r = rng(3);
        let message = SecretMessage::random(16, &mut r);
        let outcome = run_baseline_honest(&cfg, &message, &mut r).unwrap();
        assert!(outcome.delivered, "{outcome}");
        assert!(outcome.message_accuracy().unwrap() > 0.8);
    }

    #[test]
    fn baseline_detects_entanglement_destroying_taps() {
        struct DephaseTap;
        impl ChannelTap for DephaseTap {
            fn on_transmit(&mut self, pair: &mut EprPair, _rng: &mut dyn rand::RngCore) {
                noise::KrausChannel::phase_flip(0.5).apply(pair.density_mut(), &[0]);
            }
            fn name(&self) -> &str {
                "dephase"
            }
        }
        let mut r = rng(4);
        let message = SecretMessage::random(16, &mut r);
        let mut tap = DephaseTap;
        let outcome = run_baseline_di_qsdc(&config(), &message, &mut tap, &mut r).unwrap();
        assert!(!outcome.delivered);
        assert!(outcome.abort_reason.unwrap().contains("second DI check"));
    }

    #[test]
    fn baseline_has_no_defence_against_impersonation() {
        // The whole point of the paper: without authentication, anyone who controls the
        // receiving end gets the message. There is no identity check to abort on, so the
        // baseline always delivers to the impersonator on an honest channel.
        let mut r = rng(5);
        let message = SecretMessage::random(16, &mut r);
        let outcome = run_baseline_honest(&config(), &message, &mut r).unwrap();
        assert!(outcome.delivered);
        assert!(outcome.abort_reason.is_none());
    }

    #[test]
    fn message_length_mismatch_is_rejected() {
        let mut r = rng(6);
        let message = SecretMessage::random(3, &mut r);
        assert!(matches!(
            run_baseline_honest(&config(), &message, &mut r),
            Err(ProtocolError::MessageLengthMismatch { .. })
        ));
    }

    #[test]
    fn display_for_both_outcomes() {
        let mut r = rng(7);
        let message = SecretMessage::random(16, &mut r);
        let ok = run_baseline_honest(&config(), &message, &mut r).unwrap();
        assert!(ok.to_string().contains("delivered"));
    }
}
