//! Pre-shared secret identities.
//!
//! Alice and Bob each hold a secret identity of `2l` bits (`id_A`, `id_B`). An identity is
//! encoded onto `l` qubits, two bits per qubit, with the same Pauli alphabet as the message.
//! Because the protocol never publishes the raw Bell results of the identity blocks (Alice's
//! block) or masks them with cover operations (Bob's block), the identities stay **reusable**
//! across sessions.

use crate::error::ProtocolError;
use qsim::pauli::Pauli;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A secret identity string of `2l` bits.
///
/// # Examples
///
/// ```rust
/// use protocol::identity::IdentityString;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let id = IdentityString::random(4, &mut rng); // l = 4 → 8 bits
/// assert_eq!(id.bit_len(), 8);
/// assert_eq!(id.qubit_len(), 4);
/// assert_eq!(id.as_paulis().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IdentityString {
    bits: Vec<bool>,
}

impl IdentityString {
    /// Creates an identity from raw bits.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::OddIdentityLength`] if the bit count is odd, and
    /// [`ProtocolError::InvalidConfig`] if it is empty.
    pub fn from_bits(bits: Vec<bool>) -> Result<Self, ProtocolError> {
        if bits.is_empty() {
            return Err(ProtocolError::InvalidConfig(
                "identity strings must not be empty".into(),
            ));
        }
        if !bits.len().is_multiple_of(2) {
            return Err(ProtocolError::OddIdentityLength(bits.len()));
        }
        Ok(Self { bits })
    }

    /// Generates a uniformly random identity of `l` qubits (`2l` bits).
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero.
    pub fn random<R: Rng + ?Sized>(l: usize, rng: &mut R) -> Self {
        assert!(l > 0, "identity must cover at least one qubit");
        Self {
            bits: (0..2 * l).map(|_| rng.gen::<bool>()).collect(),
        }
    }

    /// Number of bits (`2l`).
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// Number of qubits the identity occupies (`l`).
    pub fn qubit_len(&self) -> usize {
        self.bits.len() / 2
    }

    /// The raw bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The identity as the Pauli operators that encode it (two bits per operator, MSB first).
    pub fn as_paulis(&self) -> Vec<Pauli> {
        self.bits
            .chunks(2)
            .map(|pair| Pauli::from_bits(pair[0], pair[1]))
            .collect()
    }

    /// Hamming distance to another identity (in bits).
    ///
    /// # Panics
    ///
    /// Panics if the identities have different lengths.
    pub fn hamming_distance(&self, other: &IdentityString) -> usize {
        assert_eq!(
            self.bit_len(),
            other.bit_len(),
            "cannot compare identities of different lengths"
        );
        self.bits
            .iter()
            .zip(other.bits.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl fmt::Display for IdentityString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.bits {
            write!(f, "{}", if *b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

/// The pair of pre-shared identities `(id_A, id_B)` known to both legitimate parties (and to
/// nobody else).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdentityPair {
    /// Alice's identity `id_A`.
    pub alice: IdentityString,
    /// Bob's identity `id_B`.
    pub bob: IdentityString,
}

impl IdentityPair {
    /// Creates a pair from two identities.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] if the identities have different lengths (the
    /// protocol reserves `l` qubits for each, so they must match).
    pub fn new(alice: IdentityString, bob: IdentityString) -> Result<Self, ProtocolError> {
        if alice.bit_len() != bob.bit_len() {
            return Err(ProtocolError::InvalidConfig(format!(
                "id_A has {} bits but id_B has {} bits; they must be equal",
                alice.bit_len(),
                bob.bit_len()
            )));
        }
        Ok(Self { alice, bob })
    }

    /// Generates a fresh random identity pair with `l` qubits (`2l` bits) per identity.
    ///
    /// # Panics
    ///
    /// Panics if `l` is zero.
    pub fn generate<R: Rng + ?Sized>(l: usize, rng: &mut R) -> Self {
        Self {
            alice: IdentityString::random(l, rng),
            bob: IdentityString::random(l, rng),
        }
    }

    /// Number of qubits each identity occupies (`l`).
    pub fn qubit_len(&self) -> usize {
        self.alice.qubit_len()
    }
}

impl fmt::Display for IdentityPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id_A={}, id_B={}", self.alice, self.bob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn random_identity_has_requested_size() {
        let id = IdentityString::random(8, &mut rng());
        assert_eq!(id.bit_len(), 16);
        assert_eq!(id.qubit_len(), 8);
        assert_eq!(id.as_paulis().len(), 8);
        assert_eq!(id.bits().len(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_length_identity_panics() {
        let _ = IdentityString::random(0, &mut rng());
    }

    #[test]
    fn from_bits_validation() {
        assert!(IdentityString::from_bits(vec![true, false]).is_ok());
        assert_eq!(
            IdentityString::from_bits(vec![true]),
            Err(ProtocolError::OddIdentityLength(1))
        );
        assert!(matches!(
            IdentityString::from_bits(vec![]),
            Err(ProtocolError::InvalidConfig(_))
        ));
    }

    #[test]
    fn pauli_mapping_follows_paper_rule() {
        let id =
            IdentityString::from_bits(vec![false, false, false, true, true, false, true, true])
                .unwrap();
        assert_eq!(
            id.as_paulis(),
            vec![Pauli::I, Pauli::Z, Pauli::X, Pauli::IY]
        );
    }

    #[test]
    fn hamming_distance() {
        let a = IdentityString::from_bits(vec![true, false, true, false]).unwrap();
        let b = IdentityString::from_bits(vec![true, true, false, false]).unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn hamming_distance_length_mismatch_panics() {
        let a = IdentityString::random(2, &mut rng());
        let b = IdentityString::random(3, &mut rng());
        let _ = a.hamming_distance(&b);
    }

    #[test]
    fn identity_pair_generation_and_validation() {
        let pair = IdentityPair::generate(6, &mut rng());
        assert_eq!(pair.qubit_len(), 6);
        assert_ne!(
            pair.alice, pair.bob,
            "independent identities should differ (w.h.p.)"
        );
        let ok = IdentityPair::new(pair.alice.clone(), pair.bob.clone());
        assert!(ok.is_ok());
        let bad = IdentityPair::new(
            IdentityString::random(2, &mut rng()),
            IdentityString::random(3, &mut rng()),
        );
        assert!(matches!(bad, Err(ProtocolError::InvalidConfig(_))));
    }

    #[test]
    fn display_renders_bits() {
        let id = IdentityString::from_bits(vec![true, false]).unwrap();
        assert_eq!(id.to_string(), "10");
        let pair = IdentityPair::new(id.clone(), id).unwrap();
        assert!(pair.to_string().contains("id_A=10"));
    }

    #[test]
    fn two_generated_pairs_differ() {
        let mut r = rng();
        let a = IdentityPair::generate(16, &mut r);
        let b = IdentityPair::generate(16, &mut r);
        assert_ne!(a, b);
    }
}
