//! Protocol feature/cost descriptors (Table I).
//!
//! The paper's Table I compares the proposed UA-DI-QSDC protocol against four prior DI-QSDC
//! protocols along four axes: resource type, decoding measurement, qubits per message bit and
//! user-authentication support. [`ProtocolDescriptor`] carries one such row; the constructor
//! functions reproduce every row of the table, and the bench harness renders them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The quantum resource a protocol consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceType {
    /// Ordinary two-qubit entanglement (EPR pairs).
    Entanglement,
    /// Hyper-entanglement (entanglement in multiple degrees of freedom).
    HyperEntanglement,
    /// Single-photon (single-qubit) states.
    SingleQubits,
}

impl fmt::Display for ResourceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceType::Entanglement => write!(f, "Entanglement"),
            ResourceType::HyperEntanglement => write!(f, "Hyper-entanglement"),
            ResourceType::SingleQubits => write!(f, "Single qubits"),
        }
    }
}

/// The measurement a protocol uses for decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodingMeasurement {
    /// Bell-state measurement.
    Bsm,
    /// Hyper-entanglement Bell-state measurement.
    Hbsm,
}

impl fmt::Display for DecodingMeasurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodingMeasurement::Bsm => write!(f, "BSM"),
            DecodingMeasurement::Hbsm => write!(f, "HBSM"),
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolDescriptor {
    /// Protocol name / citation.
    pub name: String,
    /// Quantum resource consumed.
    pub resource: ResourceType,
    /// Decoding measurement.
    pub measurement: DecodingMeasurement,
    /// Qubits consumed per message bit.
    pub qubits_per_message_bit: f64,
    /// Whether the protocol authenticates the users.
    pub user_authentication: bool,
    /// Whether this repository contains a runnable implementation of the row.
    pub implemented_here: bool,
}

impl ProtocolDescriptor {
    /// Zhou et al. 2020 — the original DI-QSDC protocol (entanglement, BSM, 1 qubit/bit).
    pub fn zhou_2020() -> Self {
        Self {
            name: "Zhou et al. [10] (2020)".into(),
            resource: ResourceType::Entanglement,
            measurement: DecodingMeasurement::Bsm,
            qubits_per_message_bit: 1.0,
            user_authentication: false,
            implemented_here: true,
        }
    }

    /// Zhou & Sheng 2022 — one-step DI-QSDC based on hyper-entanglement.
    pub fn zhou_2022_hyper() -> Self {
        Self {
            name: "Zhou et al. [11] (2022)".into(),
            resource: ResourceType::HyperEntanglement,
            measurement: DecodingMeasurement::Bsm,
            qubits_per_message_bit: 1.0,
            user_authentication: false,
            implemented_here: false,
        }
    }

    /// Zhou et al. 2023 — DI-QSDC with single-photon sources.
    pub fn zhou_2023_single_photon() -> Self {
        Self {
            name: "Zhou et al. [13] (2023)".into(),
            resource: ResourceType::SingleQubits,
            measurement: DecodingMeasurement::Bsm,
            qubits_per_message_bit: 2.0,
            user_authentication: false,
            implemented_here: false,
        }
    }

    /// Zeng et al. 2023 — high-capacity DI-QSDC based on hyper-encoding.
    pub fn zeng_2023_hyper_encoding() -> Self {
        Self {
            name: "Zeng et al. [12] (2023)".into(),
            resource: ResourceType::HyperEntanglement,
            measurement: DecodingMeasurement::Hbsm,
            qubits_per_message_bit: 0.5,
            user_authentication: false,
            implemented_here: false,
        }
    }

    /// The proposed UA-DI-QSDC protocol (this repository's core contribution).
    pub fn proposed() -> Self {
        Self {
            name: "Proposed UA-DI-QSDC".into(),
            resource: ResourceType::Entanglement,
            measurement: DecodingMeasurement::Bsm,
            qubits_per_message_bit: 1.0,
            user_authentication: true,
            implemented_here: true,
        }
    }

    /// All rows of Table I in the paper's order.
    pub fn table1() -> Vec<Self> {
        vec![
            Self::zhou_2020(),
            Self::zhou_2022_hyper(),
            Self::zhou_2023_single_photon(),
            Self::zeng_2023_hyper_encoding(),
            Self::proposed(),
        ]
    }
}

impl fmt::Display for ProtocolDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} | {} | {}",
            self.name,
            self.resource,
            self.measurement,
            self.qubits_per_message_bit,
            if self.user_authentication {
                "Yes"
            } else {
                "No"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_rows_in_paper_order() {
        let rows = ProtocolDescriptor::table1();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], ProtocolDescriptor::zhou_2020());
        assert_eq!(rows[4], ProtocolDescriptor::proposed());
    }

    #[test]
    fn only_the_proposed_protocol_authenticates_users() {
        let rows = ProtocolDescriptor::table1();
        let ua_rows: Vec<_> = rows.iter().filter(|r| r.user_authentication).collect();
        assert_eq!(ua_rows.len(), 1);
        assert_eq!(ua_rows[0].name, "Proposed UA-DI-QSDC");
    }

    #[test]
    fn proposed_protocol_costs_one_qubit_per_message_bit() {
        let p = ProtocolDescriptor::proposed();
        assert_eq!(p.qubits_per_message_bit, 1.0);
        assert_eq!(p.resource, ResourceType::Entanglement);
        assert_eq!(p.measurement, DecodingMeasurement::Bsm);
        assert!(p.implemented_here);
    }

    #[test]
    fn costs_match_paper_rows() {
        assert_eq!(ProtocolDescriptor::zhou_2020().qubits_per_message_bit, 1.0);
        assert_eq!(
            ProtocolDescriptor::zhou_2022_hyper().qubits_per_message_bit,
            1.0
        );
        assert_eq!(
            ProtocolDescriptor::zhou_2023_single_photon().qubits_per_message_bit,
            2.0
        );
        assert_eq!(
            ProtocolDescriptor::zeng_2023_hyper_encoding().qubits_per_message_bit,
            0.5
        );
    }

    #[test]
    fn display_renders_columns() {
        let text = ProtocolDescriptor::proposed().to_string();
        assert!(text.contains("Entanglement"));
        assert!(text.contains("BSM"));
        assert!(text.contains("Yes"));
        assert_eq!(ResourceType::SingleQubits.to_string(), "Single qubits");
        assert_eq!(DecodingMeasurement::Hbsm.to_string(), "HBSM");
    }
}
