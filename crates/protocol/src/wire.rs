//! The `qsdc-serve` wire protocol: request/response types for the
//! multi-tenant session service.
//!
//! Clients speak **newline-delimited JSON** over a plain TCP stream: every
//! line is one serialized [`Request`] (client → server) or [`Response`]
//! (server → client). The protocol is strictly line-oriented — a message
//! never contains a raw newline, a line never contains two messages — so a
//! client can be written with nothing but a socket and a JSON parser.
//!
//! These shapes are wire format in exactly the sense of the shard pipeline's
//! [`ShardPlan`](crate::engine::ShardPlan) and friends: they cross process
//! (and machine) boundaries, so their serialized bytes are locked by golden
//! fixtures under `tests/fixtures/` and any accidental rename or reorder
//! turns a fixture test red before it breaks a deployed client.
//!
//! A session with the server looks like:
//!
//! ```text
//! S: {"Hello":{"server":"qsdc-serve 0.2.0","wire_version":1,"quota":4,"snapshot_trials":8}}
//! C: {"Submit":{"job":{"Session":{"scenario":{...},"trials":64,"seed":7}}}}
//! S: {"Accepted":{"job":1}}
//! S: {"Snapshot":{"job":1,"trials_done":8,"trials_total":64,"summary":{...}}}
//! S: ...
//! S: {"Done":{"job":1,"summary":{...},"report":null}}
//! ```
//!
//! Backpressure is explicit: a `Submit` past the client's in-flight quota is
//! answered with [`Response::Busy`] — never silently dropped — and the
//! client retries after one of its jobs finishes. See `docs/service.md` for
//! the full grammar and semantics.

use crate::engine::{Campaign, CampaignReport, Scenario, TrialSummary};
use serde::{Deserialize, Serialize};

/// The wire-protocol version spoken by this build. The server announces it
/// in [`Response::Hello`]; clients reject servers they do not understand
/// rather than misinterpreting frames.
pub const WIRE_VERSION: u32 = 1;

/// The spool job-manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// The work a client submits: a single-scenario sweep or a whole campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobSpec {
    /// Run `trials` trials of one scenario under `seed`, exactly as
    /// [`SessionEngine::run_trials`](crate::engine::SessionEngine::run_trials)
    /// would — the result is byte-identical to the local run.
    Session {
        /// The scenario to execute.
        scenario: Scenario,
        /// Number of trials.
        trials: usize,
        /// The engine's master seed.
        seed: u64,
    },
    /// Run a stored campaign definition (session workloads only — sampled
    /// workloads need a process-local sampler and are refused with
    /// [`ErrorKind::Unsupported`]).
    Campaign {
        /// The campaign to execute.
        campaign: Campaign,
    },
}

/// One client → server message (one JSON line).
/// (Variant size skew is fine: requests are parsed once per line, not
/// stored in bulk.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub enum Request {
    /// Submit a job. Answered with [`Response::Accepted`] or
    /// [`Response::Busy`].
    Submit {
        /// What to run.
        job: JobSpec,
    },
    /// Cancel an accepted job. Workers stop claiming its shards; the job is
    /// marked cancelled in the spool so a restarted server does not resume
    /// it. Answered with [`Response::Cancelled`] or an `UnknownJob` error.
    Cancel {
        /// The job id from [`Response::Accepted`].
        job: u64,
    },
    /// Ask for a job's progress. Answered with [`Response::Status`].
    Status {
        /// The job id from [`Response::Accepted`].
        job: u64,
    },
    /// Liveness probe. Answered with [`Response::Pong`].
    Ping,
}

/// A job's lifecycle state as reported by [`Response::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted and being drained by the worker pool.
    Running,
    /// Every shard done; the final result is written and sent.
    Done,
    /// Cancelled by the client; no result will be produced.
    Cancelled,
}

/// Why the server refused a request (the `kind` of [`Response::Error`]).
/// Named kinds so tests — and clients — can match on the cause instead of
/// parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The line was not valid JSON, or parsed to no known [`Request`].
    Malformed,
    /// The line exceeded the server's maximum frame length. The remainder
    /// of the oversized line is discarded; the connection stays usable.
    Oversized,
    /// A `Cancel`/`Status` named a job this server does not know.
    UnknownJob,
    /// The job is well-formed but not servable (e.g. a sampled-workload
    /// campaign, which needs a process-local sampler).
    Unsupported,
    /// The server hit an internal fault (I/O, queue corruption) serving the
    /// request; the message carries the underlying error's rendering.
    Internal,
}

/// One server → client message (one JSON line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The greeting sent once per connection, before any request.
    Hello {
        /// Server name and version, for diagnostics.
        server: String,
        /// The protocol version ([`WIRE_VERSION`]); clients must check it.
        wire_version: u32,
        /// This client's in-flight job quota.
        quota: usize,
        /// Snapshot streaming granularity: a [`Response::Snapshot`] is sent
        /// roughly every this many completed trials.
        snapshot_trials: usize,
    },
    /// The submitted job was accepted under this id and spooled durably —
    /// from here on, even a SIGKILLed server finishes it after restart.
    Accepted {
        /// The job's id, unique per spool directory.
        job: u64,
    },
    /// Backpressure: the client already has `in_flight` unfinished jobs, at
    /// or above its quota. The submission was **not** enqueued; retry after
    /// one of the in-flight jobs completes.
    Busy {
        /// The client's currently unfinished job count.
        in_flight: usize,
        /// The per-client in-flight quota.
        quota: usize,
    },
    /// A streaming progress snapshot: the merged summary of the contiguous
    /// completed prefix of the job's trials. Sent roughly every
    /// `snapshot_trials` completed trials (session jobs only).
    Snapshot {
        /// The job this snapshot belongs to.
        job: u64,
        /// Trials covered by this snapshot (the contiguous done prefix).
        trials_done: u64,
        /// The job's total trial count.
        trials_total: u64,
        /// Summary over the first `trials_done` trials, byte-identical to a
        /// local run of that prefix.
        summary: TrialSummary,
    },
    /// The job finished. Exactly one of `summary` (session jobs) or
    /// `report` (campaign jobs) is present.
    Done {
        /// The finished job.
        job: u64,
        /// The final merged summary of a session job.
        summary: Option<TrialSummary>,
        /// The folded report of a campaign job.
        report: Option<CampaignReport>,
    },
    /// The job was cancelled; no result will be produced.
    Cancelled {
        /// The cancelled job.
        job: u64,
    },
    /// Progress report for a [`Request::Status`].
    Status {
        /// The queried job.
        job: u64,
        /// Lifecycle state.
        state: JobState,
        /// Completed trials so far.
        trials_done: u64,
        /// The job's total trial count.
        trials_total: u64,
    },
    /// Liveness answer to [`Request::Ping`].
    Pong,
    /// The request was refused; `kind` names the cause.
    Error {
        /// The named cause.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// The durable record of an accepted job, written to
/// `spool/job-NNNNNNNNNN/job.json` before the job is acknowledged. A
/// restarted server rescans the spool, reopens each manifest, and finishes
/// every job that has no final result yet — byte-identically, because the
/// shard queue under the same directory is the real persistence layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobManifest {
    /// Manifest format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// The job id ([`Response::Accepted`]).
    pub job: u64,
    /// The submitting client's identity (diagnostics only).
    pub client: String,
    /// What to run.
    pub spec: JobSpec,
    /// Shard granularity the job was lowered with (also the snapshot
    /// streaming interval for session jobs).
    pub shard_trials: usize,
}
