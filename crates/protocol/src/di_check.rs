//! Device-independent security checks (CHSH rounds).
//!
//! The protocol performs two CHSH-estimation rounds on sacrificed pairs: round one right
//! after entanglement sharing (Alice and Bob each measure their own half) and round two after
//! transmission (Bob measures both halves himself). In the device-independent threat model
//! the parties trust nothing but the observed input–output statistics, so the only decision
//! input is the estimated CHSH value `S`: the protocol continues only if `S` exceeds the
//! classical bound.

use qchannel::epr::EprPair;
use qsim::chsh::{chsh_value, MeasurementRecord};
use qsim::measurement::MeasurementBasis;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the two DI-check rounds a report belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiCheckRound {
    /// Round 1 — after entanglement sharing, before Alice's encoding/transmission.
    First,
    /// Round 2 — after transmission, performed entirely by Bob.
    Second,
}

impl fmt::Display for DiCheckRound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiCheckRound::First => write!(f, "round 1"),
            DiCheckRound::Second => write!(f, "round 2"),
        }
    }
}

/// The outcome of one DI-security-check round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiCheckReport {
    /// Which round this is.
    pub round: DiCheckRound,
    /// The estimated CHSH value, if every setting combination collected at least one sample.
    pub chsh: Option<f64>,
    /// Number of pairs sacrificed.
    pub pairs_used: usize,
    /// Number of pairs that actually entered the CHSH estimate (Alice setting ∈ {1, 2}).
    pub pairs_in_estimate: usize,
    /// The abort threshold that was applied.
    pub threshold: f64,
    /// `true` when the round passed (`S > threshold`).
    pub passed: bool,
}

impl DiCheckReport {
    /// The deviation `ε = 2√2 − S` from the ideal quantum value (`None` when the estimate is
    /// unavailable). A negative value just means the finite-sample estimate exceeded `2√2`.
    pub fn epsilon(&self) -> Option<f64> {
        self.chsh.map(|s| qsim::chsh::TSIRELSON_BOUND - s)
    }
}

impl fmt::Display for DiCheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.chsh {
            Some(s) => write!(
                f,
                "DI check {}: S = {:.4} over {} pairs ({} in estimate) → {}",
                self.round,
                s,
                self.pairs_used,
                self.pairs_in_estimate,
                if self.passed { "continue" } else { "abort" }
            ),
            None => write!(
                f,
                "DI check {}: insufficient statistics over {} pairs → abort",
                self.round, self.pairs_used
            ),
        }
    }
}

/// Runs one DI-check round over the given pairs (consuming them measurement-wise), with both
/// parties choosing settings uniformly at random exactly as the paper prescribes: Alice from
/// `{A0, A1, A2}`, Bob from `{B1, B2}`. Pairs where Alice chose `A0` (the key-generation
/// basis) do not enter the CHSH estimate.
///
/// Returns the report plus the raw records (the protocol publishes these on the classical
/// channel for round one).
pub fn run_di_check<R: Rng + ?Sized>(
    round: DiCheckRound,
    pairs: &mut [EprPair],
    threshold: f64,
    rng: &mut R,
) -> (DiCheckReport, Vec<MeasurementRecord>) {
    run_check_loop(round, pairs, None, threshold, rng)
}

/// Like [`run_di_check`], but sacrifices only the pairs at the given
/// `positions` (in order), measuring them **in place**. This is the
/// engine's hot path: the check block stays inside the session's pair
/// store, so no pair is cloned just to be measured and dropped.
///
/// Draw-for-draw identical to cloning the pairs at `positions` into a
/// fresh slice and calling [`run_di_check`] on it.
///
/// # Panics
///
/// Panics if any position is out of range. Repeated positions are a
/// logic error (the second visit re-measures an already collapsed
/// pair) and are rejected in debug builds.
pub fn run_di_check_at<R: Rng + ?Sized>(
    round: DiCheckRound,
    pairs: &mut [EprPair],
    positions: &[usize],
    threshold: f64,
    rng: &mut R,
) -> (DiCheckReport, Vec<MeasurementRecord>) {
    debug_assert!(
        {
            let mut seen = std::collections::BTreeSet::new();
            positions.iter().all(|&p| seen.insert(p))
        },
        "DI-check positions must be distinct"
    );
    run_check_loop(round, pairs, Some(positions), threshold, rng)
}

fn run_check_loop<R: Rng + ?Sized>(
    round: DiCheckRound,
    pairs: &mut [EprPair],
    positions: Option<&[usize]>,
    threshold: f64,
    rng: &mut R,
) -> (DiCheckReport, Vec<MeasurementRecord>) {
    let pairs_used = positions.map_or(pairs.len(), <[usize]>::len);
    let mut records = Vec::with_capacity(pairs_used);
    let mut in_estimate = 0usize;
    for i in 0..pairs_used {
        let pair = match positions {
            Some(positions) => &mut pairs[positions[i]],
            None => &mut pairs[i],
        };
        let alice_setting = rng.gen_range(0..3usize);
        let bob_setting = rng.gen_range(1..=2usize);
        let (alice_outcome, bob_outcome) = pair.measure_both_in_bases(
            MeasurementBasis::alice(alice_setting).angle(),
            MeasurementBasis::bob(bob_setting).angle(),
            rng,
        );
        if alice_setting == 1 || alice_setting == 2 {
            in_estimate += 1;
            records.push(MeasurementRecord::new(
                alice_setting,
                bob_setting,
                alice_outcome,
                bob_outcome,
            ));
        }
    }
    let chsh = chsh_value(&records);
    let passed = chsh.map(|s| s > threshold).unwrap_or(false);
    (
        DiCheckReport {
            round,
            chsh,
            pairs_used,
            pairs_in_estimate: in_estimate,
            threshold,
            passed,
        },
        records,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::pauli::Pauli;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(909)
    }

    fn ideal_pairs(count: usize) -> Vec<EprPair> {
        (0..count).map(|_| EprPair::ideal()).collect()
    }

    #[test]
    fn honest_pairs_violate_chsh() {
        let mut pairs = ideal_pairs(400);
        let (report, records) = run_di_check(DiCheckRound::First, &mut pairs, 2.0, &mut rng());
        assert!(report.passed, "ideal Φ+ pairs must pass: {report}");
        let s = report.chsh.unwrap();
        assert!(
            s > 2.3,
            "CHSH should be well above the classical bound, got {s}"
        );
        assert!(s <= 4.0);
        assert!(!records.is_empty());
        assert!(report.pairs_in_estimate <= report.pairs_used);
        assert!(report.epsilon().unwrap() < 0.6);
    }

    #[test]
    fn separable_pairs_fail_the_check() {
        // A man-in-the-middle style substitution: fresh |00⟩ pairs with no correlations in the
        // X–Y plane measurement bases.
        let mut pairs: Vec<EprPair> = (0..400).map(|_| EprPair::separable(0, 0)).collect();
        let (report, _) = run_di_check(DiCheckRound::Second, &mut pairs, 2.0, &mut rng());
        assert!(!report.passed, "separable states must not pass: {report}");
        let s = report.chsh.unwrap();
        assert!(s.abs() < 1.0, "uncorrelated outcomes give S ≈ 0, got {s}");
    }

    #[test]
    fn dephased_pairs_fail_the_check() {
        // Fully dephasing Alice's qubit (what an intercept-and-resend in the Z basis does)
        // caps the CHSH value at the classical bound.
        let mut pairs = ideal_pairs(400);
        for pair in &mut pairs {
            // Z-basis measurement by Eve == 50/50 Z error from the pair's point of view.
            noise::KrausChannel::phase_flip(0.5).apply(pair.density_mut(), &[0]);
        }
        let (report, _) = run_di_check(DiCheckRound::Second, &mut pairs, 2.0, &mut rng());
        let s = report.chsh.unwrap();
        assert!(
            s <= 2.0 + 0.3,
            "fully dephased pairs cannot exceed 2 (plus noise), got {s}"
        );
        assert!(!report.passed || s <= 2.3);
    }

    #[test]
    fn encoded_pairs_still_violate_chsh() {
        // A Pauli applied by Alice rotates which Bell state the pair is in but does not
        // destroy non-locality; the |S| stays at 2√2 even though its sign structure changes.
        // The protocol never runs the check on encoded pairs, but this documents why the
        // ordering matters: the check is calibrated for Φ+ only.
        let mut pairs = ideal_pairs(300);
        for pair in &mut pairs {
            pair.apply_alice_pauli(Pauli::X);
        }
        let (report, _) = run_di_check(DiCheckRound::First, &mut pairs, 2.0, &mut rng());
        // Ψ+ has correlators cos(θa − θb) under our convention, so the *protocol's* CHSH
        // combination no longer reaches 2√2 — it lands near 0.
        let s = report.chsh.unwrap();
        assert!(
            s.abs() < 1.0,
            "encoded pairs break the calibrated CHSH combination, got {s}"
        );
    }

    #[test]
    fn empty_pair_list_reports_insufficient_statistics() {
        let mut pairs: Vec<EprPair> = Vec::new();
        let (report, records) = run_di_check(DiCheckRound::First, &mut pairs, 2.0, &mut rng());
        assert!(!report.passed);
        assert_eq!(report.chsh, None);
        assert_eq!(report.epsilon(), None);
        assert!(records.is_empty());
        assert!(report.to_string().contains("insufficient"));
    }

    #[test]
    fn threshold_is_respected() {
        let mut pairs = ideal_pairs(400);
        let (report, _) = run_di_check(DiCheckRound::First, &mut pairs, 3.9, &mut rng());
        assert!(!report.passed, "a threshold of 3.9 can never be met");
    }

    #[test]
    fn round_display() {
        assert_eq!(DiCheckRound::First.to_string(), "round 1");
        assert_eq!(DiCheckRound::Second.to_string(), "round 2");
    }

    #[test]
    fn noisy_but_entangled_pairs_still_pass() {
        // Mild depolarizing noise (short channel) keeps S above 2.
        let mut pairs = ideal_pairs(400);
        for pair in &mut pairs {
            noise::KrausChannel::depolarizing(0.05).apply(pair.density_mut(), &[0]);
        }
        let (report, _) = run_di_check(DiCheckRound::Second, &mut pairs, 2.0, &mut rng());
        assert!(report.passed, "{report}");
        assert!(report.chsh.unwrap() > 2.0);
        assert!(report.chsh.unwrap() < qsim::chsh::TSIRELSON_BOUND + 0.3);
    }
}
