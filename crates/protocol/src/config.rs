//! Session configuration.
//!
//! [`SessionConfig`] gathers every knob of a UA-DI-QSDC run: message and check-bit lengths,
//! the DI-check budget `d`, abort thresholds, and the quantum channel specification. The
//! builder validates the combination (for example `n + c` must be even so the padded message
//! maps onto whole qubits).

use crate::error::ProtocolError;
use qchannel::quantum::ChannelSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Complete configuration of one protocol session.
///
/// # Examples
///
/// ```rust
/// use protocol::config::SessionConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = SessionConfig::builder()
///     .message_bits(32)
///     .check_bits(8)
///     .di_check_pairs(200)
///     .build()?;
/// assert_eq!(config.padded_bits(), 40);
/// assert_eq!(config.message_qubits(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    message_bits: usize,
    check_bits: usize,
    di_check_pairs: usize,
    chsh_abort_threshold: f64,
    auth_error_tolerance: f64,
    check_bit_error_tolerance: f64,
    channel: ChannelSpec,
}

impl SessionConfig {
    /// Starts a builder with sensible defaults (16 message bits, 4 check bits, 256 DI-check
    /// pairs per round, CHSH abort threshold 2, 15 % auth / integrity tolerances, ideal
    /// channel).
    pub fn builder() -> SessionConfigBuilder {
        SessionConfigBuilder::default()
    }

    /// Number of secret message bits `n`.
    pub fn message_bits(&self) -> usize {
        self.message_bits
    }

    /// Number of integrity check bits `c`.
    pub fn check_bits(&self) -> usize {
        self.check_bits
    }

    /// Length of the padded message `m'` in bits (`n + c = 2N`).
    pub fn padded_bits(&self) -> usize {
        self.message_bits + self.check_bits
    }

    /// Number of message-carrying qubits `N`.
    pub fn message_qubits(&self) -> usize {
        self.padded_bits() / 2
    }

    /// Number of EPR pairs sacrificed per DI-security-check round (`d`).
    pub fn di_check_pairs(&self) -> usize {
        self.di_check_pairs
    }

    /// The CHSH value below which (or at which) the protocol aborts. The paper requires
    /// `S = 2√2 − ε > 2`, so the default threshold is the classical bound 2.
    pub fn chsh_abort_threshold(&self) -> f64 {
        self.chsh_abort_threshold
    }

    /// Maximum tolerated fraction of mismatched identity qubits before an authentication
    /// abort.
    pub fn auth_error_tolerance(&self) -> f64 {
        self.auth_error_tolerance
    }

    /// Maximum tolerated error rate on the revealed check bits before an integrity abort.
    pub fn check_bit_error_tolerance(&self) -> f64 {
        self.check_bit_error_tolerance
    }

    /// The quantum channel specification used when Alice sends her qubits to Bob.
    pub fn channel(&self) -> &ChannelSpec {
        &self.channel
    }

    /// Total EPR pairs a session consumes for an identity of `l` qubits:
    /// `N + 2l + 2d` (paper, Section II step 1).
    pub fn total_pairs(&self, identity_qubits: usize) -> usize {
        self.message_qubits() + 2 * identity_qubits + 2 * self.di_check_pairs
    }
}

impl fmt::Display for SessionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SessionConfig(n={}, c={}, d={}, CHSH>{}, auth_tol={}, chk_tol={}, {})",
            self.message_bits,
            self.check_bits,
            self.di_check_pairs,
            self.chsh_abort_threshold,
            self.auth_error_tolerance,
            self.check_bit_error_tolerance,
            self.channel
        )
    }
}

/// Builder for [`SessionConfig`].
#[derive(Debug, Clone)]
pub struct SessionConfigBuilder {
    message_bits: usize,
    check_bits: usize,
    di_check_pairs: usize,
    chsh_abort_threshold: f64,
    auth_error_tolerance: f64,
    check_bit_error_tolerance: f64,
    channel: ChannelSpec,
}

impl Default for SessionConfigBuilder {
    fn default() -> Self {
        Self {
            message_bits: 16,
            check_bits: 4,
            di_check_pairs: 256,
            chsh_abort_threshold: 2.0,
            auth_error_tolerance: 0.15,
            check_bit_error_tolerance: 0.15,
            channel: ChannelSpec::ideal(),
        }
    }
}

impl SessionConfigBuilder {
    /// Sets the number of secret message bits `n`.
    #[must_use]
    pub fn message_bits(mut self, n: usize) -> Self {
        self.message_bits = n;
        self
    }

    /// Sets the number of integrity check bits `c`.
    #[must_use]
    pub fn check_bits(mut self, c: usize) -> Self {
        self.check_bits = c;
        self
    }

    /// Sets the DI-check pair budget `d` per round.
    #[must_use]
    pub fn di_check_pairs(mut self, d: usize) -> Self {
        self.di_check_pairs = d;
        self
    }

    /// Sets the CHSH abort threshold (protocol aborts when `S ≤ threshold`).
    #[must_use]
    pub fn chsh_abort_threshold(mut self, threshold: f64) -> Self {
        self.chsh_abort_threshold = threshold;
        self
    }

    /// Sets the authentication error tolerance (fraction of identity qubits allowed to
    /// mismatch).
    #[must_use]
    pub fn auth_error_tolerance(mut self, tolerance: f64) -> Self {
        self.auth_error_tolerance = tolerance;
        self
    }

    /// Sets the check-bit error tolerance for the final integrity verification.
    #[must_use]
    pub fn check_bit_error_tolerance(mut self, tolerance: f64) -> Self {
        self.check_bit_error_tolerance = tolerance;
        self
    }

    /// Sets the quantum channel specification.
    #[must_use]
    pub fn channel(mut self, channel: ChannelSpec) -> Self {
        self.channel = channel;
        self
    }

    /// Validates the configuration and builds it.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] when:
    /// - the message is empty,
    /// - `n + c` is odd,
    /// - fewer than 16 DI-check pairs are budgeted (the CHSH estimate would be meaningless),
    /// - any tolerance / threshold is outside its valid range.
    pub fn build(self) -> Result<SessionConfig, ProtocolError> {
        if self.message_bits == 0 {
            return Err(ProtocolError::InvalidConfig(
                "message must contain at least one bit".into(),
            ));
        }
        if !(self.message_bits + self.check_bits).is_multiple_of(2) {
            return Err(ProtocolError::InvalidConfig(format!(
                "n + c must be even, got {} + {}",
                self.message_bits, self.check_bits
            )));
        }
        if self.di_check_pairs < 16 {
            return Err(ProtocolError::InvalidConfig(format!(
                "at least 16 DI-check pairs are required for a usable CHSH estimate, got {}",
                self.di_check_pairs
            )));
        }
        if !(0.0..=4.0).contains(&self.chsh_abort_threshold) {
            return Err(ProtocolError::InvalidConfig(
                "CHSH abort threshold must lie in [0, 4]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.auth_error_tolerance)
            || !(0.0..=1.0).contains(&self.check_bit_error_tolerance)
        {
            return Err(ProtocolError::InvalidConfig(
                "tolerances must lie in [0, 1]".into(),
            ));
        }
        Ok(SessionConfig {
            message_bits: self.message_bits,
            check_bits: self.check_bits,
            di_check_pairs: self.di_check_pairs,
            chsh_abort_threshold: self.chsh_abort_threshold,
            auth_error_tolerance: self.auth_error_tolerance,
            check_bit_error_tolerance: self.check_bit_error_tolerance,
            channel: self.channel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noise::DeviceModel;

    #[test]
    fn default_builder_produces_valid_config() {
        let config = SessionConfig::builder().build().unwrap();
        assert_eq!(config.message_bits(), 16);
        assert_eq!(config.check_bits(), 4);
        assert_eq!(config.padded_bits(), 20);
        assert_eq!(config.message_qubits(), 10);
        assert_eq!(config.di_check_pairs(), 256);
        assert_eq!(config.chsh_abort_threshold(), 2.0);
        assert!(config.channel().device().is_ideal());
        // N + 2l + 2d with l = 4: 10 + 8 + 512 = 530
        assert_eq!(config.total_pairs(4), 530);
        assert!(config.to_string().contains("n=16"));
    }

    #[test]
    fn builder_overrides() {
        let config = SessionConfig::builder()
            .message_bits(32)
            .check_bits(8)
            .di_check_pairs(64)
            .chsh_abort_threshold(2.2)
            .auth_error_tolerance(0.0)
            .check_bit_error_tolerance(0.25)
            .channel(ChannelSpec::noisy_identity_chain(
                10,
                DeviceModel::ibm_brisbane_like(),
            ))
            .build()
            .unwrap();
        assert_eq!(config.message_bits(), 32);
        assert_eq!(config.check_bits(), 8);
        assert_eq!(config.di_check_pairs(), 64);
        assert!((config.chsh_abort_threshold() - 2.2).abs() < 1e-12);
        assert_eq!(config.auth_error_tolerance(), 0.0);
        assert!((config.check_bit_error_tolerance() - 0.25).abs() < 1e-12);
        assert_eq!(config.channel().length(), 10);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SessionConfig::builder().message_bits(0).build().is_err());
        assert!(SessionConfig::builder()
            .message_bits(3)
            .check_bits(2)
            .build()
            .is_err());
        assert!(SessionConfig::builder().di_check_pairs(4).build().is_err());
        assert!(SessionConfig::builder()
            .chsh_abort_threshold(5.0)
            .build()
            .is_err());
        assert!(SessionConfig::builder()
            .auth_error_tolerance(1.5)
            .build()
            .is_err());
        assert!(SessionConfig::builder()
            .check_bit_error_tolerance(-0.1)
            .build()
            .is_err());
    }
}
