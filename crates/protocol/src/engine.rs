//! The session execution engine: one coherent, batch-capable API for running
//! UA-DI-QSDC sessions under any adversarial setting.
//!
//! - [`Scenario`] declaratively bundles *what* to run: a [`SessionConfig`], the
//!   pre-shared [`IdentityPair`], an optional fixed [`SecretMessage`] (random
//!   per trial when absent) and an [`Adversary`].
//! - [`SessionEngine`] knows *how* to run it: which [`Backend`] simulates the
//!   quantum substrate and which master seed derives the per-trial RNG
//!   streams. [`SessionEngine::run`] executes one session,
//!   [`SessionEngine::run_trials`] aggregates `n` sessions into a
//!   [`TrialSummary`], and [`SessionEngine::run_batch`] does so for many
//!   scenarios at once.
//!
//! Every trial draws its randomness from a stream derived from
//! `(master seed, scenario fingerprint, trial index)`, so results are
//! bit-for-bit reproducible, independent of execution order, and independent
//! of which other scenarios share the batch. The [`parallel`] module turns
//! that property into wall-clock speed: configure the engine with a
//! [`Parallelism`] policy (e.g.
//! [`with_parallelism(Parallelism::Auto)`](SessionEngine::with_parallelism))
//! and `run_outcomes` / `run_trials` / `run_batch` fan trials and scenarios
//! across worker threads while returning exactly the serial results; the
//! `*_with_stats` variants additionally report an [`ExecutorStats`] with
//! per-worker trial counts and wall time.
//!
//! The same contract extends beyond one process: every run decomposes into
//! the explicit plan → execute → merge stages of the [`shard`] module — a
//! serde [`ShardPlan`] splits a trial range across workers or machines,
//! [`SessionEngine::execute_shard`] turns one shard into a [`ShardResult`],
//! and a [`ShardMerger`] folds results back in trial order, byte-identical to
//! the unsharded run. `run_outcomes` / `run_trials` are the whole-run special
//! case of that pipeline. For a heterogeneous fleet, the [`queue`] module
//! schedules those shards dynamically: a [`ShardQueue`] on a shared directory
//! hands sub-plans out on a claim/lease basis and persists progress in a
//! resumable, fingerprint-verified [`MergeCheckpoint`]. One level up, the
//! [`campaign`] module makes whole parameter sweeps declarative: a serde
//! [`Campaign`] expands a grid of axes over a base scenario and lowers every
//! point onto this same pipeline, folding the merged runs into a
//! [`CampaignReport`] with confidence-intervalled detection rates.
//!
//! ```rust
//! use protocol::engine::{Adversary, Scenario, SessionEngine};
//! use protocol::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let identities = IdentityPair::generate(6, &mut rng);
//! let config = SessionConfig::builder()
//!     .message_bits(16)
//!     .check_bits(4)
//!     .di_check_pairs(60)
//!     .build()?;
//! let scenario = Scenario::new(config, identities);
//! let engine = SessionEngine::new(42);
//! let outcome = engine.run(&scenario)?;
//! assert!(outcome.is_delivered());
//! # Ok(())
//! # }
//! ```

pub mod campaign;
pub mod parallel;
pub mod queue;
pub mod shard;

pub use campaign::{
    derive_point_seed, Axis, AxisValue, Campaign, CampaignError, CampaignPoint,
    CampaignPointReport, CampaignReport, CampaignRun, CampaignRunOptions, CampaignSpace,
    CampaignStatus, CampaignWorkload, NoSampler, RateInterval, Sampler,
};
pub use parallel::{ExecutorStats, Parallelism};
pub use queue::{
    ClaimOutcome, LeaseHeartbeat, MergeCheckpoint, QueueError, QueueStatus, ShardQueue, ShardSlot,
    SlotState, SubmitOutcome, MIN_LEASE_MS,
};
pub use shard::{
    merge_shard_results, MergeError, MergedRun, ShardMerger, ShardOutput, ShardPayload, ShardPlan,
    ShardResult,
};

use crate::auth::{self, AuthReport};
use crate::config::SessionConfig;
use crate::di_check::{run_di_check_at, DiCheckReport, DiCheckRound};
use crate::error::ProtocolError;
use crate::identity::IdentityPair;
use crate::message::{PaddedMessage, SecretMessage};
use crate::session::{AbortStage, Impersonation, ResourceUsage, SessionOutcome, SessionStatus};
use qchannel::classical::{ClassicalChannel, ClassicalMessage, Party};
use qchannel::compiled::CompiledQuantumChannel;
use qchannel::epr::EprPair;
use qchannel::quantum::{ChannelTap, NoTap};
use qchannel::taps::{
    EntangleMeasureAttack, InterceptBasis, InterceptResendAttack, ManInTheMiddleAttack,
    SubstituteState,
};
use qsim::bell::BellState;
use qsim::density::DensityMatrix;
use qsim::pauli::Pauli;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;

// ------------------------------------------------------------------ backend --

/// The simulation substrate a [`SessionEngine`] runs sessions on.
///
/// The default [`DensityMatrixBackend`] reproduces the paper's emulation
/// (density-matrix pairs, noisy identity-gate channel). Alternative backends —
/// sparse simulators, GPU batches, hardware adapters — implement the same two
/// hooks and plug into the engine unchanged.
pub trait Backend: fmt::Debug + Send + Sync {
    /// Short human-readable backend name (for reports).
    fn name(&self) -> &str;

    /// Emits one entangled pair from the (possibly adversary-controlled)
    /// source and distributes it to the two parties.
    ///
    /// The channel arrives **precompiled**: the engine compiles each
    /// scenario's noise program once (at fingerprint time) and every trial
    /// runs against the compiled placements, so backends never pay per-call
    /// channel construction, validation, or embedding.
    fn emit_pair(
        &self,
        channel: &CompiledQuantumChannel,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) -> EprPair;

    /// Emits one pair into `slot`, reusing its buffers where the backend
    /// supports it. Behaviourally identical to
    /// `*slot = self.emit_pair(channel, tap, rng)` — the default does
    /// exactly that — but backends with allocation-free emission override
    /// it so the engine's pooled trial loop never touches the heap.
    fn emit_pair_into(
        &self,
        slot: &mut EprPair,
        channel: &CompiledQuantumChannel,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        *slot = self.emit_pair(channel, tap, rng);
    }

    /// Transmits Alice's half of `pair` to Bob through the channel, letting
    /// the tap act first.
    fn transmit(
        &self,
        channel: &CompiledQuantumChannel,
        pair: &mut EprPair,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    );
}

/// The default backend: density-matrix pairs from a noisy source, transmitted
/// through the η-identity-gate channel (the paper's Section IV emulation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DensityMatrixBackend;

impl Backend for DensityMatrixBackend {
    fn name(&self) -> &str {
        "density-matrix"
    }

    fn emit_pair(
        &self,
        channel: &CompiledQuantumChannel,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) -> EprPair {
        let mut pair = channel.emit_noisy_pair();
        channel.distribute_tapped(&mut pair, tap, rng);
        pair
    }

    fn emit_pair_into(
        &self,
        slot: &mut EprPair,
        channel: &CompiledQuantumChannel,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        channel.emit_noisy_pair_into(slot);
        channel.distribute_tapped(slot, tap, rng);
    }

    fn transmit(
        &self,
        channel: &CompiledQuantumChannel,
        pair: &mut EprPair,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        channel.transmit_tapped(pair, tap, rng);
    }
}

/// The sampled pure-state backend: Monte-Carlo wavefunction trajectories.
///
/// Where [`DensityMatrixBackend`] applies every noise channel exactly
/// (`ρ → Σᵢ Kᵢ ρ Kᵢ†`), this backend Born-samples **one** Kraus branch per
/// channel application and renormalises (`|ψ⟩ → Kᵢ|ψ⟩/√pᵢ`), so noisy EPR
/// emission and η-gate transmission evolve as a single stochastic pure-state
/// trajectory per pair. Averaged over trials the substrates agree; per trial
/// the sampled substrate is an approximation whose detection-rate curves the
/// `ablation_backend` binary (bench crate) quantifies against the exact
/// emulation.
///
/// Channel taps keep acting on the pair's density representation, exactly as
/// on the default backend. When a tap leaves a pair mixed (e.g.
/// entangle-and-measure traces out its ancilla), transmission falls back to
/// branch-sampling on the density matrix — the same one-branch-per-step
/// unravelling, without requiring purity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatevectorBackend;

/// Purity tolerance under which a pair still counts as pure for trajectory
/// extraction.
const PURITY_TOL: f64 = 1e-9;

impl Backend for StatevectorBackend {
    fn name(&self) -> &str {
        "statevector"
    }

    fn emit_pair(
        &self,
        channel: &CompiledQuantumChannel,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) -> EprPair {
        let mut psi = BellState::PhiPlus.statevector();
        // The compiled placements exist exactly when the device is noisy, so
        // the trajectory (and its RNG draws) matches the one-shot path.
        if let Some(source) = channel.source() {
            source
                .sample(&mut psi, rng)
                .expect("source-noise trajectory step on a normalised pair");
        }
        for prep in [channel.prep_alice(), channel.prep_bob()]
            .into_iter()
            .flatten()
        {
            prep.sample(&mut psi, rng)
                .expect("state-prep trajectory step on a normalised pair");
        }
        let mut pair = EprPair::from_density(DensityMatrix::from_statevector(&psi));
        channel.distribute_tapped(&mut pair, tap, rng);
        pair
    }

    fn transmit(
        &self,
        channel: &CompiledQuantumChannel,
        pair: &mut EprPair,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        // Same tap contract as the physical channel: Eve acts at the channel
        // entrance, then the (here: sampled) noise applies.
        tap.on_transmit(pair, rng);
        let spec = channel.spec();
        // `gate_alice` is compiled exactly when the device is noisy.
        let Some(gate) = channel.gate_alice() else {
            return;
        };
        if spec.length() == 0 {
            return;
        }
        let idle = channel.idle_bob();
        if let Some(mut psi) = pair.density().as_pure_state(PURITY_TOL) {
            for _ in 0..spec.length() {
                gate.sample(&mut psi, rng)
                    .expect("gate-noise trajectory step on a normalised pair");
                if let Some(idle) = idle {
                    idle.sample(&mut psi, rng)
                        .expect("idle-noise trajectory step on a normalised pair");
                }
            }
            *pair = EprPair::from_density(DensityMatrix::from_statevector(&psi));
        } else {
            for _ in 0..spec.length() {
                gate.sample_density(pair.density_mut(), rng)
                    .expect("gate-noise trajectory step on a unit-trace pair");
                if let Some(idle) = idle {
                    idle.sample_density(pair.density_mut(), rng)
                        .expect("idle-noise trajectory step on a unit-trace pair");
                }
            }
        }
    }
}

/// The Pauli-twirled stabilizer backend: integer-only Pauli-frame tracking
/// for billion-trial sweeps.
///
/// At compile time every noise placement of the scenario's channel is
/// projected onto its Pauli twirl (`p_P = |Tr(P·Kᵢ)|²/d²` summed over Kraus
/// operators) and the whole emission / transmission program collapses into
/// two Klein-group distributions (see [`qchannel::TwirledProgram`]). Each
/// trial then tracks every pair as a **Pauli frame** — two bits naming which
/// Bell state it is — so the honest data path runs on integer/bitmask
/// arithmetic: no complex numbers, no 4×4 matrices, no heap allocation.
///
/// The lowering is *exact* when every placement is already Pauli-diagonal
/// (depolarizing, bit/phase flip — e.g. the emission leg of the brisbane
/// device) and a Pauli-twirled *approximation* otherwise (amplitude damping
/// twirls approximately); [`qchannel::TwirledProgram::is_exact`] reports
/// which regime a compiled scenario is in, and the `ablation_backend` binary
/// (bench crate) quantifies the divergence against the exact substrates.
///
/// Channel taps still see the full density matrix: before an **active** tap
/// hook runs, the pair materialises its Bell state into the (stale) density
/// buffer in place; afterwards the state is re-projected onto the Bell
/// diagonal with one RNG draw ([`EprPair::twirl_to_frame`]) — the twirl
/// approximation applied at the tap boundary. Passive taps
/// ([`ChannelTap::acts_on_emission`] / [`ChannelTap::acts_on_transmit`]
/// returning `false`, e.g. `NoTap` on emission for the stock attacks) skip
/// the round-trip entirely, keeping the hot path integer-only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PauliTwirledBackend;

impl Backend for PauliTwirledBackend {
    fn name(&self) -> &str {
        "pauli-twirled"
    }

    fn emit_pair(
        &self,
        channel: &CompiledQuantumChannel,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) -> EprPair {
        let mut pair = EprPair::ideal();
        self.emit_pair_into(&mut pair, channel, tap, rng);
        pair
    }

    fn emit_pair_into(
        &self,
        slot: &mut EprPair,
        channel: &CompiledQuantumChannel,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        // Frame-tracked emission: reset to Φ+ and kick by one sample of the
        // precompiled emission distribution (at most one f64 draw).
        channel.emit_twirled_pair_into(slot, rng);
        if tap.acts_on_emission() {
            // Active source-side tap: materialise, let it act on the full
            // density matrix, then re-project onto the Bell diagonal.
            slot.density_mut();
            channel.distribute_tapped(slot, tap, rng);
            slot.twirl_to_frame(rng);
        }
    }

    fn transmit(
        &self,
        channel: &CompiledQuantumChannel,
        pair: &mut EprPair,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        // Same contract as the physical channel: the tap acts at the channel
        // entrance, then the (here: twirled) noise applies.
        if tap.acts_on_transmit() {
            pair.density_mut();
            tap.on_transmit(pair, rng);
            pair.twirl_to_frame(rng);
        }
        channel.transmit_twirled(pair, rng);
    }
}

/// Declares [`BackendKind`]: the enum, its exhaustive-by-construction
/// [`ALL`](BackendKind::ALL) table, the canonical name / alias parser and the
/// [`Backend`] binding — all generated from one variant list, so adding a
/// substrate is a one-entry change that cannot leave `ALL`, `as_str`,
/// `FromStr` or `backend()` out of sync.
macro_rules! backend_kinds {
    (
        $(
            $(#[$meta:meta])*
            $variant:ident {
                name: $name:literal,
                aliases: [$($alias:literal),* $(,)?],
                backend: $backend:expr $(,)?
            }
        ),* $(,)?
    ) => {
        /// Names one of the production simulation substrates — the serde
        /// face of the [`Backend`] seam.
        ///
        /// Every [`Scenario`] carries a `BackendKind` (and every
        /// [`ShardPlan`] / [`ShardResult`] inherits it), and any non-default
        /// kind is folded into [`Scenario::fingerprint`], so plans, shard
        /// results and per-trial RNG streams are pinned to the substrate
        /// that produced them; the [`ShardMerger`] rejects cross-backend
        /// merges with [`MergeError::BackendMismatch`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
        pub enum BackendKind {
            $( $(#[$meta])* $variant, )*
        }

        impl BackendKind {
            /// Every production substrate, in ablation order. Generated
            /// from the same variant list as the enum itself, so the table
            /// is exhaustive by construction.
            pub const ALL: [BackendKind; 0 $(+ { let _ = $name; 1 })*] =
                [ $( BackendKind::$variant, )* ];

            /// The canonical CLI / serde name.
            pub fn as_str(self) -> &'static str {
                match self {
                    $( BackendKind::$variant => $name, )*
                }
            }

            /// The backend implementation this kind names.
            pub fn backend(self) -> &'static dyn Backend {
                match self {
                    $( BackendKind::$variant => $backend, )*
                }
            }
        }

        impl std::str::FromStr for BackendKind {
            type Err = String;

            fn from_str(name: &str) -> Result<Self, Self::Err> {
                match name {
                    $( $name $( | $alias )* => Ok(BackendKind::$variant), )*
                    other => {
                        let expected = BackendKind::ALL
                            .iter()
                            .map(|kind| format!("`{kind}`"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        Err(format!(
                            "unknown backend `{other}` (expected one of {expected})"
                        ))
                    }
                }
            }
        }
    };
}

backend_kinds! {
    /// Exact density-matrix evolution — the paper's Section IV emulation
    /// ([`DensityMatrixBackend`]; the default).
    #[default]
    DensityMatrix {
        name: "density-matrix",
        aliases: ["density", "dm"],
        backend: &DensityMatrixBackend,
    },
    /// Sampled pure-state trajectories ([`StatevectorBackend`]).
    Statevector {
        name: "statevector",
        aliases: ["sv", "trajectory"],
        backend: &StatevectorBackend,
    },
    /// Integer-only Pauli-frame tracking over twirled channels
    /// ([`PauliTwirledBackend`]).
    PauliTwirled {
        name: "pauli-twirled",
        aliases: ["twirled", "pt", "stabilizer"],
        backend: &PauliTwirledBackend,
    },
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for BackendKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().into())
    }
}

impl Deserialize for BackendKind {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            // Scenario/ShardPlan/ShardResult JSON written before the backend
            // selector existed has no `backend` field (the derived
            // deserializer hands us Null): those runs were density-matrix by
            // construction, matching the fingerprint rule that omits the
            // default kind so pre-backend runs stay valid.
            serde::Value::Null => Ok(BackendKind::default()),
            serde::Value::Str(name) => name.parse().map_err(serde::Error::new),
            other => Err(serde::Error::new(format!(
                "expected a backend name, got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------- adversary --

/// A user-supplied channel tap, wrapped so scenarios stay cloneable.
#[derive(Clone)]
pub struct CustomAdversary {
    name: String,
    factory: Arc<dyn Fn() -> Box<dyn ChannelTap> + Send + Sync>,
}

impl CustomAdversary {
    /// The adversary's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds a fresh tap instance for one session.
    pub fn make_tap(&self) -> Box<dyn ChannelTap> {
        (self.factory)()
    }
}

impl fmt::Debug for CustomAdversary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CustomAdversary")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// The unified adversary vocabulary of a [`Scenario`].
///
/// This single enum covers what the legacy API split across the
/// [`Impersonation`] parameter and the generic `ChannelTap` type parameter:
/// impersonation of either party, the three channel attacks of the paper's
/// Section III, and arbitrary user-supplied taps.
#[derive(Debug, Clone)]
pub enum Adversary {
    /// No adversary: both parties legitimate, channel untapped.
    Honest,
    /// Eve plays Alice without knowing `id_A` (Section III-A).
    ImpersonateAlice,
    /// Eve plays Bob without knowing `id_B` (Section III-A).
    ImpersonateBob,
    /// Eve measures each flying qubit in the given basis and resends it
    /// (Section III-B).
    InterceptResend(InterceptBasis),
    /// Eve keeps the real qubits and forwards fresh substitutes
    /// (Section III-C).
    ManInTheMiddle(SubstituteState),
    /// Eve entangles an ancilla of the given coupling strength with each
    /// flying qubit and measures it (Section III-D).
    EntangleMeasure {
        /// Interaction strength in `[0, 1]`: 0 = no coupling, 1 = full CNOT.
        strength: f64,
    },
    /// An arbitrary user-supplied channel tap. Not serializable; scenarios
    /// carrying one cannot be round-tripped through serde.
    ///
    /// Custom adversaries are identified by their *name* for equality and
    /// [`Scenario::fingerprint`] purposes — the boxed behavior cannot be
    /// inspected. Give behaviorally different taps different names, or two
    /// scenarios differing only in tap behavior will compare equal and draw
    /// identical per-trial RNG streams.
    Custom(CustomAdversary),
}

impl Adversary {
    /// Wraps a tap factory as a custom adversary. The factory is invoked once
    /// per session so per-session tap state stays independent.
    pub fn custom(
        name: impl Into<String>,
        factory: impl Fn() -> Box<dyn ChannelTap> + Send + Sync + 'static,
    ) -> Self {
        Adversary::Custom(CustomAdversary {
            name: name.into(),
            factory: Arc::new(factory),
        })
    }

    /// The adversary's display name (used in [`TrialSummary::adversary`]).
    pub fn name(&self) -> String {
        match self {
            Adversary::Honest => "honest".into(),
            Adversary::ImpersonateAlice => "impersonate-alice".into(),
            Adversary::ImpersonateBob => "impersonate-bob".into(),
            Adversary::InterceptResend(_) => "intercept-and-resend".into(),
            Adversary::ManInTheMiddle(_) => "man-in-the-middle".into(),
            Adversary::EntangleMeasure { .. } => "entangle-and-measure".into(),
            Adversary::Custom(custom) => custom.name.clone(),
        }
    }

    /// Which party, if any, this adversary impersonates.
    pub fn impersonation(&self) -> Impersonation {
        match self {
            Adversary::ImpersonateAlice => Impersonation::OfAlice,
            Adversary::ImpersonateBob => Impersonation::OfBob,
            _ => Impersonation::None,
        }
    }

    /// The adversary corresponding to a legacy [`Impersonation`] target
    /// (inverse of [`Adversary::impersonation`]).
    pub fn from_impersonation(target: Impersonation) -> Adversary {
        match target {
            Impersonation::None => Adversary::Honest,
            Impersonation::OfAlice => Adversary::ImpersonateAlice,
            Impersonation::OfBob => Adversary::ImpersonateBob,
        }
    }

    /// The protocol stage expected to catch this adversary, where the paper
    /// pins one down: the authentication step protecting the impersonated
    /// party. Channel attacks have no single stage (first detection depends
    /// on tolerances) and return `None`.
    pub fn detection_stage(&self) -> Option<AbortStage> {
        match self {
            Adversary::ImpersonateAlice => Some(AbortStage::AliceAuthentication),
            Adversary::ImpersonateBob => Some(AbortStage::BobAuthentication),
            _ => None,
        }
    }

    /// Validates the adversary's parameters (e.g. the entangle-measure
    /// coupling strength must lie in `[0, 1]`).
    fn validate(&self) -> Result<(), ProtocolError> {
        if let Adversary::EntangleMeasure { strength } = self {
            if !(0.0..=1.0).contains(strength) {
                return Err(ProtocolError::InvalidConfig(format!(
                    "entangle-measure strength must lie in [0, 1], got {strength}"
                )));
            }
        }
        Ok(())
    }

    /// Builds a fresh channel tap for one session.
    pub fn make_tap(&self) -> Box<dyn ChannelTap> {
        match self {
            Adversary::Honest | Adversary::ImpersonateAlice | Adversary::ImpersonateBob => {
                Box::new(NoTap)
            }
            Adversary::InterceptResend(basis) => Box::new(InterceptResendAttack::new(*basis)),
            Adversary::ManInTheMiddle(substitute) => {
                Box::new(ManInTheMiddleAttack::new(*substitute))
            }
            Adversary::EntangleMeasure { strength } => {
                Box::new(EntangleMeasureAttack::with_strength(*strength))
            }
            Adversary::Custom(custom) => custom.make_tap(),
        }
    }
}

impl PartialEq for Adversary {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Adversary::Honest, Adversary::Honest)
            | (Adversary::ImpersonateAlice, Adversary::ImpersonateAlice)
            | (Adversary::ImpersonateBob, Adversary::ImpersonateBob) => true,
            (Adversary::InterceptResend(a), Adversary::InterceptResend(b)) => a == b,
            (Adversary::ManInTheMiddle(a), Adversary::ManInTheMiddle(b)) => a == b,
            (
                Adversary::EntangleMeasure { strength: a },
                Adversary::EntangleMeasure { strength: b },
            ) => a == b,
            (Adversary::Custom(a), Adversary::Custom(b)) => a.name == b.name,
            _ => false,
        }
    }
}

impl fmt::Display for Adversary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl Serialize for Adversary {
    fn to_value(&self) -> serde::Value {
        match self {
            Adversary::Honest => serde::Value::Str("Honest".into()),
            Adversary::ImpersonateAlice => serde::Value::Str("ImpersonateAlice".into()),
            Adversary::ImpersonateBob => serde::Value::Str("ImpersonateBob".into()),
            Adversary::InterceptResend(basis) => {
                serde::Value::Map(vec![("InterceptResend".into(), basis.to_value())])
            }
            Adversary::ManInTheMiddle(substitute) => {
                serde::Value::Map(vec![("ManInTheMiddle".into(), substitute.to_value())])
            }
            Adversary::EntangleMeasure { strength } => serde::Value::Map(vec![(
                "EntangleMeasure".into(),
                serde::Value::Map(vec![("strength".into(), strength.to_value())]),
            )]),
            Adversary::Custom(custom) => serde::Value::Map(vec![(
                "Custom".into(),
                serde::Value::Str(custom.name.clone()),
            )]),
        }
    }
}

impl Deserialize for Adversary {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::Str(tag) => match tag.as_str() {
                "Honest" => Ok(Adversary::Honest),
                "ImpersonateAlice" => Ok(Adversary::ImpersonateAlice),
                "ImpersonateBob" => Ok(Adversary::ImpersonateBob),
                other => Err(serde::Error::new(format!(
                    "unknown adversary variant `{other}`"
                ))),
            },
            serde::Value::Map(entries) if entries.len() == 1 => {
                let (tag, inner) = &entries[0];
                match tag.as_str() {
                    "InterceptResend" => Ok(Adversary::InterceptResend(
                        InterceptBasis::from_value(inner)?,
                    )),
                    "ManInTheMiddle" => Ok(Adversary::ManInTheMiddle(SubstituteState::from_value(
                        inner,
                    )?)),
                    "EntangleMeasure" => {
                        let strength = f64::from_value(inner.get_field("strength")?)?;
                        let adversary = Adversary::EntangleMeasure { strength };
                        adversary
                            .validate()
                            .map_err(|e| serde::Error::new(format!("invalid adversary: {e}")))?;
                        Ok(adversary)
                    }
                    "Custom" => Err(serde::Error::new(
                        "custom adversaries carry arbitrary code and cannot be deserialized",
                    )),
                    other => Err(serde::Error::new(format!(
                        "unknown adversary variant `{other}`"
                    ))),
                }
            }
            other => Err(serde::Error::new(format!(
                "expected adversary, got {}",
                other.kind()
            ))),
        }
    }
}

// ----------------------------------------------------------------- scenario --

/// A declarative description of one kind of session to execute.
///
/// Scenarios are plain data: cloneable, comparable and (for every adversary
/// except [`Adversary::Custom`]) serde round-trippable, so whole experiment
/// suites can be stored, shipped to remote workers, or replayed later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Display label (used in [`TrialSummary::label`]).
    pub label: String,
    /// The protocol configuration.
    pub config: SessionConfig,
    /// The pre-shared identities.
    pub identities: IdentityPair,
    /// The message Alice sends; `None` draws a fresh random message of the
    /// configured length for every trial.
    pub message: Option<SecretMessage>,
    /// The adversarial setting.
    pub adversary: Adversary,
    /// The simulation substrate trials of this scenario run on. Part of the
    /// physical fingerprint: two scenarios differing only in backend draw
    /// disjoint per-trial RNG streams and their shard results can never be
    /// merged into one run.
    pub backend: BackendKind,
}

impl Scenario {
    /// An honest scenario with a fresh random message per trial, on the
    /// default [`BackendKind::DensityMatrix`] substrate.
    pub fn new(config: SessionConfig, identities: IdentityPair) -> Self {
        Self {
            label: "session".into(),
            config,
            identities,
            message: None,
            adversary: Adversary::Honest,
            backend: BackendKind::default(),
        }
    }

    /// Sets the display label.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Fixes the message Alice sends in every trial.
    #[must_use]
    pub fn with_message(mut self, message: SecretMessage) -> Self {
        self.message = Some(message);
        self
    }

    /// Sets the adversarial setting.
    #[must_use]
    pub fn with_adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = adversary;
        self
    }

    /// Sets the simulation substrate.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// A stable 64-bit fingerprint of the scenario's *physical* content —
    /// configuration, identities, message, adversary and (non-default)
    /// backend — used to derive per-trial RNG streams that do not depend on
    /// batch order.
    ///
    /// The display [`label`](Scenario::label) is deliberately excluded:
    /// renaming a scenario for reporting purposes must not change any
    /// simulated result. The default [`BackendKind::DensityMatrix`] is
    /// likewise omitted (rather than hashed as an explicit field) so
    /// fingerprints — and therefore the recorded RNG streams — of every
    /// scenario that predates the backend selector stay valid; any other
    /// backend hashes in and forces disjoint streams.
    pub fn fingerprint(&self) -> u64 {
        let mut physical = vec![
            ("config".into(), self.config.to_value()),
            ("identities".into(), self.identities.to_value()),
            ("message".into(), self.message.to_value()),
            ("adversary".into(), self.adversary.to_value()),
        ];
        if self.backend != BackendKind::default() {
            physical.push(("backend".into(), self.backend.to_value()));
        }
        fnv1a64(serde::json::to_string(&serde::Value::Map(physical)).as_bytes())
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario `{}` vs {} ({}) on {}",
            self.label, self.adversary, self.config, self.backend
        )
    }
}

// ------------------------------------------------------------ trial summary --

/// Aggregated statistics of repeated sessions of one [`Scenario`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialSummary {
    /// The scenario's label.
    pub label: String,
    /// The adversary's display name.
    pub adversary: String,
    /// Number of sessions executed.
    pub trials: usize,
    /// Sessions in which the message was delivered.
    pub delivered: usize,
    /// Aborts at the first DI check.
    pub aborted_di_check1: usize,
    /// Aborts at Bob authentication.
    pub aborted_bob_auth: usize,
    /// Aborts at Alice authentication.
    pub aborted_alice_auth: usize,
    /// Aborts at the second DI check.
    pub aborted_di_check2: usize,
    /// Aborts at the final integrity check.
    pub aborted_integrity: usize,
    /// Mean CHSH value of the first check (over sessions where it was
    /// estimated).
    pub mean_chsh_round1: Option<f64>,
    /// Mean CHSH value of the second check.
    pub mean_chsh_round2: Option<f64>,
    /// Mean message accuracy over delivered sessions.
    pub mean_message_accuracy: Option<f64>,
}

impl TrialSummary {
    fn empty(label: String, adversary: String) -> Self {
        Self {
            label,
            adversary,
            trials: 0,
            delivered: 0,
            aborted_di_check1: 0,
            aborted_bob_auth: 0,
            aborted_alice_auth: 0,
            aborted_di_check2: 0,
            aborted_integrity: 0,
            mean_chsh_round1: None,
            mean_chsh_round2: None,
            mean_message_accuracy: None,
        }
    }

    /// Total aborts across all stages.
    pub fn total_aborts(&self) -> usize {
        self.aborted_di_check1
            + self.aborted_bob_auth
            + self.aborted_alice_auth
            + self.aborted_di_check2
            + self.aborted_integrity
    }

    /// Fraction of sessions in which the protocol aborted (the adversary was
    /// detected).
    pub fn detection_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / self.trials as f64
        }
    }

    /// Fraction of sessions in which the message was delivered.
    pub fn delivery_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.delivered as f64 / self.trials as f64
        }
    }

    /// Aborts recorded at the given stage.
    pub fn aborted_at(&self, stage: AbortStage) -> usize {
        match stage {
            AbortStage::DiCheck1 => self.aborted_di_check1,
            AbortStage::BobAuthentication => self.aborted_bob_auth,
            AbortStage::AliceAuthentication => self.aborted_alice_auth,
            AbortStage::DiCheck2 => self.aborted_di_check2,
            AbortStage::IntegrityCheck => self.aborted_integrity,
        }
    }
}

impl fmt::Display for TrialSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: {} trials, {} delivered, detection rate {:.3} (S1 {:?}, S2 {:?})",
            self.label,
            self.adversary,
            self.trials,
            self.delivered,
            self.detection_rate(),
            self.mean_chsh_round1,
            self.mean_chsh_round2
        )
    }
}

/// Streaming accumulator behind [`TrialSummary`]: record outcomes one at a
/// time, then [`finish`](TrialSummaryBuilder::finish).
///
/// The builder doubles as the *mergeable partial* of the shard pipeline
/// ([`shard`]): it is serde round-trippable, and
/// [`merge`](TrialSummaryBuilder::merge) folds another partial onto this one.
/// To make merged partials bit-identical to serial accumulation for *any*
/// partition of a trial range, the mean accumulators keep their samples in
/// trial order (O(trials) memory, a few `f64` per trial) and defer the
/// left-to-right sum to `finish` — the identical addition sequence a serial
/// `sum += x` loop performs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialSummaryBuilder {
    summary: TrialSummary,
    chsh1: MeanAccumulator,
    chsh2: MeanAccumulator,
    accuracies: MeanAccumulator,
}

/// Ordered sample log for a mean over optionally-present values. The sum is
/// computed left-to-right at [`mean`](Self::mean) time, so concatenating two
/// logs and summing equals summing while streaming — the property that makes
/// shard partials merge exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct MeanAccumulator {
    samples: Vec<f64>,
}

impl MeanAccumulator {
    fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    fn append(&mut self, mut other: MeanAccumulator) {
        self.samples.append(&mut other.samples);
    }

    fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            let sum = self.samples.iter().fold(0.0f64, |acc, &x| acc + x);
            Some(sum / self.samples.len() as f64)
        }
    }
}

impl TrialSummaryBuilder {
    /// Starts an empty summary with the given labels.
    pub fn new(label: impl Into<String>, adversary: impl Into<String>) -> Self {
        Self {
            summary: TrialSummary::empty(label.into(), adversary.into()),
            chsh1: MeanAccumulator::default(),
            chsh2: MeanAccumulator::default(),
            accuracies: MeanAccumulator::default(),
        }
    }

    /// Folds one session outcome into the summary.
    pub fn record(&mut self, outcome: &SessionOutcome) {
        self.summary.trials += 1;
        if outcome.is_delivered() {
            self.summary.delivered += 1;
        }
        match &outcome.status {
            SessionStatus::Delivered => {}
            SessionStatus::Aborted { stage, .. } => match stage {
                AbortStage::DiCheck1 => self.summary.aborted_di_check1 += 1,
                AbortStage::BobAuthentication => self.summary.aborted_bob_auth += 1,
                AbortStage::AliceAuthentication => self.summary.aborted_alice_auth += 1,
                AbortStage::DiCheck2 => self.summary.aborted_di_check2 += 1,
                AbortStage::IntegrityCheck => self.summary.aborted_integrity += 1,
            },
        }
        if let Some(s) = outcome.di_check_round1.as_ref().and_then(|r| r.chsh) {
            self.chsh1.push(s);
        }
        if let Some(s) = outcome.di_check_round2.as_ref().and_then(|r| r.chsh) {
            self.chsh2.push(s);
        }
        if let Some(accuracy) = outcome.message_accuracy() {
            self.accuracies.push(accuracy);
        }
    }

    /// Folds the partial accumulated by `other` onto this one, **in trial
    /// order**: `other` must hold the trials immediately following this
    /// builder's. Under that contract the merged builder is field-for-field
    /// and bit-for-bit identical to one that recorded every outcome serially
    /// — counts add, and the sample logs concatenate so the deferred mean
    /// sums run over the exact same sequence. Order bookkeeping (which trial
    /// range a partial covers, gaps, overlaps) is the job of
    /// [`ShardMerger`]; this method only
    /// performs the fold.
    pub fn merge(&mut self, other: TrialSummaryBuilder) {
        self.summary.trials += other.summary.trials;
        self.summary.delivered += other.summary.delivered;
        self.summary.aborted_di_check1 += other.summary.aborted_di_check1;
        self.summary.aborted_bob_auth += other.summary.aborted_bob_auth;
        self.summary.aborted_alice_auth += other.summary.aborted_alice_auth;
        self.summary.aborted_di_check2 += other.summary.aborted_di_check2;
        self.summary.aborted_integrity += other.summary.aborted_integrity;
        self.chsh1.append(other.chsh1);
        self.chsh2.append(other.chsh2);
        self.accuracies.append(other.accuracies);
    }

    /// Number of outcomes recorded so far (including merged partials).
    pub fn trials_recorded(&self) -> usize {
        self.summary.trials
    }

    /// The scenario label this partial aggregates for.
    pub fn label(&self) -> &str {
        &self.summary.label
    }

    /// Finalises the means and returns the summary.
    pub fn finish(mut self) -> TrialSummary {
        self.summary.mean_chsh_round1 = self.chsh1.mean();
        self.summary.mean_chsh_round2 = self.chsh2.mean();
        self.summary.mean_message_accuracy = self.accuracies.mean();
        self.summary
    }
}

pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ------------------------------------------------------------------- engine --

/// Executes [`Scenario`]s on a [`Backend`] with deterministic per-trial RNG
/// streams derived from a master seed.
///
/// The engine is `Send + Sync`; its [`Parallelism`] policy (default
/// [`Parallelism::Serial`]) controls whether trial loops fan out across
/// worker threads. Every policy yields bit-for-bit identical results.
#[derive(Debug, Clone)]
pub struct SessionEngine {
    master_seed: u64,
    /// `None` resolves the backend per scenario from its [`BackendKind`];
    /// `Some` is a fixed override for custom substrates.
    backend: Option<Arc<dyn Backend>>,
    parallelism: Parallelism,
}

impl Default for SessionEngine {
    fn default() -> Self {
        Self::new(0)
    }
}

impl SessionEngine {
    /// Creates an engine that runs serially and resolves the simulation
    /// substrate per scenario from its [`BackendKind`] (so a deserialized
    /// [`ShardPlan`] reproduces on the right substrate without any engine
    /// configuration).
    pub fn new(master_seed: u64) -> Self {
        Self {
            master_seed,
            backend: None,
            parallelism: Parallelism::Serial,
        }
    }

    /// Installs a fixed simulation backend, overriding every scenario's
    /// declared [`BackendKind`] — the escape hatch for custom substrates
    /// (sparse simulators, GPU batches, hardware adapters) that have no
    /// `BackendKind` name.
    ///
    /// Because fingerprints and shard metadata keep advertising the
    /// *scenario's* kind, do not combine a custom override with the shard
    /// pipeline: results produced under an override would carry another
    /// substrate's identity.
    #[must_use]
    pub fn with_backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The backend a given scenario's trials run on: the fixed override when
    /// one was installed, the scenario's [`BackendKind`] otherwise.
    fn backend_for<'a>(&'a self, scenario: &Scenario) -> &'a dyn Backend {
        match &self.backend {
            Some(fixed) => fixed.as_ref(),
            None => scenario.backend.backend(),
        }
    }

    /// Sets the execution policy for `run_outcomes` / `run_trials` /
    /// `run_batch`. Results are identical under every policy; only wall time
    /// changes.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The engine's execution policy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The master seed every trial stream is derived from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The active backend's name: the fixed override's when one was installed
    /// via [`with_backend`](Self::with_backend), `"scenario-selected"`
    /// otherwise (each scenario's [`BackendKind`] then chooses the
    /// substrate).
    pub fn backend_name(&self) -> &str {
        match &self.backend {
            Some(fixed) => fixed.name(),
            None => "scenario-selected",
        }
    }

    /// The RNG for one trial of one scenario: a deterministic function of
    /// `(master seed, scenario fingerprint, trial index)` only.
    fn trial_rng(&self, fingerprint: u64, trial: u64) -> StdRng {
        let mut state = self.master_seed ^ fingerprint.wrapping_mul(0xa24b_aed4_963e_e407);
        let _ = rand::splitmix64(&mut state);
        state ^= trial.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        StdRng::seed_from_u64(rand::splitmix64(&mut state))
    }

    /// Runs trial 0 of the scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on configuration misuse; protocol aborts
    /// are reported inside the [`SessionOutcome`].
    pub fn run(&self, scenario: &Scenario) -> Result<SessionOutcome, ProtocolError> {
        self.run_nth(scenario, 0)
    }

    /// Runs the trial with the given index. Each index has its own RNG
    /// stream, so any subset of trials can be executed in any order and still
    /// reproduce exactly the results of a full sequential run.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on configuration misuse.
    pub fn run_nth(
        &self,
        scenario: &Scenario,
        trial: u64,
    ) -> Result<SessionOutcome, ProtocolError> {
        self.run_fingerprinted(scenario, scenario.fingerprint(), trial)
    }

    /// [`run_nth`](Self::run_nth) with the scenario fingerprint precomputed,
    /// so trial loops hash the (immutable) scenario once instead of per trial.
    /// Single-trial entry point: compiles the scenario's noise program for
    /// this one trial. Trial loops go through
    /// [`run_compiled`](Self::run_compiled) with a shared program instead.
    fn run_fingerprinted(
        &self,
        scenario: &Scenario,
        fingerprint: u64,
        trial: u64,
    ) -> Result<SessionOutcome, ProtocolError> {
        let program = Self::compile_program(scenario);
        self.run_compiled(scenario, fingerprint, &program, trial)
    }

    /// Compiles a scenario's noise program: every channel placement its
    /// trials can apply, precompiled once so the per-trial loop is pure
    /// arithmetic (see [`qchannel::compiled`]).
    fn compile_program(scenario: &Scenario) -> CompiledQuantumChannel {
        CompiledQuantumChannel::from(scenario.config.channel().clone())
    }

    /// The per-trial body: one session against a precompiled noise program.
    /// Bit-identical to compiling per trial — compiled kernels replay the
    /// legacy floating-point operation sequence exactly.
    fn run_compiled(
        &self,
        scenario: &Scenario,
        fingerprint: u64,
        program: &CompiledQuantumChannel,
        trial: u64,
    ) -> Result<SessionOutcome, ProtocolError> {
        scenario.adversary.validate()?;
        let mut rng = self.trial_rng(fingerprint, trial);
        let message = match &scenario.message {
            Some(message) => message.clone(),
            None => SecretMessage::random(scenario.config.message_bits(), &mut rng),
        };
        let mut tap = scenario.adversary.make_tap();
        execute_session(
            self.backend_for(scenario),
            program,
            &scenario.config,
            &scenario.identities,
            &message,
            scenario.adversary.impersonation(),
            tap.as_mut(),
            &mut rng,
        )
    }

    /// Runs trials `0..trials` of the scenario and returns every outcome —
    /// the per-outcome sibling of [`run_trials`](Self::run_trials), for
    /// callers that need more than the aggregate (e.g. transcripts). The
    /// scenario is fingerprinted once for the whole loop, and trials fan out
    /// across workers under the engine's [`Parallelism`] policy.
    ///
    /// # Errors
    ///
    /// Propagates the first configuration error encountered.
    pub fn run_outcomes(
        &self,
        scenario: &Scenario,
        trials: usize,
    ) -> Result<Vec<SessionOutcome>, ProtocolError> {
        self.run_outcomes_with_stats(scenario, trials)
            .map(|(outcomes, _)| outcomes)
    }

    /// [`run_outcomes`](Self::run_outcomes) plus the [`ExecutorStats`] of the
    /// fan-out.
    ///
    /// # Errors
    ///
    /// Propagates the first configuration error encountered.
    pub fn run_outcomes_with_stats(
        &self,
        scenario: &Scenario,
        trials: usize,
    ) -> Result<(Vec<SessionOutcome>, ExecutorStats), ProtocolError> {
        // The whole-run special case of the shard pipeline: same executor
        // stage as `execute_shard`, with the plan elided (the scenario is
        // borrowed and fingerprinted exactly once; the merge is the identity).
        let (payload, stats) = self.execute_trials(
            scenario,
            scenario.fingerprint(),
            self.master_seed,
            0,
            trials,
            ShardOutput::Outcomes,
        )?;
        let ShardPayload::Outcomes(outcomes) = payload else {
            unreachable!("an Outcomes execution produces an Outcomes payload")
        };
        Ok((outcomes, stats))
    }

    /// Runs `trials` sessions of the scenario and aggregates the outcomes.
    /// Trials fan out across workers under the engine's [`Parallelism`]
    /// policy; outcomes are folded in trial order, so the summary is
    /// bit-identical to a serial run.
    ///
    /// # Errors
    ///
    /// Propagates the first configuration error encountered.
    pub fn run_trials(
        &self,
        scenario: &Scenario,
        trials: usize,
    ) -> Result<TrialSummary, ProtocolError> {
        self.run_trials_with_stats(scenario, trials)
            .map(|(summary, _)| summary)
    }

    /// [`run_trials`](Self::run_trials) plus the [`ExecutorStats`] of the
    /// fan-out.
    ///
    /// # Errors
    ///
    /// Propagates the first configuration error encountered.
    pub fn run_trials_with_stats(
        &self,
        scenario: &Scenario,
        trials: usize,
    ) -> Result<(TrialSummary, ExecutorStats), ProtocolError> {
        // The whole-run special case of the shard pipeline with a summary
        // payload: task order, fold order and error semantics are exactly
        // those of the sharded path, so a single-machine summary is
        // byte-identical to any merged multi-shard execution of the same run.
        let (payload, stats) = self.execute_trials(
            scenario,
            scenario.fingerprint(),
            self.master_seed,
            0,
            trials,
            ShardOutput::Summary,
        )?;
        let ShardPayload::Summary(builder) = payload else {
            unreachable!("a Summary execution produces a Summary payload")
        };
        Ok((builder.finish(), stats))
    }

    /// Runs `trials` sessions of every scenario and returns one summary per
    /// scenario, in order. Summaries are identical to running each scenario
    /// alone — results do not depend on batch composition, order, or the
    /// engine's [`Parallelism`] policy. Each scenario is fingerprinted once
    /// for the whole batch, and the flattened `(scenario, trial)` task set
    /// fans out across workers, so many-scenario/few-trial sweeps parallelize
    /// as well as single-scenario/many-trial runs.
    ///
    /// # Errors
    ///
    /// Propagates the first configuration error encountered.
    pub fn run_batch(
        &self,
        scenarios: &[Scenario],
        trials: usize,
    ) -> Result<Vec<TrialSummary>, ProtocolError> {
        self.run_batch_with_stats(scenarios, trials)
            .map(|(summaries, _)| summaries)
    }

    /// [`run_batch`](Self::run_batch) plus the [`ExecutorStats`] of the
    /// fan-out.
    ///
    /// # Errors
    ///
    /// Propagates the first configuration error encountered.
    pub fn run_batch_with_stats(
        &self,
        scenarios: &[Scenario],
        trials: usize,
    ) -> Result<(Vec<TrialSummary>, ExecutorStats), ProtocolError> {
        // Stage 1 — plan: one whole-run ShardPlan per scenario, so each
        // scenario is fingerprinted exactly once for the batch.
        let plans: Vec<ShardPlan> = scenarios.iter().map(|s| self.plan(s, trials)).collect();
        // Stage 2 — execute: the plans' task sets are fused into a single
        // scenario-major scatter, so many-scenario/few-trial sweeps fan out
        // as well as single-scenario/many-trial runs. Stage 3 — merge: every
        // outcome folds into its plan's summary partial in trial order (the
        // in-process shortcut for `TrialSummaryBuilder::merge` over one-trial
        // partials), so summaries are bit-identical to serial accumulation.
        let mut builders: Vec<TrialSummaryBuilder> = plans
            .iter()
            .map(|p| {
                TrialSummaryBuilder::new(p.scenario.label.clone(), p.scenario.adversary.name())
            })
            .collect();
        // One compiled noise program per scenario, shared by all its trials.
        let programs: Vec<CompiledQuantumChannel> = plans
            .iter()
            .map(|p| Self::compile_program(&p.scenario))
            .collect();
        let mut first_error: Option<ProtocolError> = None;
        // `trials == 0` produces no tasks, so the index arithmetic below
        // never divides by zero.
        let stats = parallel::scatter_visit(
            self.parallelism,
            plans.len() * trials,
            |index| {
                let plan = &plans[index / trials];
                self.run_compiled(
                    &plan.scenario,
                    plan.fingerprint,
                    &programs[index / trials],
                    plan.trial_start + (index % trials) as u64,
                )
            },
            |index, outcome| match outcome {
                Ok(outcome) => {
                    builders[index / trials].record(&outcome);
                    ControlFlow::Continue(())
                }
                Err(error) => {
                    // Fail fast: the first in-order error cancels the rest.
                    first_error.get_or_insert(error);
                    ControlFlow::Break(())
                }
            },
        );
        match first_error {
            Some(error) => Err(error),
            None => {
                let mut summaries = Vec::with_capacity(builders.len());
                summaries.extend(builders.into_iter().map(TrialSummaryBuilder::finish));
                Ok((summaries, stats))
            }
        }
    }

    /// Runs one session with explicitly supplied parts and caller-controlled
    /// RNG — the escape hatch the deprecated free functions are shimmed on.
    /// With no scenario to consult, the backend is the fixed override when
    /// one was installed, the default [`DensityMatrixBackend`] otherwise.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on configuration misuse.
    pub fn run_with<R: Rng>(
        &self,
        config: &SessionConfig,
        identities: &IdentityPair,
        message: &SecretMessage,
        impersonation: Impersonation,
        tap: &mut dyn ChannelTap,
        rng: &mut R,
    ) -> Result<SessionOutcome, ProtocolError> {
        let program = CompiledQuantumChannel::from(config.channel().clone());
        execute_session(
            self.backend
                .as_deref()
                .unwrap_or(BackendKind::DensityMatrix.backend()),
            &program,
            config,
            identities,
            message,
            impersonation,
            tap,
            rng,
        )
    }
}

// -------------------------------------------------- six-phase session body --

thread_local! {
    // The per-thread pair store reused across trials: each session
    // overwrites the pooled pairs in place (see `Backend::emit_pair_into`),
    // so the steady-state trial loop performs no pair allocations at all.
    static PAIR_POOL: std::cell::RefCell<Vec<EprPair>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs one complete UA-DI-QSDC session through all six phases of the paper
/// on the given backend, against a precompiled noise program (compiled once
/// per scenario by the caller, shared across trials). The session's pair
/// store comes from (and returns to) the thread's pool.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_session<R: Rng>(
    backend: &dyn Backend,
    channel: &CompiledQuantumChannel,
    config: &SessionConfig,
    identities: &IdentityPair,
    message: &SecretMessage,
    impersonation: Impersonation,
    tap: &mut dyn ChannelTap,
    rng: &mut R,
) -> Result<SessionOutcome, ProtocolError> {
    PAIR_POOL.with(|cell| {
        let mut pool = std::mem::take(&mut *cell.borrow_mut());
        let result = execute_session_with_pool(
            backend,
            channel,
            config,
            identities,
            message,
            impersonation,
            tap,
            rng,
            &mut pool,
        );
        *cell.borrow_mut() = pool;
        result
    })
}

#[allow(clippy::too_many_arguments)]
fn execute_session_with_pool<R: Rng>(
    backend: &dyn Backend,
    channel: &CompiledQuantumChannel,
    config: &SessionConfig,
    identities: &IdentityPair,
    message: &SecretMessage,
    impersonation: Impersonation,
    tap: &mut dyn ChannelTap,
    rng: &mut R,
    pairs: &mut Vec<EprPair>,
) -> Result<SessionOutcome, ProtocolError> {
    if message.len() != config.message_bits() {
        return Err(ProtocolError::MessageLengthMismatch {
            expected: config.message_bits(),
            actual: message.len(),
        });
    }

    let l = identities.qubit_len();
    let d = config.di_check_pairs();
    let padded = PaddedMessage::embed(message, config.check_bits(), rng)?;
    let n_qubits = padded.qubit_len();
    let total_pairs = n_qubits + 2 * l + 2 * d;

    let classical = ClassicalChannel::new();

    let resources = ResourceUsage {
        total_pairs,
        message_pairs: n_qubits,
        identity_pairs: 2 * l,
        check_pairs: 2 * d,
        transmitted_qubits: total_pairs - d,
        classical_messages: 0, // filled in at the end
        qubits_per_message_bit: n_qubits as f64 / padded.len() as f64 * 2.0,
    };

    // Helper to assemble an outcome. The transcript / classical message count is attached by
    // the caller-side closure at every exit point.
    let finish = |status: SessionStatus,
                  r1: Option<DiCheckReport>,
                  r2: Option<DiCheckReport>,
                  bob_auth: Option<AuthReport>,
                  alice_auth: Option<AuthReport>,
                  received: Option<SecretMessage>,
                  check_err: Option<f64>,
                  classical: &ClassicalChannel,
                  mut resources: ResourceUsage| {
        let transcript = classical.snapshot();
        resources.classical_messages = transcript.len();
        let message_bit_error_rate = received.as_ref().map(|r| message.bit_error_rate(r));
        SessionOutcome {
            status,
            di_check_round1: r1,
            di_check_round2: r2,
            bob_auth,
            alice_auth,
            sent_message: message.clone(),
            received_message: received,
            check_bit_error_rate: check_err,
            message_bit_error_rate,
            transcript,
            resources,
        }
    };

    // ------------------------------------------------------------------ phase 1: sharing --
    // The pooled pairs are overwritten in place; only a cold pool (first
    // trial on this thread, or a larger scenario) grows the store.
    if pairs.len() < total_pairs {
        pairs.resize_with(total_pairs, EprPair::ideal);
    } else {
        pairs.truncate(total_pairs);
    }
    for pair in pairs.iter_mut() {
        backend.emit_pair_into(pair, channel, tap, rng);
    }

    // ------------------------------------------------------- phase 2: DI check round one --
    let mut all_positions: Vec<usize> = (0..total_pairs).collect();
    all_positions.shuffle(rng);
    let check1_positions: Vec<usize> = all_positions[..d].to_vec();
    let remaining_positions: Vec<usize> = all_positions[d..].to_vec();
    classical.send(
        Party::Alice,
        ClassicalMessage::Positions {
            purpose: "di-check-1".into(),
            positions: check1_positions.clone(),
        },
    );
    let (report1, records1) = run_di_check_at(
        DiCheckRound::First,
        pairs,
        &check1_positions,
        config.chsh_abort_threshold(),
        rng,
    );
    classical.send(
        Party::Alice,
        ClassicalMessage::BasisChoices {
            round: 1,
            settings: records1
                .iter()
                .map(|r| (r.alice_setting, r.bob_setting))
                .collect(),
        },
    );
    classical.send(
        Party::Bob,
        ClassicalMessage::CheckOutcomes {
            round: 1,
            outcomes: records1
                .iter()
                .map(|r| (r.alice_outcome.to_bit(), r.bob_outcome.to_bit()))
                .collect(),
        },
    );
    if !report1.passed {
        classical.send(
            Party::Alice,
            ClassicalMessage::Abort {
                reason: format!("first DI check failed: {report1}"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::DiCheck1,
                reason: report1.to_string(),
            },
            Some(report1),
            None,
            None,
            None,
            None,
            None,
            &classical,
            resources,
        ));
    }

    // ----------------------------------------------------------- phase 3: Alice encoding --
    let mut rest = remaining_positions;
    rest.shuffle(rng);
    let check2_positions: Vec<usize> = rest[..d].to_vec();
    let ma_positions: Vec<usize> = rest[d..d + n_qubits].to_vec();
    let ca_positions: Vec<usize> = rest[d + n_qubits..d + n_qubits + l].to_vec();
    let da_positions: Vec<usize> = rest[d + n_qubits + l..d + n_qubits + 2 * l].to_vec();

    let message_paulis = padded.as_paulis();
    for (pauli, &pos) in message_paulis.iter().zip(&ma_positions) {
        pairs[pos].apply_alice_pauli(*pauli);
    }
    // id_A encoding — Eve-as-Alice must guess.
    let ida_paulis: Vec<Pauli> = if impersonation == Impersonation::OfAlice {
        (0..l).map(|_| Pauli::random(rng)).collect()
    } else {
        identities.alice.as_paulis()
    };
    for (pauli, &pos) in ida_paulis.iter().zip(&ca_positions) {
        pairs[pos].apply_alice_pauli(*pauli);
    }
    // Cover operations on D_A.
    let covers: Vec<Pauli> = (0..l).map(|_| Pauli::random(rng)).collect();
    for (cover, &pos) in covers.iter().zip(&da_positions) {
        pairs[pos].apply_alice_pauli(*cover);
    }

    // ------------------------------------------------------------- phase 4: transmission --
    // Alice sends every qubit she still holds (check-2, message, identity and cover blocks).
    for &pos in check2_positions
        .iter()
        .chain(&ma_positions)
        .chain(&ca_positions)
        .chain(&da_positions)
    {
        backend.transmit(channel, &mut pairs[pos], tap, rng);
    }

    // ---------------------------------------------------------- phase 4b: authentication --
    classical.send(
        Party::Alice,
        ClassicalMessage::Positions {
            purpose: "DA".into(),
            positions: da_positions.clone(),
        },
    );
    // Bob encodes id_B on the partner qubits and announces the Bell results.
    let idb_paulis: Vec<Pauli> = if impersonation == Impersonation::OfBob {
        (0..l).map(|_| Pauli::random(rng)).collect()
    } else {
        identities.bob.as_paulis()
    };
    let mut announced: Vec<BellState> = Vec::with_capacity(l);
    for (pauli, &pos) in idb_paulis.iter().zip(&da_positions) {
        pairs[pos].apply_bob_pauli(*pauli);
        announced.push(pairs[pos].bell_measure(rng).state);
    }
    classical.send(
        Party::Bob,
        ClassicalMessage::BellResults {
            block: "DB-auth".into(),
            results: announced
                .iter()
                .map(|s| s.encoding_pauli().to_index())
                .collect(),
        },
    );
    // Alice (the real one) verifies Bob. When Eve impersonates Alice she has no id_B to check
    // against and simply continues, so the abort decision is skipped in that case.
    let bob_report = auth::verify_bob(
        &announced,
        &covers,
        &identities.bob,
        config.auth_error_tolerance(),
    );
    if impersonation != Impersonation::OfAlice && !bob_report.passed() {
        classical.send(
            Party::Alice,
            ClassicalMessage::Abort {
                reason: format!("Bob authentication failed: {bob_report}"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::BobAuthentication,
                reason: bob_report.to_string(),
            },
            Some(report1),
            None,
            Some(bob_report),
            None,
            None,
            None,
            &classical,
            resources,
        ));
    }

    // Alice reveals C_A; Bob verifies id_A. The Bell results are *not* announced.
    classical.send(
        Party::Alice,
        ClassicalMessage::Positions {
            purpose: "CA".into(),
            positions: ca_positions.clone(),
        },
    );
    let mut measured_ca: Vec<BellState> = Vec::with_capacity(l);
    for &pos in &ca_positions {
        measured_ca.push(pairs[pos].bell_measure(rng).state);
    }
    let alice_report = auth::verify_alice(
        &measured_ca,
        &identities.alice,
        config.auth_error_tolerance(),
    );
    if impersonation != Impersonation::OfBob && !alice_report.passed() {
        classical.send(
            Party::Bob,
            ClassicalMessage::Abort {
                reason: format!("Alice authentication failed: {alice_report}"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::AliceAuthentication,
                reason: alice_report.to_string(),
            },
            Some(report1),
            None,
            Some(bob_report),
            Some(alice_report),
            None,
            None,
            &classical,
            resources,
        ));
    }
    classical.send(
        Party::Bob,
        ClassicalMessage::Ack {
            phase: "authentication".into(),
        },
    );

    // ------------------------------------------------------- phase 5: DI check round two --
    classical.send(
        Party::Alice,
        ClassicalMessage::Positions {
            purpose: "di-check-2".into(),
            positions: check2_positions.clone(),
        },
    );
    let (report2, _records2) = run_di_check_at(
        DiCheckRound::Second,
        pairs,
        &check2_positions,
        config.chsh_abort_threshold(),
        rng,
    );
    classical.send(
        Party::Bob,
        ClassicalMessage::Ack {
            phase: "di-check-2".into(),
        },
    );
    if !report2.passed {
        classical.send(
            Party::Bob,
            ClassicalMessage::Abort {
                reason: format!("second DI check failed: {report2}"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::DiCheck2,
                reason: report2.to_string(),
            },
            Some(report1),
            Some(report2),
            Some(bob_report),
            Some(alice_report),
            None,
            None,
            &classical,
            resources,
        ));
    }

    // ------------------------------------------------------------------ phase 6: decode --
    let mut received_paulis: Vec<Pauli> = Vec::with_capacity(n_qubits);
    for &pos in &ma_positions {
        received_paulis.push(pairs[pos].bell_measure(rng).state.encoding_pauli());
    }
    let received_bits = PaddedMessage::bits_from_paulis(&received_paulis);
    classical.send(
        Party::Alice,
        ClassicalMessage::CheckBitsReveal {
            positions: padded.check_positions().to_vec(),
            values: padded.check_values().to_vec(),
        },
    );
    let check_error = padded.check_bit_error_rate(&received_bits);
    if check_error > config.check_bit_error_tolerance() {
        classical.send(
            Party::Bob,
            ClassicalMessage::Abort {
                reason: format!("check-bit error rate {check_error:.3} exceeds tolerance"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::IntegrityCheck,
                reason: format!("check-bit error rate {check_error:.3}"),
            },
            Some(report1),
            Some(report2),
            Some(bob_report),
            Some(alice_report),
            None,
            Some(check_error),
            &classical,
            resources,
        ));
    }
    let received_message = padded.extract_message(&received_bits);
    classical.send(
        Party::Bob,
        ClassicalMessage::Ack {
            phase: "message-received".into(),
        },
    );

    Ok(finish(
        SessionStatus::Delivered,
        Some(report1),
        Some(report2),
        Some(bob_report),
        Some(alice_report),
        Some(received_message),
        Some(check_error),
        &classical,
        resources,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noise::DeviceModel;
    use qchannel::quantum::ChannelSpec;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn small_config() -> SessionConfig {
        SessionConfig::builder()
            .message_bits(16)
            .check_bits(4)
            .di_check_pairs(220)
            .build()
            .unwrap()
    }

    fn small_scenario(seed: u64) -> Scenario {
        let identities = IdentityPair::generate(5, &mut rng(seed));
        Scenario::new(small_config(), identities)
    }

    #[test]
    fn honest_scenario_delivers_the_exact_message() {
        let message = SecretMessage::from_bitstring("1010011100101101").unwrap();
        let scenario = small_scenario(11).with_message(message.clone());
        let outcome = SessionEngine::new(1).run(&scenario).unwrap();
        assert!(outcome.is_delivered(), "{}", outcome.status);
        assert_eq!(outcome.received_message.as_ref().unwrap(), &message);
        assert_eq!(outcome.message_bit_error_rate, Some(0.0));
        assert_eq!(outcome.check_bit_error_rate, Some(0.0));
        assert_eq!(outcome.message_accuracy(), Some(1.0));
        assert!(outcome.di_check_round1.as_ref().unwrap().passed);
        assert!(outcome.di_check_round2.as_ref().unwrap().passed);
        assert!(outcome.bob_auth.as_ref().unwrap().passed());
        assert!(outcome.alice_auth.as_ref().unwrap().passed());
        assert!(!outcome.transcript.contains_abort());
        assert!(outcome.resources.classical_messages > 5);
        assert_eq!(
            outcome.resources.total_pairs,
            scenario.config.total_pairs(scenario.identities.qubit_len())
        );
    }

    #[test]
    fn random_message_scenario_delivers() {
        let outcome = SessionEngine::new(23).run(&small_scenario(23)).unwrap();
        assert!(outcome.is_delivered());
        assert_eq!(
            outcome.sent_message.bits(),
            outcome.received_message.as_ref().unwrap().bits()
        );
    }

    #[test]
    fn short_noisy_channel_still_delivers_with_high_accuracy() {
        let identities = IdentityPair::generate(5, &mut rng(37));
        let config = SessionConfig::builder()
            .message_bits(24)
            .check_bits(8)
            .di_check_pairs(220)
            .channel(ChannelSpec::noisy_identity_chain(
                10,
                DeviceModel::ibm_brisbane_like(),
            ))
            .build()
            .unwrap();
        let scenario = Scenario::new(config, identities);
        let outcome = SessionEngine::new(37).run(&scenario).unwrap();
        assert!(outcome.is_delivered(), "{}", outcome.status);
        assert!(outcome.message_accuracy().unwrap() > 0.85);
        let s2 = outcome.di_check_round2.unwrap().chsh.unwrap();
        assert!(s2 > 2.0, "noisy but honest channel keeps S2 > 2, got {s2}");
    }

    #[test]
    fn message_length_mismatch_is_an_error() {
        let scenario =
            small_scenario(5).with_message(SecretMessage::from_bitstring("101").unwrap());
        let err = SessionEngine::new(5).run(&scenario);
        assert!(matches!(
            err,
            Err(ProtocolError::MessageLengthMismatch {
                expected: 16,
                actual: 3
            })
        ));
    }

    #[test]
    fn impersonating_bob_is_caught_by_alice() {
        let identities = IdentityPair::generate(8, &mut rng(71));
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(64)
            .auth_error_tolerance(0.0)
            .build()
            .unwrap();
        let scenario = Scenario::new(config, identities).with_adversary(Adversary::ImpersonateBob);
        let outcome = SessionEngine::new(71).run(&scenario).unwrap();
        assert!(
            outcome.aborted_at(AbortStage::BobAuthentication),
            "{}",
            outcome.status
        );
        assert!(outcome.transcript.contains_abort());
        assert!(outcome.received_message.is_none());
    }

    #[test]
    fn impersonating_alice_is_caught_by_bob() {
        let identities = IdentityPair::generate(8, &mut rng(72));
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(64)
            .auth_error_tolerance(0.0)
            .build()
            .unwrap();
        let scenario =
            Scenario::new(config, identities).with_adversary(Adversary::ImpersonateAlice);
        let outcome = SessionEngine::new(72).run(&scenario).unwrap();
        assert!(
            outcome.aborted_at(AbortStage::AliceAuthentication),
            "{}",
            outcome.status
        );
        assert!(outcome.received_message.is_none());
    }

    #[test]
    fn custom_tap_that_destroys_entanglement_triggers_an_abort() {
        /// A crude "dephase everything" interceptor.
        struct ZMeasureTap;
        impl ChannelTap for ZMeasureTap {
            fn on_transmit(&mut self, pair: &mut EprPair, _rng: &mut dyn RngCore) {
                noise::KrausChannel::phase_flip(0.5).apply(pair.density_mut(), &[0]);
            }
            fn name(&self) -> &str {
                "z-measure"
            }
        }
        let identities = IdentityPair::generate(4, &mut rng(99));
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(220)
            .auth_error_tolerance(0.6)
            .build()
            .unwrap();
        let scenario = Scenario::new(config, identities)
            .with_adversary(Adversary::custom("z-measure", || Box::new(ZMeasureTap)));
        let outcome = SessionEngine::new(99).run(&scenario).unwrap();
        assert!(
            !outcome.is_delivered(),
            "a channel that destroys coherence must be detected, got {}",
            outcome.status
        );
        // Round 1 ran before transmission, so it passed; the abort happened later.
        assert!(outcome.di_check_round1.as_ref().unwrap().passed);
        assert!(!outcome.aborted_at(AbortStage::DiCheck1));
    }

    #[test]
    fn builtin_channel_adversaries_are_detected() {
        let identities = IdentityPair::generate(4, &mut rng(41));
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(220)
            .auth_error_tolerance(1.0)
            .build()
            .unwrap();
        let engine = SessionEngine::new(41);
        for adversary in [
            Adversary::InterceptResend(InterceptBasis::Computational),
            Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
            Adversary::EntangleMeasure { strength: 1.0 },
        ] {
            let scenario = Scenario::new(config.clone(), identities.clone())
                .with_label(adversary.name())
                .with_adversary(adversary.clone());
            let summary = engine.run_trials(&scenario, 3).unwrap();
            assert_eq!(summary.delivered, 0, "{summary}");
            assert!(summary.detection_rate() > 0.99, "{summary}");
        }
    }

    #[test]
    fn transcript_never_contains_message_or_alice_identity_results() {
        let outcome = SessionEngine::new(123).run(&small_scenario(123)).unwrap();
        // The only Bell results on the wire are the covered DB-auth block.
        let bell_msgs = outcome.transcript.messages_of_kind("bell-results");
        assert_eq!(bell_msgs.len(), 1);
        // No transcript message kind carries message bits; the decoded message only lives in
        // the outcome struct (Bob's private memory).
        for entry in outcome.transcript.iter() {
            assert_ne!(entry.message.kind(), "message");
        }
    }

    #[test]
    fn identical_engines_replay_identical_outcomes() {
        let scenario = small_scenario(7);
        let a = SessionEngine::new(2024).run_nth(&scenario, 3).unwrap();
        let b = SessionEngine::new(2024).run_nth(&scenario, 3).unwrap();
        assert_eq!(a, b);
        let c = SessionEngine::new(2025).run_nth(&scenario, 3).unwrap();
        assert_ne!(
            a.sent_message, c.sent_message,
            "different master seeds diverge"
        );
    }

    #[test]
    fn trial_streams_are_independent_of_batch_composition() {
        let honest = small_scenario(301).with_label("honest");
        let attacked = small_scenario(302)
            .with_label("intercept")
            .with_adversary(Adversary::InterceptResend(InterceptBasis::Computational));
        let engine = SessionEngine::new(9);
        let alone = engine.run_trials(&attacked, 2).unwrap();
        let batch = engine
            .run_batch(&[honest.clone(), attacked.clone()], 2)
            .unwrap();
        assert_eq!(batch[1], alone, "batch membership must not change results");
        let reordered = engine.run_batch(&[attacked, honest], 2).unwrap();
        assert_eq!(reordered[0], alone, "batch order must not change results");
    }

    #[test]
    fn trial_summary_accounting_is_consistent() {
        let scenario = small_scenario(88)
            .with_adversary(Adversary::ImpersonateBob)
            .with_label("imp-bob");
        let summary = SessionEngine::new(88).run_trials(&scenario, 5).unwrap();
        assert_eq!(summary.trials, 5);
        assert_eq!(summary.adversary, "impersonate-bob");
        assert_eq!(
            summary.delivered + summary.total_aborts(),
            5,
            "every trial either delivers or aborts: {summary}"
        );
        assert_eq!(
            summary.aborted_at(AbortStage::BobAuthentication),
            summary.aborted_bob_auth
        );
        assert!(summary.to_string().contains("imp-bob"));
    }

    #[test]
    fn relabelling_a_scenario_does_not_change_results() {
        let base = small_scenario(61).with_label("before");
        let renamed = base.clone().with_label("after-rename");
        assert_eq!(
            base.fingerprint(),
            renamed.fingerprint(),
            "labels are display-only and must not affect the RNG stream"
        );
        let engine = SessionEngine::new(61);
        let a = engine.run(&base).unwrap();
        let b = engine.run(&renamed).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_entangle_strength_is_an_error_not_a_panic() {
        let scenario =
            small_scenario(62).with_adversary(Adversary::EntangleMeasure { strength: 1.5 });
        let err = SessionEngine::new(62).run(&scenario);
        assert!(
            matches!(err, Err(ProtocolError::InvalidConfig(_))),
            "{err:?}"
        );
        // The same guard applies at the serde boundary.
        let json = r#"{"EntangleMeasure":{"strength":1.5}}"#;
        assert!(serde::json::from_str::<Adversary>(json).is_err());
    }

    #[test]
    fn impersonation_mapping_round_trips() {
        for target in [
            Impersonation::None,
            Impersonation::OfAlice,
            Impersonation::OfBob,
        ] {
            let adversary = Adversary::from_impersonation(target);
            assert_eq!(adversary.impersonation(), target);
        }
        assert_eq!(
            Adversary::ImpersonateBob.detection_stage(),
            Some(AbortStage::BobAuthentication)
        );
        assert_eq!(
            Adversary::ImpersonateAlice.detection_stage(),
            Some(AbortStage::AliceAuthentication)
        );
        assert_eq!(Adversary::Honest.detection_stage(), None);
    }

    #[test]
    fn adversary_serde_round_trips_except_custom() {
        for adversary in [
            Adversary::Honest,
            Adversary::ImpersonateAlice,
            Adversary::ImpersonateBob,
            Adversary::InterceptResend(InterceptBasis::Equatorial(0.4)),
            Adversary::ManInTheMiddle(SubstituteState::RandomBb84),
            Adversary::EntangleMeasure { strength: 0.25 },
        ] {
            let json = serde::json::to_string(&adversary);
            let back: Adversary = serde::json::from_str(&json).unwrap();
            assert_eq!(back, adversary, "via {json}");
        }
        let custom = Adversary::custom("noop", || Box::new(NoTap));
        let json = serde::json::to_string(&custom);
        assert!(serde::json::from_str::<Adversary>(&json).is_err());
    }

    #[test]
    fn every_parallelism_mode_replays_the_serial_results() {
        let scenarios = [
            small_scenario(501).with_label("honest"),
            small_scenario(502)
                .with_label("intercept")
                .with_adversary(Adversary::InterceptResend(InterceptBasis::Computational)),
            small_scenario(503)
                .with_label("imp-bob")
                .with_adversary(Adversary::ImpersonateBob),
        ];
        let serial_engine = SessionEngine::new(2025);
        let serial_outcomes = serial_engine.run_outcomes(&scenarios[0], 4).unwrap();
        let serial_batch = serial_engine.run_batch(&scenarios, 3).unwrap();
        for parallelism in [
            Parallelism::Threads(2),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            let engine = SessionEngine::new(2025).with_parallelism(parallelism);
            assert_eq!(engine.parallelism(), parallelism);
            assert_eq!(
                engine.run_outcomes(&scenarios[0], 4).unwrap(),
                serial_outcomes,
                "{parallelism}"
            );
            assert_eq!(
                engine.run_batch(&scenarios, 3).unwrap(),
                serial_batch,
                "{parallelism}"
            );
        }
    }

    #[test]
    fn executor_stats_account_for_every_trial() {
        let scenario = small_scenario(77);
        let engine = SessionEngine::new(77).with_parallelism(Parallelism::Threads(3));
        let (summary, stats) = engine.run_trials_with_stats(&scenario, 7).unwrap();
        assert_eq!(summary.trials, 7);
        assert_eq!(stats.tasks, 7);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 7);
        assert!(stats.workers <= 3);
        assert!(stats.wall_time > std::time::Duration::ZERO);

        let (summaries, batch_stats) = engine
            .run_batch_with_stats(&[scenario.clone(), scenario.clone()], 2)
            .unwrap();
        assert_eq!(summaries.len(), 2);
        assert_eq!(batch_stats.tasks, 4, "tasks = scenarios × trials");
    }

    #[test]
    fn parallel_error_reporting_matches_serial() {
        let scenario =
            small_scenario(31).with_adversary(Adversary::EntangleMeasure { strength: 7.0 });
        for parallelism in [Parallelism::Serial, Parallelism::Threads(4)] {
            let engine = SessionEngine::new(31).with_parallelism(parallelism);
            assert!(matches!(
                engine.run_trials(&scenario, 3),
                Err(ProtocolError::InvalidConfig(_))
            ));
            assert!(matches!(
                engine.run_batch(std::slice::from_ref(&scenario), 2),
                Err(ProtocolError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn zero_trials_and_empty_batches_work_under_parallelism() {
        let scenario = small_scenario(8);
        for parallelism in [Parallelism::Serial, Parallelism::Threads(8)] {
            let engine = SessionEngine::new(8).with_parallelism(parallelism);
            let summary = engine.run_trials(&scenario, 0).unwrap();
            assert_eq!(summary.trials, 0);
            assert_eq!(summary.detection_rate(), 0.0);
            assert_eq!(summary.delivery_rate(), 0.0);
            assert!(engine.run_batch(&[], 5).unwrap().is_empty());
            let batch = engine
                .run_batch(std::slice::from_ref(&scenario), 0)
                .unwrap();
            assert_eq!(batch.len(), 1);
            assert_eq!(batch[0].trials, 0);
        }
    }

    #[test]
    fn custom_adversaries_run_in_parallel() {
        // A stateful tap: per-session state must stay per-worker because the
        // factory builds a fresh tap inside the worker that runs the trial.
        struct FlipCounter {
            flips: usize,
        }
        impl ChannelTap for FlipCounter {
            fn on_transmit(&mut self, pair: &mut EprPair, _rng: &mut dyn RngCore) {
                self.flips += 1;
                noise::KrausChannel::phase_flip(0.5).apply(pair.density_mut(), &[0]);
            }
            fn name(&self) -> &str {
                "flip-counter"
            }
        }
        let scenario = small_scenario(64).with_adversary(Adversary::custom("flip-counter", || {
            Box::new(FlipCounter { flips: 0 })
        }));
        let serial = SessionEngine::new(64).run_trials(&scenario, 4).unwrap();
        let threaded = SessionEngine::new(64)
            .with_parallelism(Parallelism::Threads(4))
            .run_trials(&scenario, 4)
            .unwrap();
        assert_eq!(serial, threaded);
        assert_eq!(serial.delivered, 0, "dephasing everything must abort");
    }

    #[test]
    fn statevector_backend_delivers_and_replays() {
        let identities = IdentityPair::generate(5, &mut rng(43));
        let config = SessionConfig::builder()
            .message_bits(24)
            .check_bits(8)
            .di_check_pairs(220)
            .channel(ChannelSpec::noisy_identity_chain(
                10,
                DeviceModel::ibm_brisbane_like(),
            ))
            .build()
            .unwrap();
        let scenario = Scenario::new(config, identities).with_backend(BackendKind::Statevector);
        let outcome = SessionEngine::new(43).run(&scenario).unwrap();
        assert!(outcome.is_delivered(), "{}", outcome.status);
        assert!(
            outcome.message_accuracy().unwrap() > 0.8,
            "sampled trajectories keep a short channel usable, got {:?}",
            outcome.message_accuracy()
        );
        let s2 = outcome.di_check_round2.as_ref().unwrap().chsh.unwrap();
        assert!(s2 > 2.0, "honest sampled channel keeps S2 > 2, got {s2}");
        // Bit-for-bit replay on a fresh engine.
        let replay = SessionEngine::new(43).run(&scenario).unwrap();
        assert_eq!(outcome, replay);
    }

    #[test]
    fn statevector_backend_on_an_ideal_channel_delivers_exactly() {
        let message = SecretMessage::from_bitstring("1010011100101101").unwrap();
        let scenario = small_scenario(44)
            .with_message(message.clone())
            .with_backend(BackendKind::Statevector);
        let outcome = SessionEngine::new(44).run(&scenario).unwrap();
        assert!(outcome.is_delivered(), "{}", outcome.status);
        assert_eq!(outcome.received_message.as_ref().unwrap(), &message);
        assert_eq!(outcome.message_accuracy(), Some(1.0));
    }

    #[test]
    fn statevector_backend_detects_channel_adversaries() {
        let identities = IdentityPair::generate(4, &mut rng(45));
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(220)
            .auth_error_tolerance(1.0)
            .build()
            .unwrap();
        let engine = SessionEngine::new(45);
        for adversary in [
            Adversary::InterceptResend(InterceptBasis::Computational),
            Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
            Adversary::EntangleMeasure { strength: 1.0 },
        ] {
            let scenario = Scenario::new(config.clone(), identities.clone())
                .with_label(adversary.name())
                .with_adversary(adversary)
                .with_backend(BackendKind::Statevector);
            let summary = engine.run_trials(&scenario, 3).unwrap();
            assert_eq!(summary.delivered, 0, "{summary}");
            assert!(summary.detection_rate() > 0.99, "{summary}");
        }
    }

    #[test]
    fn pauli_twirled_backend_delivers_and_replays() {
        let identities = IdentityPair::generate(5, &mut rng(81));
        let config = SessionConfig::builder()
            .message_bits(24)
            .check_bits(8)
            .di_check_pairs(220)
            // Five identity qubits make the auth stage sensitive to a single
            // twirled Pauli error; this test targets delivery + replay, so
            // give authentication the same headroom a longer id would.
            .auth_error_tolerance(0.4)
            .channel(ChannelSpec::noisy_identity_chain(
                10,
                DeviceModel::ibm_brisbane_like(),
            ))
            .build()
            .unwrap();
        let scenario = Scenario::new(config, identities).with_backend(BackendKind::PauliTwirled);
        let outcome = SessionEngine::new(81).run(&scenario).unwrap();
        assert!(outcome.is_delivered(), "{}", outcome.status);
        assert!(
            outcome.message_accuracy().unwrap() > 0.8,
            "the twirled substrate keeps a short channel usable, got {:?}",
            outcome.message_accuracy()
        );
        let s2 = outcome.di_check_round2.as_ref().unwrap().chsh.unwrap();
        assert!(s2 > 2.0, "honest twirled channel keeps S2 > 2, got {s2}");
        let replay = SessionEngine::new(81).run(&scenario).unwrap();
        assert_eq!(outcome, replay);
    }

    #[test]
    fn pauli_twirled_backend_on_an_ideal_channel_delivers_exactly() {
        let message = SecretMessage::from_bitstring("1010011100101101").unwrap();
        let scenario = small_scenario(82)
            .with_message(message.clone())
            .with_backend(BackendKind::PauliTwirled);
        let outcome = SessionEngine::new(82).run(&scenario).unwrap();
        assert!(outcome.is_delivered(), "{}", outcome.status);
        assert_eq!(outcome.received_message.as_ref().unwrap(), &message);
        assert_eq!(outcome.message_accuracy(), Some(1.0));
        assert_eq!(outcome.check_bit_error_rate, Some(0.0));
        let s1 = outcome.di_check_round1.as_ref().unwrap().chsh.unwrap();
        assert!(s1 > 2.0, "ideal frames violate the classical bound, {s1}");
    }

    #[test]
    fn pauli_twirled_backend_detects_channel_adversaries() {
        let identities = IdentityPair::generate(4, &mut rng(83));
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(220)
            .auth_error_tolerance(1.0)
            .build()
            .unwrap();
        let engine = SessionEngine::new(83);
        for adversary in [
            Adversary::InterceptResend(InterceptBasis::Computational),
            Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
            Adversary::EntangleMeasure { strength: 1.0 },
        ] {
            let scenario = Scenario::new(config.clone(), identities.clone())
                .with_label(adversary.name())
                .with_adversary(adversary)
                .with_backend(BackendKind::PauliTwirled);
            let summary = engine.run_trials(&scenario, 3).unwrap();
            assert_eq!(summary.delivered, 0, "{summary}");
            assert!(summary.detection_rate() > 0.99, "{summary}");
        }
    }

    #[test]
    fn pauli_twirled_trials_fan_out_deterministically() {
        let scenario = small_scenario(84).with_backend(BackendKind::PauliTwirled);
        let serial = SessionEngine::new(84).run_trials(&scenario, 4).unwrap();
        let threaded = SessionEngine::new(84)
            .with_parallelism(Parallelism::Threads(4))
            .run_trials(&scenario, 4)
            .unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn backend_kind_round_trips_and_resolves() {
        assert_eq!(BackendKind::default(), BackendKind::DensityMatrix);
        for kind in BackendKind::ALL {
            assert_eq!(kind.backend().name(), kind.as_str());
            assert_eq!(kind.to_string(), kind.as_str());
            let parsed: BackendKind = kind.as_str().parse().unwrap();
            assert_eq!(parsed, kind);
            let json = serde::json::to_string(&kind);
            let back: BackendKind = serde::json::from_str(&json).unwrap();
            assert_eq!(back, kind, "via {json}");
        }
        assert_eq!("dm".parse::<BackendKind>(), Ok(BackendKind::DensityMatrix));
        assert_eq!("sv".parse::<BackendKind>(), Ok(BackendKind::Statevector));
        for alias in ["pauli-twirled", "twirled", "pt", "stabilizer"] {
            assert_eq!(alias.parse::<BackendKind>(), Ok(BackendKind::PauliTwirled));
        }
        let err = "quantum-annealer".parse::<BackendKind>().unwrap_err();
        for kind in BackendKind::ALL {
            assert!(
                err.contains(kind.as_str()),
                "the parse error must list `{kind}`: {err}"
            );
        }
        assert!(serde::json::from_str::<BackendKind>("\"nope\"").is_err());
        assert!(serde::json::from_str::<BackendKind>("3").is_err());
    }

    #[test]
    fn backend_choice_is_part_of_the_fingerprint() {
        let density = small_scenario(46);
        // An explicit default is the same physical scenario (streams and
        // fingerprints of pre-BackendKind runs stay valid).
        assert_eq!(
            density.fingerprint(),
            density
                .clone()
                .with_backend(BackendKind::DensityMatrix)
                .fingerprint()
        );
        let statevector = density.clone().with_backend(BackendKind::Statevector);
        assert_ne!(
            density.fingerprint(),
            statevector.fingerprint(),
            "substrates must draw disjoint trial streams"
        );
        assert_ne!(density, statevector);
        // The backend survives the serde round trip, fingerprint included.
        let json = serde::json::to_string(&statevector);
        let back: Scenario = serde::json::from_str(&json).unwrap();
        assert_eq!(back.backend, BackendKind::Statevector);
        assert_eq!(back.fingerprint(), statevector.fingerprint());
        assert!(statevector.to_string().contains("statevector"));
    }

    #[test]
    fn scenarios_without_a_backend_field_deserialize_as_density_matrix() {
        // JSON written before the backend selector existed must keep parsing
        // (and keep its fingerprint): those runs were density-matrix by
        // construction.
        let scenario = small_scenario(48);
        let json = serde::json::to_string(&scenario);
        let legacy = json.replace(",\"backend\":\"density-matrix\"", "");
        assert_ne!(legacy, json, "the backend field must have been serialized");
        let back: Scenario = serde::json::from_str(&legacy).unwrap();
        assert_eq!(back, scenario);
        assert_eq!(back.backend, BackendKind::DensityMatrix);
        assert_eq!(back.fingerprint(), scenario.fingerprint());
    }

    #[test]
    fn statevector_trials_fan_out_deterministically() {
        let scenario = small_scenario(47).with_backend(BackendKind::Statevector);
        let serial = SessionEngine::new(47).run_trials(&scenario, 4).unwrap();
        let threaded = SessionEngine::new(47)
            .with_parallelism(Parallelism::Threads(4))
            .run_trials(&scenario, 4)
            .unwrap();
        assert_eq!(serial, threaded);
    }

    #[test]
    fn backend_seam_is_exercised() {
        /// Counts backend calls while delegating to the default substrate.
        #[derive(Debug, Default)]
        struct CountingBackend {
            emitted: std::sync::atomic::AtomicUsize,
            transmitted: std::sync::atomic::AtomicUsize,
        }
        impl Backend for CountingBackend {
            fn name(&self) -> &str {
                "counting"
            }
            fn emit_pair(
                &self,
                channel: &CompiledQuantumChannel,
                tap: &mut dyn ChannelTap,
                rng: &mut dyn RngCore,
            ) -> EprPair {
                self.emitted
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                DensityMatrixBackend.emit_pair(channel, tap, rng)
            }
            fn transmit(
                &self,
                channel: &CompiledQuantumChannel,
                pair: &mut EprPair,
                tap: &mut dyn ChannelTap,
                rng: &mut dyn RngCore,
            ) {
                self.transmitted
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                DensityMatrixBackend.transmit(channel, pair, tap, rng);
            }
        }
        let backend = Arc::new(CountingBackend::default());
        let scenario = small_scenario(55);
        let engine = SessionEngine::new(55).with_backend(backend.clone());
        assert_eq!(engine.backend_name(), "counting");
        let outcome = engine.run(&scenario).unwrap();
        assert!(outcome.is_delivered());
        let total = scenario.config.total_pairs(scenario.identities.qubit_len());
        assert_eq!(
            backend.emitted.load(std::sync::atomic::Ordering::Relaxed),
            total
        );
        assert_eq!(
            backend
                .transmitted
                .load(std::sync::atomic::Ordering::Relaxed),
            total - scenario.config.di_check_pairs()
        );
    }
}
