//! # protocol — the UA-DI-QSDC protocol and its baselines
//!
//! This crate is the paper's core contribution: the first device-independent quantum secure
//! direct communication protocol with user identity authentication (UA-DI-QSDC). It follows
//! the six phases of Section II:
//!
//! 1. **Entanglement sharing** — a source distributes `N + 2l + 2d` EPR pairs ([`session`]).
//! 2. **First DI security check** — `d` pairs are sacrificed to estimate the CHSH polynomial
//!    ([`di_check`]); the protocol continues only if `S¹ > 2`.
//! 3. **Alice's encoding** — the padded message `m'` and identity `id_A` are encoded with
//!    Pauli operators; cover operations hide the `D_A` block ([`message`], [`identity`]).
//! 4. **Authentication** — Bob encodes `id_B`, both parties verify each other ([`auth`]).
//! 5. **Second DI security check** — Bob alone estimates `S²` on the reserved pairs.
//! 6. **Message decoding** — Bob Bell-measures the remaining pairs and checks the integrity
//!    bits.
//!
//! [`baselines`] adds a runnable DI-QSDC without authentication (the Zhou et al. 2020 shape)
//! and [`descriptor`] carries the feature/cost rows of the paper's Table I.
//!
//! ## Example
//!
//! ```rust
//! use protocol::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let identities = IdentityPair::generate(6, &mut rng);
//! let config = SessionConfig::builder()
//!     .message_bits(16)
//!     .check_bits(4)
//!     .di_check_pairs(60)
//!     .build()?;
//! let outcome = run_session(&config, &identities, &mut rng)?;
//! assert!(outcome.is_delivered());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod baselines;
pub mod config;
pub mod descriptor;
pub mod di_check;
pub mod error;
pub mod identity;
pub mod message;
pub mod session;

pub use config::{SessionConfig, SessionConfigBuilder};
pub use error::ProtocolError;
pub use identity::{IdentityPair, IdentityString};
pub use message::{PaddedMessage, SecretMessage};
pub use session::{run_session, run_session_with_message, Impersonation, SessionOutcome, SessionStatus};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::auth::{AuthReport, AuthVerdict};
    pub use crate::baselines::{run_baseline_di_qsdc, BaselineOutcome};
    pub use crate::config::{SessionConfig, SessionConfigBuilder};
    pub use crate::descriptor::{DecodingMeasurement, ProtocolDescriptor, ResourceType};
    pub use crate::di_check::{DiCheckReport, DiCheckRound};
    pub use crate::error::ProtocolError;
    pub use crate::identity::{IdentityPair, IdentityString};
    pub use crate::message::{PaddedMessage, SecretMessage};
    pub use crate::session::{
        run_session, run_session_with_message, Impersonation, SessionOutcome, SessionStatus,
    };
}
