//! # protocol — the UA-DI-QSDC protocol and its execution engine
//!
//! This crate is the paper's core contribution: the first device-independent quantum secure
//! direct communication protocol with user identity authentication (UA-DI-QSDC). It follows
//! the six phases of Section II:
//!
//! 1. **Entanglement sharing** — a source distributes `N + 2l + 2d` EPR pairs.
//! 2. **First DI security check** — `d` pairs are sacrificed to estimate the CHSH polynomial
//!    ([`di_check`]); the protocol continues only if `S¹ > 2`.
//! 3. **Alice's encoding** — the padded message `m'` and identity `id_A` are encoded with
//!    Pauli operators; cover operations hide the `D_A` block ([`message`], [`identity`]).
//! 4. **Authentication** — Bob encodes `id_B`, both parties verify each other ([`auth`]).
//! 5. **Second DI security check** — Bob alone estimates `S²` on the reserved pairs.
//! 6. **Message decoding** — Bob Bell-measures the remaining pairs and checks the integrity
//!    bits.
//!
//! All execution goes through [`engine`]: describe *what* to run as a declarative
//! [`engine::Scenario`] (configuration, identities, optional fixed message, and a single
//! [`engine::Adversary`] covering every eavesdropper of Section III), then hand it to an
//! [`engine::SessionEngine`], which resolves the simulation [`engine::Backend`] from the
//! scenario's [`engine::BackendKind`] and derives a deterministic RNG stream per trial from
//! its master seed — single runs, trial batches and
//! multi-scenario sweeps all reproduce bit-for-bit from one seed. Because each trial's RNG
//! stream is independent of execution order, the engine also fans trials out across worker
//! threads ([`engine::parallel`]): pick an [`engine::Parallelism`] policy (`Serial`,
//! `Threads(n)`, or `Auto`) via [`engine::SessionEngine::with_parallelism`] and every mode
//! returns bit-for-bit identical results, only faster.
//!
//! Runs also decompose into the explicit **plan → execute → merge** stages of
//! [`engine::shard`]: a serde [`engine::ShardPlan`] carves a trial range into shippable
//! shards, [`engine::SessionEngine::execute_shard`] turns one shard into an
//! [`engine::ShardResult`], and an [`engine::ShardMerger`] folds results back in trial order —
//! byte-identical to the unsharded run, whether the shards ran on one machine or twenty (see
//! the `shardctl` binary in the `bench` crate for the multi-process form).
//!
//! [`wire`] is the serde vocabulary of the session service: job specs, requests, responses,
//! and the spooled job manifest, all golden-fixture-locked so the newline-delimited JSON
//! protocol `qsdc-serve` (the `serve` crate) speaks cannot drift silently. The service lowers
//! every accepted job onto an [`engine::queue::ShardQueue`] before acknowledging it, which is
//! what makes a SIGKILLed server resume byte-identically (see `docs/service.md`).
//!
//! [`baselines`] adds a runnable DI-QSDC without authentication (the Zhou et al. 2020 shape)
//! and [`descriptor`] carries the feature/cost rows of the paper's Table I. [`session`] keeps
//! the observable vocabulary of a run ([`SessionOutcome`], [`SessionStatus`], …).
//!
//! ## Example
//!
//! ```rust
//! use protocol::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let identities = IdentityPair::generate(6, &mut rng);
//! let config = SessionConfig::builder()
//!     .message_bits(16)
//!     .check_bits(4)
//!     .di_check_pairs(200)
//!     .build()?;
//!
//! let engine = SessionEngine::new(42);
//! // One honest session…
//! let outcome = engine.run(&Scenario::new(config.clone(), identities.clone()))?;
//! assert!(outcome.is_delivered());
//! // …and an attacked batch, summarised per scenario.
//! let scenarios = vec![
//!     Scenario::new(config.clone(), identities.clone()).with_label("honest"),
//!     Scenario::new(config, identities)
//!         .with_label("impersonation")
//!         .with_adversary(Adversary::ImpersonateBob),
//! ];
//! let summaries = engine.run_batch(&scenarios, 4)?;
//! assert_eq!(summaries[0].delivered, 4);
//! assert!(summaries[1].detection_rate() > 0.9);
//! # Ok(())
//! # }
//! ```
//!
//! ## Sharded sweeps
//!
//! Because a [`engine::ShardPlan`] fully determines its trials, a sweep can be split, executed
//! by independent processes, and merged back byte-identically — in-process via
//! [`engine::SessionEngine::plan`] / [`engine::SessionEngine::execute_shard`] /
//! [`engine::ShardMerger`], or between processes with the `bench` crate's `shardctl` binary:
//!
//! ```text
//! shardctl scenario --preset intercept > scenario.json
//! shardctl plan --scenario scenario.json --trials 1000 --seed 42 --shards 4 > plans.json
//! for i in 0 1 2 3; do shardctl run --plans plans.json --index $i > result-$i.json; done
//! shardctl merge result-*.json     # == the unsharded run, byte for byte
//! ```
//!
//! ## Resumable queues
//!
//! Static shard assignment is the degenerate schedule. For a heterogeneous (and mortal)
//! fleet, [`engine::queue`] provides a [`engine::ShardQueue`]: a work queue on a shared
//! directory that hands fine-grained sub-plans to workers on a claim/lease basis — slow
//! workers claim fewer shards, dead workers' leases expire and their shards are re-issued —
//! and persists every completed result (with a content fingerprint) in a versioned
//! [`engine::MergeCheckpoint`]. Checkpoint writes are atomic, so a SIGKILLed sweep resumes
//! exactly where it stopped, and the resumed merge is byte-identical to an uninterrupted
//! run. `shardctl queue init/claim/submit/status/work/resume` expose the same operations to
//! a fleet of processes; the CI `queue-chaos` job kills a worker mid-run and byte-diffs the
//! resumed merge against the single-process sweep.
//!
//! ## Campaigns
//!
//! One level above single sweeps, [`engine::campaign`] makes whole parameter spaces
//! declarative: a serde [`engine::Campaign`] sweeps one or more [`engine::Axis`] value lists
//! (cartesian grid or explicit point list — η, adversary, backend, attack strength, trial
//! budget) over a base scenario. [`engine::Campaign::expand`] turns the declaration into
//! fingerprinted points, [`engine::Campaign::run_direct`] executes them in-process, and
//! [`engine::CampaignRun`] lowers them onto per-point [`engine::ShardQueue`]s so a fleet can
//! drain — and crash, and [`engine::CampaignRun::resume`] — the sweep with byte-identical
//! results. The folded [`engine::CampaignReport`] carries every point's coordinates,
//! [`engine::TrialSummary`] and Wilson-intervalled detection / false-alarm rates
//! ([`engine::RateInterval`]). `shardctl campaign plan/run/resume/report` expose the same
//! operations to a fleet of processes, and the `fig2`, `fig3`, `ablation_backend`, `table1`
//! and `attack_*` binaries are now formatters over checked-in campaign definitions.
//!
//! ## Simulation backends
//!
//! Three production substrates implement the [`engine::Backend`] seam, selected per scenario by
//! [`engine::BackendKind`] ([`engine::Scenario::with_backend`], or `--backend` on `shardctl`
//! and the attack sweep binaries): the default [`engine::DensityMatrixBackend`] applies every
//! noise channel exactly (the paper's emulation), [`engine::StatevectorBackend`] runs
//! sessions as sampled pure-state trajectories (one Born-sampled Kraus branch per noise
//! application), and [`engine::PauliTwirledBackend`] lowers every channel to its Pauli twirl
//! at compile time and tracks each pair as a two-bit Pauli frame — the integer-only substrate
//! for billion-trial sweeps. The kind is folded into [`engine::Scenario::fingerprint`], so the
//! substrates draw disjoint RNG streams, shipped plans reproduce on the right backend
//! cross-process, and [`engine::ShardMerger`] rejects any attempt to fold results from
//! different substrates into one run. The `bench` crate's `ablation_backend` binary quantifies
//! where the sampled and twirled substrates' detection-rate curves diverge from the exact
//! emulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod baselines;
pub mod config;
pub mod descriptor;
pub mod di_check;
pub mod engine;
pub mod env_keys;
pub mod error;
pub mod identity;
pub mod message;
pub mod session;
pub mod wire;

pub use config::{SessionConfig, SessionConfigBuilder};
pub use engine::{
    Adversary, Axis, AxisValue, Backend, BackendKind, Campaign, CampaignReport, CampaignRun,
    CampaignSpace, CampaignWorkload, DensityMatrixBackend, ExecutorStats, MergeCheckpoint,
    MergedRun, Parallelism, PauliTwirledBackend, RateInterval, Scenario, SessionEngine,
    ShardMerger, ShardOutput, ShardPlan, ShardQueue, ShardResult, StatevectorBackend, TrialSummary,
};
pub use error::ProtocolError;
pub use identity::{IdentityPair, IdentityString};
pub use message::{PaddedMessage, SecretMessage};
pub use session::{Impersonation, SessionOutcome, SessionStatus};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::auth::{AuthReport, AuthVerdict};
    pub use crate::baselines::{run_baseline_di_qsdc, BaselineOutcome};
    pub use crate::config::{SessionConfig, SessionConfigBuilder};
    pub use crate::descriptor::{DecodingMeasurement, ProtocolDescriptor, ResourceType};
    pub use crate::di_check::{DiCheckReport, DiCheckRound};
    pub use crate::engine::{
        derive_point_seed, merge_shard_results, Adversary, Axis, AxisValue, Backend, BackendKind,
        Campaign, CampaignError, CampaignPoint, CampaignPointReport, CampaignReport, CampaignRun,
        CampaignRunOptions, CampaignSpace, CampaignStatus, CampaignWorkload, ClaimOutcome,
        DensityMatrixBackend, ExecutorStats, MergeCheckpoint, MergeError, MergedRun, NoSampler,
        Parallelism, PauliTwirledBackend, QueueError, QueueStatus, RateInterval, Sampler, Scenario,
        SessionEngine, ShardMerger, ShardOutput, ShardPayload, ShardPlan, ShardQueue, ShardResult,
        ShardSlot, SlotState, StatevectorBackend, SubmitOutcome, TrialSummary,
    };
    pub use crate::error::ProtocolError;
    pub use crate::identity::{IdentityPair, IdentityString};
    pub use crate::message::{PaddedMessage, SecretMessage};
    pub use crate::session::{AbortStage, Impersonation, SessionOutcome, SessionStatus};
}
