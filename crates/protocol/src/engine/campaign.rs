//! Declarative parameter-space campaigns that lower onto the shard/queue
//! fleet.
//!
//! The paper's results are all points on parameter grids — detection rate vs
//! channel length η, attack strength, backend, trial budget. A [`Campaign`]
//! captures such a grid *declaratively*: one or more [`Axis`] value lists
//! (cartesian product, last axis fastest) or an explicit point list, swept
//! over a base [`Scenario`]. Expansion turns the declaration into concrete
//! [`CampaignPoint`]s — each a fingerprinted `Scenario` plus trial budget —
//! and execution lowers every point onto the existing [`ShardQueue`]
//! machinery, so a campaign inherits the fleet's crash-safety: SIGKILL a
//! worker mid-sweep, `resume`, and the merged [`CampaignReport`] is
//! byte-identical to an uninterrupted run.
//!
//! Two workloads are supported:
//!
//! - [`CampaignWorkload::Session`]: each point is a full protocol session
//!   sweep executed by [`SessionEngine`] (the detection-rate tables).
//! - [`CampaignWorkload::Sampled`]: each point is handed, with its
//!   coordinates and a derived seed, to a caller-registered [`Sampler`] —
//!   circuit-level experiments (the fig. 2 histogram, the fig. 3 accuracy
//!   sweep) that sample shots rather than run sessions.
//!
//! # Example
//!
//! ```rust
//! use protocol::engine::{Axis, BackendKind, Campaign, CampaignSpace, CampaignWorkload,
//!                        NoSampler, Parallelism, Scenario};
//! use protocol::identity::IdentityPair;
//! use protocol::SessionConfig;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SessionConfig::builder()
//!     .message_bits(8)
//!     .check_bits(2)
//!     .di_check_pairs(24)
//!     .build()?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let base = Scenario::new(config, IdentityPair::generate(2, &mut rng));
//! let campaign = Campaign {
//!     label: "doc".into(),
//!     master_seed: 99,
//!     trials: 2,
//!     workload: CampaignWorkload::Session { base },
//!     space: CampaignSpace::Grid(vec![Axis::Backend(BackendKind::ALL.to_vec())]),
//! };
//! let report = campaign.run_direct(Parallelism::Serial, &NoSampler)?;
//! assert_eq!(report.points.len(), BackendKind::ALL.len());
//! assert!(report.points[0].summary.is_some());
//! # Ok(())
//! # }
//! ```

use super::parallel::scatter;
use super::queue::{write_atomically, QueueError, ShardQueue};
use super::shard::ShardOutput;
use super::{fnv1a64, Adversary, BackendKind, Parallelism, Scenario, SessionEngine, TrialSummary};
use crate::config::SessionConfig;
use crate::error::ProtocolError;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;

/// File name of the stored campaign definition inside a campaign directory.
pub const CAMPAIGN_FILE: &str = "campaign.json";

/// Directory holding sampled-point results inside a campaign directory.
pub const SAMPLES_DIR: &str = "samples";

/// z-score used for the report's Wilson confidence intervals (95 % coverage).
pub const WILSON_Z: f64 = 1.96;

/// Derives the per-point seed stream of a campaign: point `index` of a
/// campaign seeded with `master_seed` samples under
/// `splitmix64(master_seed XOR index · 0xa24b_aed4_963e_e407)`.
///
/// This is the same derivation the figure binaries have always used for
/// their per-panel RNGs, which is what lets a stored campaign reproduce the
/// legacy hand-rolled loops bit-for-bit.
pub fn derive_point_seed(master_seed: u64, index: u64) -> u64 {
    let mut state = master_seed ^ index.wrapping_mul(0xa24b_aed4_963e_e407);
    rand::splitmix64(&mut state)
}

// ------------------------------------------------------------------- axes --

/// One sweep axis: a named parameter and the list of values it takes.
///
/// In a [`CampaignSpace::Grid`], axes multiply (cartesian product, **last
/// axis fastest** — the natural nesting order of a hand-written loop).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Axis {
    /// Channel length η: rebuilds the scenario's channel with
    /// [`ChannelSpec::with_length`](qchannel::quantum::ChannelSpec::with_length).
    Eta(Vec<usize>),
    /// Trial (session workload) or shot (sampled workload) budget per point,
    /// overriding [`Campaign::trials`].
    Trials(Vec<usize>),
    /// Simulation backend for the point's scenario.
    Backend(Vec<BackendKind>),
    /// Adversary attacking the point's session.
    Adversary(Vec<Adversary>),
    /// Coupling strength of an [`Adversary::EntangleMeasure`] adversary,
    /// in `[0, 1]`.
    Strength(Vec<f64>),
    /// Encoded message panel (sampled workloads only, e.g. the fig. 2
    /// histogram's four two-bit messages).
    Message(Vec<String>),
}

impl Axis {
    /// The axis's parameter name.
    pub fn name(&self) -> &'static str {
        match self {
            Axis::Eta(_) => "eta",
            Axis::Trials(_) => "trials",
            Axis::Backend(_) => "backend",
            Axis::Adversary(_) => "adversary",
            Axis::Strength(_) => "strength",
            Axis::Message(_) => "message",
        }
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::Eta(v) => v.len(),
            Axis::Trials(v) => v.len(),
            Axis::Backend(v) => v.len(),
            Axis::Adversary(v) => v.len(),
            Axis::Strength(v) => v.len(),
            Axis::Message(v) => v.len(),
        }
    }

    /// Whether the axis carries no values (such an axis empties the whole
    /// grid and is rejected by [`Campaign::expand`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The axis's values as point coordinates.
    pub fn values(&self) -> Vec<AxisValue> {
        match self {
            Axis::Eta(v) => v.iter().map(|&x| AxisValue::Eta(x)).collect(),
            Axis::Trials(v) => v.iter().map(|&x| AxisValue::Trials(x)).collect(),
            Axis::Backend(v) => v.iter().map(|&x| AxisValue::Backend(x)).collect(),
            Axis::Adversary(v) => v.iter().cloned().map(AxisValue::Adversary).collect(),
            Axis::Strength(v) => v.iter().map(|&x| AxisValue::Strength(x)).collect(),
            Axis::Message(v) => v.iter().cloned().map(AxisValue::Message).collect(),
        }
    }
}

/// One coordinate of a campaign point: a single value picked from an
/// [`Axis`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AxisValue {
    /// A channel length η.
    Eta(usize),
    /// A per-point trial/shot budget.
    Trials(usize),
    /// A simulation backend.
    Backend(BackendKind),
    /// An adversary.
    Adversary(Adversary),
    /// An entangle-and-measure coupling strength.
    Strength(f64),
    /// An encoded message panel.
    Message(String),
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::Eta(eta) => write!(f, "η={eta}"),
            AxisValue::Trials(trials) => write!(f, "trials={trials}"),
            AxisValue::Backend(backend) => write!(f, "backend={backend}"),
            AxisValue::Adversary(adversary) => write!(f, "adversary={}", adversary.name()),
            AxisValue::Strength(strength) => write!(f, "strength={strength}"),
            AxisValue::Message(message) => write!(f, "message={message}"),
        }
    }
}

// --------------------------------------------------------------- campaign --

/// The parameter space swept by a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignSpace {
    /// Cartesian product of the axes, in declaration order with the **last
    /// axis fastest** (like nested loops with the last axis innermost).
    Grid(Vec<Axis>),
    /// An explicit list of points, each a list of coordinates applied to the
    /// base in order. An empty coordinate list denotes the base itself.
    Points(Vec<Vec<AxisValue>>),
}

/// What kind of work each expanded point performs.
// A campaign holds exactly one workload and is cloned only at definition
// granularity, so the `Session` variant's embedded `Scenario` is not worth
// boxing (which would also complicate the JSON wire shape round-trip).
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignWorkload {
    /// Each point is a full protocol [`Scenario`] — the base with the
    /// point's coordinates applied — executed by [`SessionEngine`] and
    /// lowered to shard plans on the queue.
    Session {
        /// The scenario every point starts from.
        base: Scenario,
    },
    /// Each point is handed to a caller-registered [`Sampler`] together with
    /// its coordinates and derived seed — circuit-level experiments that
    /// sample shots instead of running sessions.
    Sampled {
        /// Sampler kind the executing process must have registered
        /// (e.g. `"fig2-histogram"`).
        kind: String,
        /// Opaque kind-specific parameters (device name, fixed η, …).
        params: Value,
    },
}

/// A declarative, serializable parameter sweep: a [`CampaignWorkload`] swept
/// over a [`CampaignSpace`] under one master seed.
///
/// The declaration is the experiment: expansion, seeding, sharding and
/// merging are all pure functions of this value, so a checked-in campaign
/// file plus [`CampaignRun`] re-derives a figure's numbers exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Human-readable name. Excluded from [`Campaign::fingerprint`], like
    /// [`Scenario::label`].
    pub label: String,
    /// Master seed: session points plan under it directly (matching
    /// [`SessionEngine::run_batch`]), sampled points derive per-point seeds
    /// from it via [`derive_point_seed`].
    pub master_seed: u64,
    /// Default trial (session) / shot (sampled) budget per point; an
    /// [`Axis::Trials`] coordinate overrides it.
    pub trials: usize,
    /// What each point executes.
    pub workload: CampaignWorkload,
    /// The swept parameter space.
    pub space: CampaignSpace,
}

impl Campaign {
    /// Content fingerprint over everything *physical*: master seed, trial
    /// budget, workload (a session base contributes its own
    /// [`Scenario::fingerprint`], so labels never matter) and parameter
    /// space. Stable across processes and sessions; stamps every
    /// [`CampaignReport`] and sampled result record.
    pub fn fingerprint(&self) -> u64 {
        let workload = match &self.workload {
            CampaignWorkload::Session { base } => Value::Map(vec![(
                "Session".into(),
                Value::Map(vec![("base".into(), base.fingerprint().to_value())]),
            )]),
            sampled @ CampaignWorkload::Sampled { .. } => sampled.to_value(),
        };
        let physical = Value::Map(vec![
            ("master_seed".into(), self.master_seed.to_value()),
            ("trials".into(), self.trials.to_value()),
            ("workload".into(), workload),
            ("space".into(), self.space.to_value()),
        ]);
        fnv1a64(serde::json::to_string(&physical).as_bytes())
    }

    /// Expands the declaration into concrete points, in sweep order.
    ///
    /// # Errors
    ///
    /// - [`CampaignError::EmptySpace`] / [`CampaignError::EmptyAxis`] when
    ///   the grid (or one of its axes) holds no values;
    /// - [`CampaignError::InvalidPoint`] when a coordinate cannot apply (a
    ///   `Message` axis on a session workload, a `Strength` coordinate
    ///   without an entangle-and-measure adversary, a zero trial budget, an
    ///   η that produces an invalid configuration);
    /// - [`CampaignError::DuplicatePoint`] when two points are physically
    ///   identical — a duplicated sweep would silently double-count.
    pub fn expand(&self) -> Result<Vec<CampaignPoint>, CampaignError> {
        let coord_lists = match &self.space {
            CampaignSpace::Grid(axes) => {
                if axes.is_empty() {
                    return Err(CampaignError::EmptySpace);
                }
                if let Some(empty) = axes.iter().find(|axis| axis.is_empty()) {
                    return Err(CampaignError::EmptyAxis { axis: empty.name() });
                }
                let mut lists: Vec<Vec<AxisValue>> = vec![Vec::new()];
                for axis in axes {
                    let values = axis.values();
                    lists = lists
                        .into_iter()
                        .flat_map(|prefix| {
                            values.iter().map(move |value| {
                                let mut point = prefix.clone();
                                point.push(value.clone());
                                point
                            })
                        })
                        .collect();
                }
                lists
            }
            CampaignSpace::Points(points) => {
                if points.is_empty() {
                    return Err(CampaignError::EmptySpace);
                }
                points.clone()
            }
        };

        let mut points = Vec::with_capacity(coord_lists.len());
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        for (index, coords) in coord_lists.into_iter().enumerate() {
            let point = self.expand_point(index, coords)?;
            let key = point.identity_key();
            if let Some(&first) = seen.get(&key) {
                return Err(CampaignError::DuplicatePoint {
                    first,
                    second: index,
                });
            }
            seen.insert(key, index);
            points.push(point);
        }
        Ok(points)
    }

    /// Applies one coordinate list to the base, producing a concrete point.
    fn expand_point(
        &self,
        index: usize,
        coords: Vec<AxisValue>,
    ) -> Result<CampaignPoint, CampaignError> {
        let mut trials = self.trials;
        let mut scenario = match &self.workload {
            CampaignWorkload::Session { base } => Some(base.clone()),
            CampaignWorkload::Sampled { .. } => None,
        };
        for coord in &coords {
            if let AxisValue::Trials(t) = coord {
                trials = *t;
                continue;
            }
            if let Some(current) = scenario.take() {
                scenario = Some(apply_session_coord(current, coord, index)?);
            }
        }
        if trials == 0 {
            return Err(CampaignError::InvalidPoint {
                index,
                reason: "point has a zero trial budget".into(),
            });
        }
        let label = if coords.is_empty() {
            format!("{} · base", self.label)
        } else {
            let rendered: Vec<String> = coords.iter().map(|c| c.to_string()).collect();
            format!("{} · {}", self.label, rendered.join(", "))
        };
        let scenario = scenario.map(|s| s.with_label(label.clone()));
        Ok(CampaignPoint {
            index,
            label,
            coords,
            trials,
            seed: derive_point_seed(self.master_seed, index as u64),
            scenario,
        })
    }

    /// Expands and executes the whole campaign in this process, without any
    /// on-disk state.
    ///
    /// Session points run through the same plan/execute/merge pipeline the
    /// queue uses, so the resulting report is byte-identical to a
    /// [`CampaignRun`] drained by any fleet. Sampled points fan out across
    /// `parallelism` (each is a pure function of its coordinates and seed).
    ///
    /// # Errors
    ///
    /// Expansion errors, [`CampaignError::Protocol`] from session execution,
    /// or [`CampaignError::Sampler`] when the sampler rejects a point.
    pub fn run_direct(
        &self,
        parallelism: Parallelism,
        sampler: &dyn Sampler,
    ) -> Result<CampaignReport, CampaignError> {
        let points = self.expand()?;
        let payloads = match &self.workload {
            CampaignWorkload::Session { .. } => {
                let engine = SessionEngine::new(self.master_seed).with_parallelism(parallelism);
                points
                    .iter()
                    .map(|point| {
                        let scenario = point
                            .scenario
                            .as_ref()
                            .expect("session points carry scenarios");
                        engine
                            .run_trials(scenario, point.trials)
                            .map(PointPayload::Summary)
                            .map_err(|error| CampaignError::Protocol {
                                index: point.index,
                                error,
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
            CampaignWorkload::Sampled { kind, params } => {
                let (results, _) = scatter(parallelism, points.len(), |i| {
                    sampler.sample(kind, params, &points[i])
                });
                results
                    .into_iter()
                    .enumerate()
                    .map(|(index, result)| {
                        result
                            .map(PointPayload::Sampled)
                            .map_err(|reason| CampaignError::Sampler { index, reason })
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        Ok(build_report(self, &points, payloads))
    }
}

/// Applies a single non-`Trials` coordinate to a session scenario.
fn apply_session_coord(
    mut scenario: Scenario,
    coord: &AxisValue,
    index: usize,
) -> Result<Scenario, CampaignError> {
    let invalid = |reason: String| CampaignError::InvalidPoint { index, reason };
    match coord {
        AxisValue::Eta(eta) => {
            let config = &scenario.config;
            let rebuilt = SessionConfig::builder()
                .message_bits(config.message_bits())
                .check_bits(config.check_bits())
                .di_check_pairs(config.di_check_pairs())
                .chsh_abort_threshold(config.chsh_abort_threshold())
                .auth_error_tolerance(config.auth_error_tolerance())
                .check_bit_error_tolerance(config.check_bit_error_tolerance())
                .channel(config.channel().clone().with_length(*eta))
                .build()
                .map_err(|e| invalid(format!("η={eta} yields an invalid config: {e}")))?;
            scenario.config = rebuilt;
            Ok(scenario)
        }
        AxisValue::Backend(backend) => Ok(scenario.with_backend(*backend)),
        AxisValue::Adversary(adversary) => Ok(scenario.with_adversary(adversary.clone())),
        AxisValue::Strength(strength) => {
            if !(0.0..=1.0).contains(strength) {
                return Err(invalid(format!("strength {strength} outside [0, 1]")));
            }
            match scenario.adversary {
                Adversary::EntangleMeasure { .. } => {
                    Ok(scenario.with_adversary(Adversary::EntangleMeasure {
                        strength: *strength,
                    }))
                }
                ref other => Err(invalid(format!(
                    "strength coordinates need an entangle-and-measure adversary, found `{}`",
                    other.name()
                ))),
            }
        }
        AxisValue::Message(_) => Err(invalid(
            "message axes only apply to sampled campaigns".into(),
        )),
        AxisValue::Trials(_) => Ok(scenario), // handled by the caller
    }
}

/// One concrete point of an expanded campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPoint {
    /// Position in sweep order (also the seed-derivation index).
    pub index: usize,
    /// Human-readable point label: the campaign label plus the coordinates.
    pub label: String,
    /// The coordinates that produced this point.
    pub coords: Vec<AxisValue>,
    /// Trial/shot budget of this point.
    pub trials: usize,
    /// Per-point seed, [`derive_point_seed`] of the master seed and
    /// [`index`](Self::index). Sampled workloads seed their RNG from it;
    /// session workloads ignore it (their streams derive from the master
    /// seed and the scenario fingerprint, matching `run_batch`).
    pub seed: u64,
    /// The concrete scenario (session workloads only).
    pub scenario: Option<Scenario>,
}

impl CampaignPoint {
    /// A key identifying the point's *physics*, used for duplicate
    /// rejection: scenario fingerprint + trials for session points, the
    /// serialized coordinates + trials for sampled points.
    fn identity_key(&self) -> String {
        match &self.scenario {
            Some(scenario) => format!("session:{:016x}:{}", scenario.fingerprint(), self.trials),
            None => format!(
                "sampled:{}:{}",
                serde::json::to_string(&self.coords.to_value()),
                self.trials
            ),
        }
    }
}

// ---------------------------------------------------------------- sampler --

/// Executes sampled campaign points (circuit-level experiments).
///
/// Implementations must be pure functions of `(kind, params, point)` — that
/// is what makes sampled campaigns resumable and their reports reproducible.
/// The trait is implemented for any matching `Fn` closure.
pub trait Sampler: Sync {
    /// Produces the point's result payload, or a reason it cannot.
    fn sample(&self, kind: &str, params: &Value, point: &CampaignPoint) -> Result<Value, String>;
}

impl<F> Sampler for F
where
    F: Fn(&str, &Value, &CampaignPoint) -> Result<Value, String> + Sync,
{
    fn sample(&self, kind: &str, params: &Value, point: &CampaignPoint) -> Result<Value, String> {
        self(kind, params, point)
    }
}

/// A [`Sampler`] that rejects every kind — the right argument when running
/// session campaigns, which never invoke one.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSampler;

impl Sampler for NoSampler {
    fn sample(&self, kind: &str, _params: &Value, _point: &CampaignPoint) -> Result<Value, String> {
        Err(format!("no sampler registered for kind `{kind}`"))
    }
}

// ----------------------------------------------------------------- report --

/// A rate with its Wilson-score 95 % confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateInterval {
    /// Point estimate `successes / trials`.
    pub rate: f64,
    /// Lower Wilson bound.
    pub lower: f64,
    /// Upper Wilson bound.
    pub upper: f64,
}

impl RateInterval {
    /// Wilson interval at [`WILSON_Z`] for `successes` out of `trials`.
    ///
    /// # Panics
    ///
    /// Panics when `trials == 0` or `successes > trials`.
    pub fn wilson(successes: usize, trials: usize) -> Self {
        let (lower, upper) = analysis::stats::wilson_interval(successes, trials, WILSON_Z);
        Self {
            rate: successes as f64 / trials as f64,
            lower,
            upper,
        }
    }
}

impl fmt::Display for RateInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} [{:.3}, {:.3}]", self.rate, self.lower, self.upper)
    }
}

/// One point's row in a [`CampaignReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPointReport {
    /// Sweep-order index of the point.
    pub index: usize,
    /// The point's label.
    pub label: String,
    /// The coordinates that produced the point.
    pub coords: Vec<AxisValue>,
    /// Trial/shot budget the point executed.
    pub trials: usize,
    /// Merged trial summary (session workloads).
    pub summary: Option<TrialSummary>,
    /// Sampler payload (sampled workloads).
    pub sampled: Option<Value>,
    /// Abort rate with confidence interval, for points under attack —
    /// aborts against an adversary are *detections*.
    pub detection: Option<RateInterval>,
    /// Abort rate with confidence interval, for honest points — aborts
    /// without an adversary are *false alarms*.
    pub false_alarm: Option<RateInterval>,
}

/// The folded result of a whole campaign: every point's coordinates and
/// merged numbers, stamped with the campaign fingerprint.
///
/// A report is a pure function of the campaign definition, so any two
/// executions — direct, queued, interrupted-and-resumed — serialize to the
/// same bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The campaign's label.
    pub label: String,
    /// [`Campaign::fingerprint`] of the definition that produced this.
    pub fingerprint: u64,
    /// The campaign's master seed.
    pub master_seed: u64,
    /// Per-point results, in sweep order.
    pub points: Vec<CampaignPointReport>,
}

/// What one executed point produced.
enum PointPayload {
    Summary(TrialSummary),
    Sampled(Value),
}

/// Folds executed payloads into the final report.
fn build_report(
    campaign: &Campaign,
    points: &[CampaignPoint],
    payloads: Vec<PointPayload>,
) -> CampaignReport {
    let points = points
        .iter()
        .zip(payloads)
        .map(|(point, payload)| {
            let (summary, sampled) = match payload {
                PointPayload::Summary(summary) => (Some(summary), None),
                PointPayload::Sampled(value) => (None, Some(value)),
            };
            let (detection, false_alarm) = abort_rates(point, summary.as_ref());
            CampaignPointReport {
                index: point.index,
                label: point.label.clone(),
                coords: point.coords.clone(),
                trials: point.trials,
                summary,
                sampled,
                detection,
                false_alarm,
            }
        })
        .collect();
    CampaignReport {
        label: campaign.label.clone(),
        fingerprint: campaign.fingerprint(),
        master_seed: campaign.master_seed,
        points,
    }
}

/// Splits a session point's abort rate into the detection column (points
/// under attack) or the false-alarm column (honest points).
fn abort_rates(
    point: &CampaignPoint,
    summary: Option<&TrialSummary>,
) -> (Option<RateInterval>, Option<RateInterval>) {
    let Some(summary) = summary else {
        return (None, None);
    };
    if summary.trials == 0 {
        return (None, None);
    }
    let interval = RateInterval::wilson(summary.total_aborts(), summary.trials);
    let honest = matches!(
        point.scenario.as_ref().map(|s| &s.adversary),
        Some(Adversary::Honest)
    );
    if honest {
        (None, Some(interval))
    } else {
        (Some(interval), None)
    }
}

// ----------------------------------------------------------------- errors --

/// Everything that can go wrong declaring, expanding, or executing a
/// campaign.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// The grid has no axes, or the explicit point list is empty.
    EmptySpace,
    /// A grid axis carries no values.
    EmptyAxis {
        /// Name of the offending axis.
        axis: &'static str,
    },
    /// Two expanded points are physically identical.
    DuplicatePoint {
        /// Sweep index of the first occurrence.
        first: usize,
        /// Sweep index of the duplicate.
        second: usize,
    },
    /// A coordinate cannot apply to its point.
    InvalidPoint {
        /// Sweep index of the point.
        index: usize,
        /// What went wrong.
        reason: String,
    },
    /// A session point failed to execute.
    Protocol {
        /// Sweep index of the point.
        index: usize,
        /// The underlying protocol error.
        error: ProtocolError,
    },
    /// A point's shard queue failed.
    Queue {
        /// Sweep index of the point.
        index: usize,
        /// The underlying queue error.
        error: QueueError,
    },
    /// The sampler rejected a sampled point.
    Sampler {
        /// Sweep index of the point.
        index: usize,
        /// The sampler's reason.
        reason: String,
    },
    /// A report was requested before every point finished.
    Incomplete {
        /// Points fully executed.
        done: usize,
        /// Points in the campaign.
        total: usize,
    },
    /// [`CampaignRun::init`] found an existing campaign file.
    AlreadyInitialized {
        /// The existing file.
        path: PathBuf,
    },
    /// [`CampaignRun::open`] found no campaign file.
    NotInitialized {
        /// The missing file.
        path: PathBuf,
    },
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error.
        message: String,
    },
    /// On-disk campaign state failed to parse or carries the wrong
    /// fingerprint.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What is wrong with it.
        reason: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::EmptySpace => {
                write!(f, "campaign sweeps no points (empty grid or point list)")
            }
            CampaignError::EmptyAxis { axis } => {
                write!(f, "axis `{axis}` carries no values")
            }
            CampaignError::DuplicatePoint { first, second } => write!(
                f,
                "point {second} duplicates point {first}: a duplicated sweep would double-count"
            ),
            CampaignError::InvalidPoint { index, reason } => {
                write!(f, "point {index} is invalid: {reason}")
            }
            CampaignError::Protocol { index, error } => {
                write!(f, "point {index} failed to execute: {error}")
            }
            CampaignError::Queue { index, error } => {
                write!(f, "point {index} queue error: {error}")
            }
            CampaignError::Sampler { index, reason } => {
                write!(f, "sampler rejected point {index}: {reason}")
            }
            CampaignError::Incomplete { done, total } => {
                write!(f, "campaign incomplete: {done}/{total} points done")
            }
            CampaignError::AlreadyInitialized { path } => {
                write!(f, "campaign already initialized at {}", path.display())
            }
            CampaignError::NotInitialized { path } => {
                write!(f, "no campaign found at {}", path.display())
            }
            CampaignError::Io { path, message } => {
                write!(f, "I/O error at {}: {message}", path.display())
            }
            CampaignError::Corrupt { path, reason } => {
                write!(f, "corrupt campaign state at {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Protocol { error, .. } => Some(error),
            CampaignError::Queue { error, .. } => Some(error),
            _ => None,
        }
    }
}

// ------------------------------------------------------------ on-disk run --

/// Aggregate progress of a campaign directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Points in the campaign.
    pub points_total: usize,
    /// Points whose every shard (or sample) is done.
    pub points_done: usize,
    /// Trials executed so far, across all points.
    pub trials_done: u64,
    /// Trials the whole campaign will execute.
    pub trials_total: u64,
}

impl CampaignStatus {
    /// Whether every point has finished.
    pub fn complete(&self) -> bool {
        self.points_done == self.points_total
    }
}

impl fmt::Display for CampaignStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} points done ({}/{} trials)",
            self.points_done, self.points_total, self.trials_done, self.trials_total
        )
    }
}

/// Knobs for [`CampaignRun::run`] / [`CampaignRun::resume`].
#[derive(Debug, Clone)]
pub struct CampaignRunOptions {
    /// Worker name recorded on queue leases.
    pub worker: String,
    /// Lease duration for claimed shards, in milliseconds.
    pub lease_ms: u64,
    /// Sleep between claim attempts while other workers hold leases, in
    /// milliseconds.
    pub poll_ms: u64,
    /// Fault-injection hook: sleep this long between claiming a shard and
    /// executing it (0 = disabled). Chaos tests use it to widen the window
    /// in which a worker can be killed while holding a lease.
    pub throttle_ms: u64,
    /// Intra-shard parallelism of the executing engine.
    pub parallelism: Parallelism,
}

impl Default for CampaignRunOptions {
    fn default() -> Self {
        Self {
            worker: "campaign-worker".into(),
            lease_ms: 30_000,
            poll_ms: 200,
            throttle_ms: 0,
            parallelism: Parallelism::Auto,
        }
    }
}

/// A record of one executed sampled point, persisted atomically so a killed
/// campaign never re-runs finished points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SampleRecord {
    /// Fingerprint of the owning campaign.
    campaign: u64,
    /// Sweep index of the point.
    index: usize,
    /// The sampler's payload.
    payload: Value,
}

/// A campaign lowered onto a state directory: the stored definition plus one
/// [`ShardQueue`] per session point (`point-NNNN/`) or one atomic result
/// file per sampled point (`samples/point-NNNN.json`).
///
/// All coordination state lives on disk, so any number of processes can
/// [`run`](Self::run) the same directory concurrently and a SIGKILLed worker
/// costs at most its leased shards — exactly the queue's crash model, point
/// by point.
#[derive(Debug)]
pub struct CampaignRun {
    dir: PathBuf,
    campaign: Campaign,
    points: Vec<CampaignPoint>,
}

impl CampaignRun {
    /// Creates a campaign directory: stores the definition and initializes
    /// one shard queue per session point, each splitting the point's plan
    /// into shards of at most `shard_trials` trials.
    ///
    /// # Errors
    ///
    /// Expansion errors, [`CampaignError::AlreadyInitialized`] when the
    /// directory already holds a campaign, or I/O / queue errors.
    ///
    /// # Panics
    ///
    /// Panics when `shard_trials` is 0 (as [`ShardQueue::init`] does).
    pub fn init(
        dir: impl Into<PathBuf>,
        campaign: &Campaign,
        shard_trials: usize,
    ) -> Result<Self, CampaignError> {
        let dir = dir.into();
        let points = campaign.expand()?;
        fs::create_dir_all(&dir).map_err(|e| CampaignError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
        let campaign_path = dir.join(CAMPAIGN_FILE);
        if campaign_path.exists() {
            return Err(CampaignError::AlreadyInitialized {
                path: campaign_path,
            });
        }
        let run = Self {
            dir,
            campaign: campaign.clone(),
            points,
        };
        match &run.campaign.workload {
            CampaignWorkload::Session { .. } => {
                let engine = SessionEngine::new(run.campaign.master_seed);
                for point in &run.points {
                    let scenario = point
                        .scenario
                        .as_ref()
                        .expect("session points carry scenarios");
                    let plan = engine.plan(scenario, point.trials);
                    ShardQueue::init(
                        run.point_dir(point.index),
                        &plan,
                        shard_trials,
                        ShardOutput::Summary,
                    )
                    .map_err(|error| CampaignError::Queue {
                        index: point.index,
                        error,
                    })?;
                }
            }
            CampaignWorkload::Sampled { .. } => {
                let samples = run.dir.join(SAMPLES_DIR);
                fs::create_dir_all(&samples).map_err(|e| CampaignError::Io {
                    path: samples,
                    message: e.to_string(),
                })?;
            }
        }
        // The definition is written last: a campaign file's existence means
        // the directory is fully initialized.
        write_atomically(
            &campaign_path,
            serde::json::to_string(&run.campaign).as_bytes(),
        )
        .map_err(|error| CampaignError::Queue { index: 0, error })?;
        Ok(run)
    }

    /// Opens an existing campaign directory, re-expanding the stored
    /// definition.
    ///
    /// # Errors
    ///
    /// [`CampaignError::NotInitialized`] when no campaign file exists,
    /// [`CampaignError::Corrupt`] when it fails to parse, plus any
    /// expansion error.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CampaignError> {
        let dir = dir.into();
        let campaign_path = dir.join(CAMPAIGN_FILE);
        if !campaign_path.exists() {
            return Err(CampaignError::NotInitialized {
                path: campaign_path,
            });
        }
        let text = fs::read_to_string(&campaign_path).map_err(|e| CampaignError::Io {
            path: campaign_path.clone(),
            message: e.to_string(),
        })?;
        let campaign: Campaign =
            serde::json::from_str(&text).map_err(|e| CampaignError::Corrupt {
                path: campaign_path,
                reason: e.to_string(),
            })?;
        let points = campaign.expand()?;
        Ok(Self {
            dir,
            campaign,
            points,
        })
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stored campaign definition.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// The expanded points, in sweep order.
    pub fn points(&self) -> &[CampaignPoint] {
        &self.points
    }

    /// The shard-queue directory of session point `index`.
    pub fn point_dir(&self, index: usize) -> PathBuf {
        self.dir.join(format!("point-{index:04}"))
    }

    /// The result file of sampled point `index`.
    fn sample_path(&self, index: usize) -> PathBuf {
        self.dir
            .join(SAMPLES_DIR)
            .join(format!("point-{index:04}.json"))
    }

    /// Opens the shard queue of session point `index`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidPoint`] for sampled campaigns (their points
    /// have no queues), or the queue's own open errors.
    pub fn point_queue(&self, index: usize) -> Result<ShardQueue, CampaignError> {
        if matches!(self.campaign.workload, CampaignWorkload::Sampled { .. }) {
            return Err(CampaignError::InvalidPoint {
                index,
                reason: "sampled points have no shard queues".into(),
            });
        }
        ShardQueue::open(self.point_dir(index))
            .map_err(|error| CampaignError::Queue { index, error })
    }

    /// Aggregate progress across every point.
    ///
    /// # Errors
    ///
    /// Queue errors from session points; corrupt sample records are counted
    /// as not-done rather than failing the status call.
    pub fn status(&self) -> Result<CampaignStatus, CampaignError> {
        let mut status = CampaignStatus {
            points_total: self.points.len(),
            points_done: 0,
            trials_done: 0,
            trials_total: 0,
        };
        for point in &self.points {
            status.trials_total += point.trials as u64;
            match &self.campaign.workload {
                CampaignWorkload::Session { .. } => {
                    let queue_status =
                        self.point_queue(point.index)?.status().map_err(|error| {
                            CampaignError::Queue {
                                index: point.index,
                                error,
                            }
                        })?;
                    status.trials_done += queue_status.trials_done;
                    if queue_status.complete() {
                        status.points_done += 1;
                    }
                }
                CampaignWorkload::Sampled { .. } => {
                    if self.read_sample(point.index).is_ok() {
                        status.points_done += 1;
                        status.trials_done += point.trials as u64;
                    }
                }
            }
        }
        Ok(status)
    }

    /// Executes every remaining shard / sampled point, then folds the
    /// report.
    ///
    /// Session points drain their queues with the claim/execute/submit loop
    /// (waiting out other workers' leases); sampled points that already have
    /// a valid result file are skipped. Any number of processes can run the
    /// same directory concurrently.
    ///
    /// # Errors
    ///
    /// Queue, protocol, sampler, or I/O errors from execution, plus
    /// anything [`report`](Self::report) can return.
    pub fn run(
        &self,
        options: &CampaignRunOptions,
        sampler: &dyn Sampler,
    ) -> Result<CampaignReport, CampaignError> {
        match &self.campaign.workload {
            CampaignWorkload::Session { .. } => {
                let engine = SessionEngine::new(self.campaign.master_seed)
                    .with_parallelism(options.parallelism);
                for point in &self.points {
                    self.drain_point(point.index, &engine, options)?;
                }
            }
            CampaignWorkload::Sampled { kind, params } => {
                for point in &self.points {
                    if self.read_sample(point.index).is_ok() {
                        continue;
                    }
                    if options.throttle_ms > 0 {
                        thread::sleep(Duration::from_millis(options.throttle_ms));
                    }
                    let payload = sampler.sample(kind, params, point).map_err(|reason| {
                        CampaignError::Sampler {
                            index: point.index,
                            reason,
                        }
                    })?;
                    let record = SampleRecord {
                        campaign: self.campaign.fingerprint(),
                        index: point.index,
                        payload,
                    };
                    write_atomically(
                        &self.sample_path(point.index),
                        serde::json::to_string(&record).as_bytes(),
                    )
                    .map_err(|error| CampaignError::Queue {
                        index: point.index,
                        error,
                    })?;
                }
            }
        }
        self.report()
    }

    /// Expires stale leases and re-verifies done shards on every session
    /// point, then [`run`](Self::run)s whatever remains — the one call a
    /// fleet needs after losing workers.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run), plus recovery errors.
    pub fn resume(
        &self,
        options: &CampaignRunOptions,
        sampler: &dyn Sampler,
    ) -> Result<CampaignReport, CampaignError> {
        if matches!(self.campaign.workload, CampaignWorkload::Session { .. }) {
            for point in &self.points {
                self.point_queue(point.index)?
                    .recover()
                    .map_err(|error| CampaignError::Queue {
                        index: point.index,
                        error,
                    })?;
            }
        }
        self.run(options, sampler)
    }

    /// Folds the finished campaign into its report without executing
    /// anything.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Incomplete`] when points are still missing results,
    /// queue/merge errors, or corrupt sample records.
    pub fn report(&self) -> Result<CampaignReport, CampaignError> {
        let mut payloads = Vec::with_capacity(self.points.len());
        let mut done = 0usize;
        for point in &self.points {
            match &self.campaign.workload {
                CampaignWorkload::Session { .. } => {
                    let queue = self.point_queue(point.index)?;
                    let merged = queue.merge().map_err(|error| CampaignError::Queue {
                        index: point.index,
                        error,
                    })?;
                    let summary = merged
                        .into_summary()
                        .expect("campaign queues always carry summary payloads");
                    payloads.push(PointPayload::Summary(summary));
                    done += 1;
                }
                CampaignWorkload::Sampled { .. } => {
                    if !self.sample_path(point.index).exists() {
                        return Err(CampaignError::Incomplete {
                            done,
                            total: self.points.len(),
                        });
                    }
                    let record = self.read_sample(point.index)?;
                    payloads.push(PointPayload::Sampled(record.payload));
                    done += 1;
                }
            }
        }
        Ok(build_report(&self.campaign, &self.points, payloads))
    }

    /// Claim/execute/submit until session point `index` is drained.
    fn drain_point(
        &self,
        index: usize,
        engine: &SessionEngine,
        options: &CampaignRunOptions,
    ) -> Result<(), CampaignError> {
        use super::queue::ClaimOutcome;
        let queue = self.point_queue(index)?;
        let queue_err = |error| CampaignError::Queue { index, error };
        loop {
            match queue
                .claim(&options.worker, options.lease_ms)
                .map_err(queue_err)?
            {
                ClaimOutcome::Claimed(plan) => {
                    if options.throttle_ms > 0 {
                        thread::sleep(Duration::from_millis(options.throttle_ms));
                    }
                    let result = engine
                        .execute_shard(&plan, ShardOutput::Summary)
                        .map_err(|error| CampaignError::Protocol { index, error })?;
                    queue.submit(&result).map_err(queue_err)?;
                }
                ClaimOutcome::Wait { .. } => {
                    thread::sleep(Duration::from_millis(options.poll_ms.max(1)));
                }
                ClaimOutcome::Drained => return Ok(()),
            }
        }
    }

    /// Reads and validates one sampled point's record.
    fn read_sample(&self, index: usize) -> Result<SampleRecord, CampaignError> {
        let path = self.sample_path(index);
        let text = fs::read_to_string(&path).map_err(|e| CampaignError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        let record: SampleRecord =
            serde::json::from_str(&text).map_err(|e| CampaignError::Corrupt {
                path: path.clone(),
                reason: e.to_string(),
            })?;
        if record.campaign != self.campaign.fingerprint() || record.index != index {
            return Err(CampaignError::Corrupt {
                path,
                reason: format!(
                    "record is for campaign {:016x} point {}, expected {:016x} point {}",
                    record.campaign,
                    record.index,
                    self.campaign.fingerprint(),
                    index
                ),
            });
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::IdentityPair;
    use rand::SeedableRng;

    fn base_scenario(seed: u64) -> Scenario {
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(24)
            .build()
            .expect("config is valid");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Scenario::new(config, IdentityPair::generate(2, &mut rng))
    }

    fn session_campaign(axes: Vec<Axis>) -> Campaign {
        Campaign {
            label: "test".into(),
            master_seed: 41,
            trials: 2,
            workload: CampaignWorkload::Session {
                base: base_scenario(5),
            },
            space: CampaignSpace::Grid(axes),
        }
    }

    #[test]
    fn grid_expansion_is_last_axis_fastest() {
        let campaign = session_campaign(vec![
            Axis::Eta(vec![0, 10]),
            Axis::Backend(BackendKind::ALL.to_vec()),
        ]);
        let points = campaign.expand().expect("expands");
        assert_eq!(points.len(), 2 * BackendKind::ALL.len());
        let coords: Vec<(usize, BackendKind)> = points
            .iter()
            .map(|p| match p.coords.as_slice() {
                [AxisValue::Eta(eta), AxisValue::Backend(backend)] => (*eta, *backend),
                other => panic!("unexpected coords {other:?}"),
            })
            .collect();
        let expected: Vec<(usize, BackendKind)> = [0usize, 10]
            .into_iter()
            .flat_map(|eta| {
                BackendKind::ALL
                    .into_iter()
                    .map(move |backend| (eta, backend))
            })
            .collect();
        assert_eq!(coords, expected);
        // Session points carry concrete scenarios with the coords applied.
        let last = points.last().unwrap();
        assert_eq!(
            last.scenario.as_ref().unwrap().backend,
            *BackendKind::ALL.last().unwrap()
        );
        assert_eq!(
            last.scenario.as_ref().unwrap().config.channel().length(),
            10
        );
    }

    #[test]
    fn point_seeds_follow_the_shared_derivation() {
        let campaign = session_campaign(vec![Axis::Eta(vec![0, 10, 20])]);
        let points = campaign.expand().expect("expands");
        for point in &points {
            assert_eq!(
                point.seed,
                derive_point_seed(campaign.master_seed, point.index as u64)
            );
        }
    }

    #[test]
    fn trials_axis_overrides_the_default_budget() {
        let campaign = session_campaign(vec![Axis::Trials(vec![1, 3])]);
        let points = campaign.expand().expect("expands");
        assert_eq!(points[0].trials, 1);
        assert_eq!(points[1].trials, 3);
    }

    #[test]
    fn strength_axis_requires_entangle_measure() {
        let mut campaign = session_campaign(vec![Axis::Strength(vec![0.5])]);
        assert!(matches!(
            campaign.expand(),
            Err(CampaignError::InvalidPoint { index: 0, .. })
        ));
        if let CampaignWorkload::Session { base } = &mut campaign.workload {
            base.adversary = Adversary::EntangleMeasure { strength: 0.0 };
        }
        let points = campaign.expand().expect("expands");
        assert_eq!(
            points[0].scenario.as_ref().unwrap().adversary,
            Adversary::EntangleMeasure { strength: 0.5 }
        );
    }

    #[test]
    fn message_axis_is_rejected_on_session_workloads() {
        let campaign = session_campaign(vec![Axis::Message(vec!["00".into()])]);
        assert!(matches!(
            campaign.expand(),
            Err(CampaignError::InvalidPoint { .. })
        ));
    }

    #[test]
    fn fingerprint_ignores_labels_but_not_physics() {
        let campaign = session_campaign(vec![Axis::Eta(vec![0, 10])]);
        let mut relabeled = campaign.clone();
        relabeled.label = "renamed".into();
        assert_eq!(campaign.fingerprint(), relabeled.fingerprint());
        let mut reseeded = campaign.clone();
        reseeded.master_seed ^= 1;
        assert_ne!(campaign.fingerprint(), reseeded.fingerprint());
        let mut reshaped = campaign.clone();
        reshaped.space = CampaignSpace::Grid(vec![Axis::Eta(vec![0, 20])]);
        assert_ne!(campaign.fingerprint(), reshaped.fingerprint());
    }

    #[test]
    fn error_displays_name_their_subject() {
        assert!(CampaignError::EmptyAxis { axis: "eta" }
            .to_string()
            .contains("eta"));
        assert!(CampaignError::DuplicatePoint {
            first: 1,
            second: 3
        }
        .to_string()
        .contains("3 duplicates point 1"));
        assert!(CampaignError::Incomplete { done: 2, total: 5 }
            .to_string()
            .contains("2/5"));
    }
}
