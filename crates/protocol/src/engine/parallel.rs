//! Deterministic multi-threaded trial execution.
//!
//! Because every trial of a [`Scenario`](super::Scenario) draws from an RNG
//! stream that is a pure function of `(master seed, scenario fingerprint,
//! trial index)`, trials are embarrassingly parallel: any assignment of trials
//! to threads produces the same per-trial results. This module supplies the
//! scheduler that exploits that property without changing a single bit of
//! output:
//!
//! - [`Parallelism`] selects how many worker threads a
//!   [`SessionEngine`](super::SessionEngine) uses ([`Parallelism::Serial`],
//!   [`Parallelism::Threads`], [`Parallelism::Auto`]).
//! - [`scatter`] / [`scatter_visit`] run an indexed task set across workers.
//!   Tasks are claimed in chunks from an atomic cursor (no work stealing, no
//!   dependencies beyond `std`), and finished chunks are re-delivered to the
//!   caller **in strict task-index order**, so folds over the results are
//!   byte-identical to a serial loop — including the floating-point
//!   accumulation order inside
//!   [`TrialSummaryBuilder`](super::TrialSummaryBuilder).
//! - [`ExecutorStats`] reports how the work was actually spread: per-worker
//!   task counts and the wall time of the whole run.
//!
//! # Thread-safety contract
//!
//! The scheduler shares the engine and scenario *by reference* across workers
//! and builds all per-trial state (RNG, channel tap) inside the worker that
//! runs the trial. That makes the bounds audit short:
//!
//! - [`Backend`](super::Backend) is `Send + Sync` by declaration, so the
//!   engine's `Arc<dyn Backend>` crosses threads freely.
//! - [`Adversary::custom`](super::Adversary::custom) factories are
//!   `Fn() -> Box<dyn ChannelTap> + Send + Sync`, so scenarios stay `Sync`;
//!   the produced tap never leaves the worker that called the factory, so
//!   `ChannelTap` itself needs no `Send` bound.
//!
//! Both facts are locked in by compile-time assertions in this module's tests.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::ControlFlow;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How many trial-ahead chunks each worker's share of the task set is split
/// into. Larger values smooth out load imbalance (sessions that abort early
/// are much cheaper than delivered ones) at the cost of more scheduling
/// round-trips.
const CHUNKS_PER_WORKER: usize = 4;

// -------------------------------------------------------------- parallelism --

/// The execution policy of a [`SessionEngine`](super::SessionEngine): how many
/// worker threads fan trials out.
///
/// Every mode produces bit-for-bit identical results — the choice only affects
/// wall time. The textual form accepted by [`FromStr`] (and therefore by the
/// [`UA_DI_QSDC_PARALLELISM`](Parallelism::ENV_VAR) environment variable) is
/// `serial`, `auto`, `threads:N`, or a bare thread count `N`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Run every trial on the calling thread (the default).
    #[default]
    Serial,
    /// Fan trials out across exactly `n` worker threads. `0` and `1` degrade
    /// to [`Parallelism::Serial`].
    Threads(usize),
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// The environment variable [`Parallelism::from_env`] reads.
    pub const ENV_VAR: &'static str = crate::env_keys::PARALLELISM;

    /// The number of worker threads this policy resolves to on the current
    /// machine (always at least 1).
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// Reads the policy from the [`UA_DI_QSDC_PARALLELISM`](Self::ENV_VAR)
    /// environment variable; `None` when it is unset.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to something unparsable — a
    /// misconfigured run must fail loudly, not silently fall back to serial.
    pub fn from_env() -> Option<Parallelism> {
        // detlint: allow(wall-clock): the designated policy read site — bins call this once at startup
        let raw = std::env::var(Self::ENV_VAR).ok()?;
        match raw.parse() {
            Ok(parallelism) => Some(parallelism),
            Err(err) => panic!("invalid {}: {err}", Self::ENV_VAR),
        }
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Serial => f.write_str("serial"),
            Parallelism::Threads(n) => write!(f, "threads:{n}"),
            Parallelism::Auto => f.write_str("auto"),
        }
    }
}

/// Error returned when parsing a [`Parallelism`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseParallelismError(String);

impl fmt::Display for ParseParallelismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` is not a parallelism policy (expected `serial`, `auto`, `threads:N` or `N`)",
            self.0
        )
    }
}

impl std::error::Error for ParseParallelismError {}

impl FromStr for Parallelism {
    type Err = ParseParallelismError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.trim().to_ascii_lowercase();
        match normalized.as_str() {
            "serial" => return Ok(Parallelism::Serial),
            "auto" => return Ok(Parallelism::Auto),
            _ => {}
        }
        let count = normalized
            .strip_prefix("threads:")
            .unwrap_or(&normalized)
            .parse::<usize>()
            .map_err(|_| ParseParallelismError(s.to_string()))?;
        Ok(Parallelism::Threads(count))
    }
}

// ------------------------------------------------------------------- stats --

/// How one parallel execution actually unfolded: worker utilisation and wall
/// time. Returned by the `*_with_stats` variants on
/// [`SessionEngine`](super::SessionEngine).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorStats {
    /// Worker threads used (1 for a serial run).
    pub workers: usize,
    /// Total tasks (trials) requested. After a cancellation (see
    /// [`scatter_visit`]) fewer may actually have been delivered;
    /// [`tasks_per_worker`](Self::tasks_per_worker) counts those.
    pub tasks: usize,
    /// Tasks computed by each worker (indexed by worker id) and delivered to
    /// the caller.
    pub tasks_per_worker: Vec<usize>,
    /// Wall-clock duration of the whole execution.
    pub wall_time: Duration,
}

impl ExecutorStats {
    /// Tasks completed per wall-clock second (0.0 for an instantaneous run).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.tasks as f64 / secs
        } else {
            0.0
        }
    }
}

impl fmt::Display for ExecutorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks over {} worker(s) in {:?} (per-worker {:?})",
            self.tasks, self.workers, self.wall_time, self.tasks_per_worker
        )
    }
}

// --------------------------------------------------------------- scheduler --

/// One batch of finished tasks travelling from a worker back to the caller.
struct ChunkResult<T> {
    chunk: usize,
    worker: usize,
    results: Vec<T>,
}

/// Sets the shared cancellation flag if the owning worker unwinds (a panicking
/// task), so sibling workers stop claiming chunks instead of computing the
/// rest of the task set before the panic re-raises at scope join.
struct CancelOnPanic<'a> {
    cancelled: &'a AtomicBool,
    armed: bool,
}

impl CancelOnPanic<'_> {
    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CancelOnPanic<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cancelled.store(true, Ordering::Relaxed);
        }
    }
}

/// Runs `task(0..tasks)` under the given policy and collects the results in
/// task-index order.
///
/// The task function must be a pure function of its index (up to interior
/// caches) — that is what makes the fan-out invisible in the results.
pub fn scatter<T, F>(parallelism: Parallelism, tasks: usize, task: F) -> (Vec<T>, ExecutorStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut results = Vec::with_capacity(tasks);
    let stats = scatter_visit(parallelism, tasks, task, |_, value| {
        results.push(value);
        ControlFlow::Continue(())
    });
    (results, stats)
}

/// Runs `task(0..tasks)` under the given policy, streaming every result to
/// `visit` **in strict task-index order** on the calling thread.
///
/// This is the deterministic-fold primitive: tasks complete out of order on
/// the workers, but `visit(i, _)` is always called with `i` ascending from 0,
/// so order-sensitive folds (running means, first-error selection) behave
/// exactly as in a serial loop. Out-of-order chunks are buffered until their
/// predecessors arrive; with the balanced chunk costs typical of trial sweeps
/// that bounds memory by the scheduling skew, though a pathologically slow
/// early chunk can in the worst case buffer every later result (there is no
/// backpressure on the result channel).
///
/// Returning [`ControlFlow::Break`] from `visit` cancels the remaining work —
/// immediately in the serial path, best-effort in the threaded path (workers
/// finish their in-flight chunk, claim no new ones, and nothing further is
/// delivered). After a cancellation, [`ExecutorStats::tasks_per_worker`]
/// counts only the work that was delivered.
pub fn scatter_visit<T, F, V>(
    parallelism: Parallelism,
    tasks: usize,
    task: F,
    mut visit: V,
) -> ExecutorStats
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    V: FnMut(usize, T) -> ControlFlow<()>,
{
    // detlint: allow(wall-clock): ExecutorStats wall-time telemetry; results never read it
    let started = Instant::now();
    let workers = parallelism.worker_count().min(tasks.max(1));
    if workers <= 1 {
        let mut completed = 0usize;
        for index in 0..tasks {
            let flow = visit(index, task(index));
            completed += 1;
            if flow.is_break() {
                break;
            }
        }
        return ExecutorStats {
            workers: 1,
            tasks,
            tasks_per_worker: vec![completed],
            wall_time: started.elapsed(),
        };
    }

    let chunk_len = tasks.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
    let chunk_count = tasks.div_ceil(chunk_len);
    let cursor = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let mut tasks_per_worker = vec![0usize; workers];
    let (sender, receiver) = mpsc::channel::<ChunkResult<T>>();

    std::thread::scope(|scope| {
        for worker in 0..workers {
            let sender = sender.clone();
            let cursor = &cursor;
            let cancelled = &cancelled;
            let task = &task;
            scope.spawn(move || {
                let guard = CancelOnPanic {
                    cancelled,
                    armed: true,
                };
                loop {
                    if cancelled.load(Ordering::Relaxed) {
                        break;
                    }
                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk >= chunk_count {
                        break;
                    }
                    let start = chunk * chunk_len;
                    let end = (start + chunk_len).min(tasks);
                    let results: Vec<T> = (start..end).map(task).collect();
                    if sender
                        .send(ChunkResult {
                            chunk,
                            worker,
                            results,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                guard.disarm();
            });
        }
        drop(sender);

        // Re-deliver chunks in index order; park early arrivals until their
        // predecessors land. Worker tallies are taken at delivery, so after a
        // cancellation the stats reflect what the caller actually saw.
        let mut parked: BTreeMap<usize, (usize, Vec<T>)> = BTreeMap::new();
        let mut next_chunk = 0usize;
        let mut received = 0usize;
        'deliver: while received < chunk_count {
            // A closed channel means a worker panicked; leaving the scope
            // re-raises that panic on this thread.
            let Ok(message) = receiver.recv() else {
                break;
            };
            received += 1;
            parked.insert(message.chunk, (message.worker, message.results));
            while let Some((worker, results)) = parked.remove(&next_chunk) {
                let base = next_chunk * chunk_len;
                for (offset, value) in results.into_iter().enumerate() {
                    tasks_per_worker[worker] += 1;
                    if visit(base + offset, value).is_break() {
                        cancelled.store(true, Ordering::Relaxed);
                        break 'deliver;
                    }
                }
                next_chunk += 1;
            }
        }
    });

    ExecutorStats {
        workers,
        tasks,
        tasks_per_worker,
        wall_time: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Scenario, SessionEngine};

    /// The whole point of the scheduler: engines and scenarios cross thread
    /// boundaries by reference.
    #[test]
    fn engine_and_scenario_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionEngine>();
        assert_send_sync::<Scenario>();
        assert_send_sync::<Parallelism>();
        assert_send_sync::<ExecutorStats>();
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert_eq!(Parallelism::Threads(6).worker_count(), 6);
        assert!(Parallelism::Auto.worker_count() >= 1);
    }

    #[test]
    fn parallelism_parses_and_displays() {
        for (text, expected) in [
            ("serial", Parallelism::Serial),
            ("Serial", Parallelism::Serial),
            ("auto", Parallelism::Auto),
            ("threads:2", Parallelism::Threads(2)),
            (" THREADS:8 ", Parallelism::Threads(8)),
            ("4", Parallelism::Threads(4)),
        ] {
            assert_eq!(text.parse::<Parallelism>().unwrap(), expected, "{text}");
        }
        for text in ["", "fast", "threads:", "threads:x", "-1"] {
            let err = text.parse::<Parallelism>().unwrap_err();
            assert!(err.to_string().contains("not a parallelism policy"));
        }
        assert_eq!(Parallelism::Serial.to_string(), "serial");
        assert_eq!(Parallelism::Threads(3).to_string(), "threads:3");
        assert_eq!(Parallelism::Auto.to_string(), "auto");
        assert_eq!(Parallelism::default(), Parallelism::Serial);
    }

    #[test]
    fn scatter_preserves_task_order_under_every_policy() {
        let expected: Vec<usize> = (0..137).map(|i| i * i).collect();
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            let (results, stats) = scatter(parallelism, 137, |i| i * i);
            assert_eq!(results, expected, "{parallelism}");
            assert_eq!(stats.tasks, 137);
            assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 137);
            assert_eq!(stats.tasks_per_worker.len(), stats.workers);
        }
    }

    #[test]
    fn scatter_visit_delivers_in_strict_index_order() {
        for parallelism in [Parallelism::Threads(4), Parallelism::Serial] {
            let mut seen = Vec::new();
            let stats = scatter_visit(
                parallelism,
                100,
                |i| i,
                |index, value| {
                    assert_eq!(index, value);
                    seen.push(index);
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
            assert_eq!(stats.tasks, 100);
        }
    }

    #[test]
    fn breaking_from_visit_cancels_the_remaining_work() {
        // Serial: exact fail-fast — nothing past the breaking index runs.
        let executed = AtomicUsize::new(0);
        let mut visited = 0usize;
        scatter_visit(
            Parallelism::Serial,
            1_000,
            |i| {
                executed.fetch_add(1, Ordering::Relaxed);
                i
            },
            |index, _| {
                visited += 1;
                if index == 2 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(visited, 3);
        assert_eq!(executed.load(Ordering::Relaxed), 3);

        // Threaded: best-effort — workers may still compute in-flight chunks,
        // but nothing past the break is *delivered*, and the stats count only
        // delivered work.
        let mut visited = 0usize;
        let stats = scatter_visit(
            Parallelism::Threads(2),
            100_000,
            |i| i,
            |index, _| {
                visited += 1;
                if index == 0 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(visited, 1, "nothing is delivered after a break");
        assert_eq!(
            stats.tasks_per_worker.iter().sum::<usize>(),
            1,
            "stats count delivered work only: {stats}"
        );
        assert_eq!(stats.tasks, 100_000, "`tasks` reports the requested count");
    }

    #[test]
    fn empty_task_sets_are_fine() {
        for parallelism in [Parallelism::Serial, Parallelism::Threads(8)] {
            let (results, stats) = scatter(parallelism, 0, |i| i);
            assert!(results.is_empty());
            assert_eq!(stats.tasks, 0);
            assert_eq!(stats.workers, 1, "no tasks need no fan-out");
            assert_eq!(stats.throughput(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panics_propagate_and_cancel_siblings() {
        // The panicking worker's CancelOnPanic guard flips the shared flag so
        // sibling workers stop claiming chunks; the panic itself re-raises on
        // the calling thread when the scope joins (std::thread::scope panics
        // with its own message for unjoined panicked threads).
        let _ = scatter(Parallelism::Threads(2), 64, |i| {
            if i == 7 {
                panic!("task 7 exploded");
            }
            i
        });
    }

    #[test]
    fn more_workers_than_tasks_degrades_gracefully() {
        let (results, stats) = scatter(Parallelism::Threads(16), 3, |i| i + 1);
        assert_eq!(results, vec![1, 2, 3]);
        assert!(stats.workers <= 3);
        assert!(stats.to_string().contains("worker"));
    }
}
