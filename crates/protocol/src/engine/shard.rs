//! Plan / execute / merge: the sharded execution pipeline.
//!
//! Every engine run decomposes into three explicit stages, and the per-trial
//! RNG stream contract (`master seed`, scenario fingerprint, trial index)
//! makes each stage location-independent:
//!
//! 1. **Plan** — [`SessionEngine::plan`] captures *what* to run as a
//!    [`ShardPlan`]: the scenario, the master seed, the scenario fingerprint
//!    and a trial range. Plans are plain serde data; [`ShardPlan::split_into`]
//!    and [`ShardPlan::split_max`] carve a run into contiguous sub-plans that
//!    can be shipped to any number of processes or machines.
//! 2. **Execute** — [`SessionEngine::execute_shard`] turns one plan into a
//!    [`ShardResult`]: either the ordered [`SessionOutcome`]s of the range or
//!    a mergeable [`TrialSummaryBuilder`] partial, as selected by
//!    [`ShardOutput`]. Execution is a pure function of the plan (plus the
//!    engine's backend): the engine's own master seed is ignored in favour of
//!    the plan's, so a shard reproduces bit-for-bit wherever it runs.
//! 3. **Merge** — [`ShardMerger`] folds results back together in trial order,
//!    detecting gaps, overlaps, backend/fingerprint/seed mismatches, mixed
//!    payloads and incomplete coverage. Because [`TrialSummaryBuilder::merge`] is
//!    order-respecting and exact, the merged [`TrialSummary`] is bit-for-bit
//!    the summary of the unsharded run; the same holds trivially for merged
//!    outcome lists.
//!
//! Single-machine execution is the degenerate case: `run_outcomes` /
//! `run_trials` / `run_batch` on [`SessionEngine`] are built on these stages
//! with whole-range plans. The `shardctl` binary (in the `bench` crate) ships
//! the same three stages as JSON between processes:
//!
//! ```text
//! shardctl plan --scenario scenario.json --trials 1000 --seed 42 --shards 4 \
//!   | shardctl run | shardctl merge
//! ```
//!
//! ```rust
//! use protocol::engine::{Scenario, SessionEngine, ShardOutput, ShardMerger};
//! use protocol::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let identities = IdentityPair::generate(4, &mut rng);
//! let config = SessionConfig::builder()
//!     .message_bits(8)
//!     .check_bits(2)
//!     .di_check_pairs(24)
//!     .build()?;
//! let scenario = Scenario::new(config, identities);
//!
//! let engine = SessionEngine::new(42);
//! let whole = engine.run_trials(&scenario, 6)?;
//!
//! // The same six trials as three shards, e.g. on three machines…
//! let mut merger = ShardMerger::new();
//! for plan in engine.plan(&scenario, 6).split_into(3) {
//!     // …each executed by an *independent* engine (seed comes from the plan).
//!     let result = SessionEngine::new(0).execute_shard(&plan, ShardOutput::Summary)?;
//!     merger.push(result)?;
//! }
//! assert_eq!(merger.finish()?.into_summary().unwrap(), whole);
//! # Ok(())
//! # }
//! ```

use super::parallel::{self, ExecutorStats};
use super::{BackendKind, Scenario, SessionEngine, TrialSummary, TrialSummaryBuilder};
use crate::error::ProtocolError;
use crate::session::SessionOutcome;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::ControlFlow;

// --------------------------------------------------------------------- plan --

/// A serde round-trippable description of one shard of a run: *scenario +
/// trial range + master seed + fingerprint*. The unit of work shipped to
/// workers.
///
/// A fresh plan from [`SessionEngine::plan`] covers the whole run
/// (`trial_start == 0`, `trial_count == total_trials`); the splitters carve it
/// into contiguous sub-plans. The stored [`fingerprint`](Self::fingerprint)
/// pins the RNG streams the executor will derive; [`validate`](Self::validate)
/// rejects a plan whose scenario no longer hashes to it (e.g. a hand-edited
/// JSON file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// The scenario every trial of this shard runs.
    pub scenario: Scenario,
    /// The master seed of the *run* (not the shard): trial streams derive
    /// from it, so every shard of a run carries the same seed.
    pub master_seed: u64,
    /// The scenario fingerprint, precomputed at planning time.
    pub fingerprint: u64,
    /// First trial index of this shard's range.
    pub trial_start: u64,
    /// Number of trials in this shard (may be 0 for a degenerate shard).
    pub trial_count: usize,
    /// Total trials of the whole run this shard was split from; the merger
    /// uses it to detect incomplete coverage.
    pub total_trials: usize,
    /// Provenance stamp over the plan's *execution header* — fingerprint,
    /// master seed and trial range (see [`provenance_stamp`](Self::provenance_stamp)).
    /// [`validate`](Self::validate) rejects a plan whose range fields were
    /// edited after planning; the splitters re-stamp the sub-plans they
    /// legitimately derive.
    pub plan_stamp: u64,
}

impl ShardPlan {
    /// The provenance stamp [`validate`](Self::validate) expects for this
    /// plan's current header fields: a stable hash over (fingerprint, master
    /// seed, trial range, total trials).
    ///
    /// The scenario fingerprint alone cannot witness the trial range: a plan
    /// whose range was subranged (or hand-edited) after planning — e.g. a
    /// stale `total_trials` that would fool the merger's completeness check —
    /// used to pass [`validate`](Self::validate). Every legitimate
    /// constructor ([`SessionEngine::plan`], [`subrange`](Self::subrange) and
    /// the splitters built on it) stamps the plan; any later edit of a header
    /// field is detected as a stamp mismatch.
    pub fn provenance_stamp(&self) -> u64 {
        let mut bytes = Vec::with_capacity(53);
        bytes.extend_from_slice(b"shard-plan-v1");
        for field in [
            self.fingerprint,
            self.master_seed,
            self.trial_start,
            self.trial_count as u64,
            self.total_trials as u64,
        ] {
            bytes.extend_from_slice(&field.to_le_bytes());
        }
        super::fnv1a64(&bytes)
    }
    /// One-past-the-last trial index of this shard's range.
    pub fn trial_end(&self) -> u64 {
        self.trial_start + self.trial_count as u64
    }

    /// `true` when the shard covers no trials.
    pub fn is_empty(&self) -> bool {
        self.trial_count == 0
    }

    /// The simulation substrate this shard's trials run on (declared by the
    /// plan's scenario and covered by the fingerprint, so a worker process
    /// reconstructs the right backend from the plan alone).
    pub fn backend(&self) -> BackendKind {
        self.scenario.backend
    }

    /// Checks internal consistency: the stored fingerprint must match the
    /// scenario (a mismatch means the plan was edited after planning and
    /// would silently derive different RNG streams), and the trial range must
    /// lie within the run.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] describing the inconsistency.
    pub fn validate(&self) -> Result<(), ProtocolError> {
        let actual = self.scenario.fingerprint();
        if actual != self.fingerprint {
            return Err(ProtocolError::InvalidConfig(format!(
                "shard plan fingerprint {:#018x} does not match its scenario (which hashes to \
                 {actual:#018x}); the plan was modified after planning",
                self.fingerprint
            )));
        }
        let stamp = self.provenance_stamp();
        if stamp != self.plan_stamp {
            return Err(ProtocolError::InvalidConfig(format!(
                "shard plan stamp {:#018x} does not match its header (which stamps to \
                 {stamp:#018x}); the seed or trial range was modified after planning",
                self.plan_stamp
            )));
        }
        if self.trial_end() > self.total_trials as u64 {
            return Err(ProtocolError::InvalidConfig(format!(
                "shard trial range {}..{} exceeds the run's {} total trials",
                self.trial_start,
                self.trial_end(),
                self.total_trials
            )));
        }
        Ok(())
    }

    /// The sub-plan covering `count` trials starting `offset` trials into
    /// this shard's range.
    ///
    /// # Panics
    ///
    /// Panics when `offset + count` exceeds this shard's trial count.
    pub fn subrange(&self, offset: usize, count: usize) -> ShardPlan {
        assert!(
            offset + count <= self.trial_count,
            "subrange {offset}..{} exceeds the shard's {} trials",
            offset + count,
            self.trial_count
        );
        let mut shard = ShardPlan {
            scenario: self.scenario.clone(),
            master_seed: self.master_seed,
            fingerprint: self.fingerprint,
            trial_start: self.trial_start + offset as u64,
            trial_count: count,
            total_trials: self.total_trials,
            plan_stamp: 0,
        };
        // The sub-plan's range differs from its parent's, so it carries its
        // own provenance stamp.
        shard.plan_stamp = shard.provenance_stamp();
        shard
    }

    /// Splits this plan into exactly `shards` contiguous sub-plans of
    /// near-equal size (the first `trial_count % shards` get one extra
    /// trial). When `shards > trial_count`, the surplus sub-plans are empty —
    /// harmless to execute and merge.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is 0.
    pub fn split_into(&self, shards: usize) -> Vec<ShardPlan> {
        assert!(shards > 0, "a run cannot be split into zero shards");
        let base = self.trial_count / shards;
        let extra = self.trial_count % shards;
        let mut offset = 0usize;
        (0..shards)
            .map(|index| {
                let count = base + usize::from(index < extra);
                let shard = self.subrange(offset, count);
                offset += count;
                shard
            })
            .collect()
    }

    /// Splits this plan into contiguous sub-plans of at most `shard_trials`
    /// trials each. An empty plan yields itself, so pipelines stay
    /// well-formed for zero-trial runs.
    ///
    /// # Panics
    ///
    /// Panics when `shard_trials` is 0.
    pub fn split_max(&self, shard_trials: usize) -> Vec<ShardPlan> {
        assert!(shard_trials > 0, "shards must hold at least one trial");
        if self.trial_count == 0 {
            return vec![self.clone()];
        }
        (0..self.trial_count.div_ceil(shard_trials))
            .map(|index| {
                let offset = index * shard_trials;
                self.subrange(offset, shard_trials.min(self.trial_count - offset))
            })
            .collect()
    }
}

impl fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard trials {}..{} of {} for {} (seed {}, fingerprint {:#018x})",
            self.trial_start,
            self.trial_end(),
            self.total_trials,
            self.scenario,
            self.master_seed,
            self.fingerprint
        )
    }
}

// ------------------------------------------------------------------- result --

/// What the executor should produce for a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutput {
    /// Every [`SessionOutcome`] of the range, in trial order (the sharded
    /// sibling of [`SessionEngine::run_outcomes`]).
    Outcomes,
    /// A mergeable [`TrialSummaryBuilder`] partial (the sharded sibling of
    /// [`SessionEngine::run_trials`]). Far smaller on the wire.
    Summary,
}

impl ShardOutput {
    /// The payload kind as a short label (also the serialized form).
    pub fn as_str(&self) -> &'static str {
        match self {
            ShardOutput::Outcomes => "outcomes",
            ShardOutput::Summary => "summary",
        }
    }
}

impl fmt::Display for ShardOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for ShardOutput {
    type Err = String;
    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "outcomes" => Ok(ShardOutput::Outcomes),
            "summary" => Ok(ShardOutput::Summary),
            other => Err(format!(
                "unknown shard output kind `{other}` (expected `summary` or `outcomes`)"
            )),
        }
    }
}

impl Serialize for ShardOutput {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for ShardOutput {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        value.as_str()?.parse().map_err(serde::Error::new)
    }
}

/// The payload of a [`ShardResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardPayload {
    /// Ordered per-trial outcomes.
    Outcomes(Vec<SessionOutcome>),
    /// A summary partial, mergeable in trial order.
    Summary(TrialSummaryBuilder),
}

impl ShardPayload {
    /// The payload kind as a short label.
    pub fn kind(&self) -> &'static str {
        match self {
            ShardPayload::Outcomes(_) => "outcomes",
            ShardPayload::Summary(_) => "summary",
        }
    }

    /// Number of trials recorded in this payload.
    pub fn trials(&self) -> usize {
        match self {
            ShardPayload::Outcomes(outcomes) => outcomes.len(),
            ShardPayload::Summary(builder) => builder.trials_recorded(),
        }
    }
}

/// The executed form of one [`ShardPlan`]: the plan's header (seed,
/// fingerprint, trial range) plus the produced payload. Serde
/// round-trippable, so workers ship it back as JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    /// The run's master seed, copied from the plan.
    pub master_seed: u64,
    /// The scenario fingerprint, copied from the plan.
    pub fingerprint: u64,
    /// The substrate the shard was executed on, copied from the plan's
    /// scenario. The merger rejects results whose backends disagree, so
    /// results computed on different substrates can never be folded into one
    /// "byte-identical" run.
    pub backend: BackendKind,
    /// First trial index of the executed range.
    pub trial_start: u64,
    /// Number of trials executed.
    pub trial_count: usize,
    /// Total trials of the run this shard belongs to.
    pub total_trials: usize,
    /// The produced outcomes or summary partial.
    pub payload: ShardPayload,
}

impl ShardResult {
    /// One-past-the-last trial index of the executed range.
    pub fn trial_end(&self) -> u64 {
        self.trial_start + self.trial_count as u64
    }
}

// ----------------------------------------------------------------- executor --

impl SessionEngine {
    /// Stage 1 of the pipeline: the whole-run [`ShardPlan`] for `trials`
    /// trials of `scenario` under this engine's master seed. Split it with
    /// [`ShardPlan::split_into`] / [`ShardPlan::split_max`] to distribute the
    /// run.
    pub fn plan(&self, scenario: &Scenario, trials: usize) -> ShardPlan {
        let mut plan = ShardPlan {
            fingerprint: scenario.fingerprint(),
            scenario: scenario.clone(),
            master_seed: self.master_seed(),
            trial_start: 0,
            trial_count: trials,
            total_trials: trials,
            plan_stamp: 0,
        };
        plan.plan_stamp = plan.provenance_stamp();
        plan
    }

    /// Stage 2 of the pipeline: executes one shard and returns its result.
    ///
    /// Execution is a pure function of the *plan*: the plan's master seed
    /// governs every trial stream (the engine's own seed is deliberately
    /// ignored) and the plan's scenario declares the
    /// [`BackendKind`] to simulate on, so any engine on any machine
    /// reproduces the same `ShardResult` bit for bit. The engine contributes
    /// only the [`Parallelism`](super::Parallelism) policy the shard's trials
    /// fan out under — unless a fixed custom backend override was installed
    /// via [`SessionEngine::with_backend`], which takes precedence and must
    /// not be mixed with the shard pipeline (the result would still advertise
    /// the scenario's kind).
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] when the plan fails [`ShardPlan::validate`]
    /// or on the first configuration error a trial reports (fail-fast, in
    /// trial order).
    pub fn execute_shard(
        &self,
        plan: &ShardPlan,
        output: ShardOutput,
    ) -> Result<ShardResult, ProtocolError> {
        self.execute_shard_with_stats(plan, output)
            .map(|(result, _)| result)
    }

    /// [`execute_shard`](Self::execute_shard) plus the [`ExecutorStats`] of
    /// the fan-out.
    ///
    /// # Errors
    ///
    /// As for [`execute_shard`](Self::execute_shard).
    pub fn execute_shard_with_stats(
        &self,
        plan: &ShardPlan,
        output: ShardOutput,
    ) -> Result<(ShardResult, ExecutorStats), ProtocolError> {
        plan.validate()?;
        let (payload, stats) = self.execute_trials(
            &plan.scenario,
            plan.fingerprint,
            plan.master_seed,
            plan.trial_start,
            plan.trial_count,
            output,
        )?;
        Ok((
            ShardResult {
                master_seed: plan.master_seed,
                fingerprint: plan.fingerprint,
                backend: plan.backend(),
                trial_start: plan.trial_start,
                trial_count: plan.trial_count,
                total_trials: plan.total_trials,
                payload,
            },
            stats,
        ))
    }

    /// The executor stage proper: runs one contiguous trial range of a
    /// scenario with a precomputed fingerprint under an explicit master seed.
    ///
    /// Both entry points share it — `execute_shard` after validating a
    /// deserialized plan, and `run_outcomes` / `run_trials` directly for the
    /// in-process whole-run case (the scenario is borrowed and already
    /// fingerprinted there, so no plan needs to be built or re-validated).
    pub(super) fn execute_trials(
        &self,
        scenario: &Scenario,
        fingerprint: u64,
        master_seed: u64,
        trial_start: u64,
        trial_count: usize,
        output: ShardOutput,
    ) -> Result<(ShardPayload, ExecutorStats), ProtocolError> {
        // A shard is self-contained: execute under the *run's* master seed
        // (from the plan), not this engine's, so it reproduces identically on
        // any engine.
        let executor = SessionEngine {
            master_seed,
            backend: self.backend.clone(),
            parallelism: self.parallelism,
        };
        let mut payload = match output {
            ShardOutput::Outcomes => ShardPayload::Outcomes(Vec::with_capacity(trial_count)),
            ShardOutput::Summary => ShardPayload::Summary(TrialSummaryBuilder::new(
                scenario.label.clone(),
                scenario.adversary.name(),
            )),
        };
        let mut first_error: Option<ProtocolError> = None;
        // Compile the scenario's noise program once for the whole shard; the
        // compiled placements are immutable, so workers share them freely.
        let program = SessionEngine::compile_program(scenario);
        let stats = parallel::scatter_visit(
            self.parallelism,
            trial_count,
            |index| {
                executor.run_compiled(scenario, fingerprint, &program, trial_start + index as u64)
            },
            |_, outcome| match outcome {
                Ok(outcome) => {
                    match &mut payload {
                        ShardPayload::Outcomes(outcomes) => outcomes.push(outcome),
                        ShardPayload::Summary(builder) => builder.record(&outcome),
                    }
                    ControlFlow::Continue(())
                }
                Err(error) => {
                    // Fail fast: the first in-order error cancels the rest.
                    first_error.get_or_insert(error);
                    ControlFlow::Break(())
                }
            },
        );
        match first_error {
            Some(error) => Err(error),
            None => Ok((payload, stats)),
        }
    }
}

// ------------------------------------------------------------------- merger --

/// Why a merge was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeError {
    /// A shard was executed on a different simulation substrate than the
    /// run's other shards — results from different backends approximate the
    /// same physics differently and must never be folded into one run.
    BackendMismatch {
        /// Substrate established by the first shard.
        expected: BackendKind,
        /// The offending shard's substrate.
        found: BackendKind,
    },
    /// A shard's scenario fingerprint differs from the first shard's — the
    /// results belong to different runs.
    FingerprintMismatch {
        /// Fingerprint established by the first shard.
        expected: u64,
        /// The offending shard's fingerprint.
        found: u64,
    },
    /// A shard's master seed differs from the first shard's.
    SeedMismatch {
        /// Seed established by the first shard.
        expected: u64,
        /// The offending shard's seed.
        found: u64,
    },
    /// A shard reports a different run size than the first shard.
    TotalMismatch {
        /// Total trials established by the first shard.
        expected: usize,
        /// The offending shard's total.
        found: usize,
    },
    /// The next shard starts after the end of the merged range: trials in
    /// between are missing.
    Gap {
        /// Trial index the merger expected next.
        expected_start: u64,
        /// Where the offending shard actually starts.
        found_start: u64,
    },
    /// The next shard starts before the end of the merged range: trials would
    /// be double-counted.
    Overlap {
        /// Trial index the merger expected next.
        expected_start: u64,
        /// Where the offending shard actually starts.
        found_start: u64,
    },
    /// A shard's payload records a different number of trials than its
    /// header claims (a corrupt or truncated result).
    PayloadLength {
        /// Trials the header claims.
        expected: usize,
        /// Trials the payload actually holds.
        found: usize,
    },
    /// Outcome and summary payloads cannot be merged together.
    MixedPayloads,
    /// `finish` was called before any shard was pushed.
    Empty,
    /// `finish` was called before the merged range covered the whole run.
    Incomplete {
        /// Trials merged so far.
        merged: u64,
        /// Total trials the run requires.
        total: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::BackendMismatch { expected, found } => write!(
                f,
                "shard was executed on the {found} backend, but the run's shards were \
                 executed on {expected}"
            ),
            MergeError::FingerprintMismatch { expected, found } => write!(
                f,
                "shard fingerprint {found:#018x} does not match the run's {expected:#018x}"
            ),
            MergeError::SeedMismatch { expected, found } => {
                write!(
                    f,
                    "shard master seed {found} does not match the run's {expected}"
                )
            }
            MergeError::TotalMismatch { expected, found } => write!(
                f,
                "shard claims a run of {found} total trials, the merge expects {expected}"
            ),
            MergeError::Gap {
                expected_start,
                found_start,
            } => write!(
                f,
                "gap in trial coverage: expected a shard starting at trial {expected_start}, \
                 got one starting at {found_start}"
            ),
            MergeError::Overlap {
                expected_start,
                found_start,
            } => write!(
                f,
                "overlapping shards: trials up to {expected_start} are already merged, \
                 got a shard starting at {found_start}"
            ),
            MergeError::PayloadLength { expected, found } => write!(
                f,
                "shard payload holds {found} trials but its header claims {expected}"
            ),
            MergeError::MixedPayloads => {
                f.write_str("cannot merge outcome payloads with summary payloads")
            }
            MergeError::Empty => f.write_str("no shard results to merge"),
            MergeError::Incomplete { merged, total } => write!(
                f,
                "merged shards cover only {merged} of the run's {total} trials"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// The output of a completed merge.
#[derive(Debug, Clone, PartialEq)]
pub enum MergedRun {
    /// The ordered outcomes of the whole run — identical to
    /// [`SessionEngine::run_outcomes`] on the unsharded run.
    Outcomes(Vec<SessionOutcome>),
    /// The finished summary of the whole run — bit-for-bit identical to
    /// [`SessionEngine::run_trials`] on the unsharded run.
    Summary(TrialSummary),
}

impl MergedRun {
    /// The merged outcomes, when the shards carried outcome payloads.
    pub fn into_outcomes(self) -> Option<Vec<SessionOutcome>> {
        match self {
            MergedRun::Outcomes(outcomes) => Some(outcomes),
            MergedRun::Summary(_) => None,
        }
    }

    /// The merged summary, when the shards carried summary partials.
    pub fn into_summary(self) -> Option<TrialSummary> {
        match self {
            MergedRun::Summary(summary) => Some(summary),
            MergedRun::Outcomes(_) => None,
        }
    }
}

/// Stage 3 of the pipeline: folds [`ShardResult`]s back into one run, **in
/// trial order**.
///
/// [`push`](Self::push) requires results in ascending trial order and rejects
/// gaps, overlaps, backend/fingerprint/seed/total mismatches, corrupt
/// payloads and mixed payload kinds; [`finish`](Self::finish) additionally rejects
/// incomplete coverage. For results collected out of order, use
/// [`merge_shard_results`], which sorts first.
#[derive(Debug, Default)]
pub struct ShardMerger {
    expected: Option<RunHeader>,
    merged: Option<ShardPayload>,
    next_trial: u64,
}

#[derive(Debug)]
struct RunHeader {
    master_seed: u64,
    fingerprint: u64,
    backend: BackendKind,
    total_trials: usize,
}

impl ShardMerger {
    /// An empty merger; the first pushed shard establishes the run's
    /// identity (seed, fingerprint, total trials) and payload kind.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trials merged so far.
    pub fn merged_trials(&self) -> u64 {
        self.next_trial
    }

    /// Folds the next shard (by trial order) onto the merge.
    ///
    /// # Errors
    ///
    /// Any [`MergeError`] except [`MergeError::Empty`] /
    /// [`MergeError::Incomplete`] (those are `finish`-time checks).
    pub fn push(&mut self, result: ShardResult) -> Result<(), MergeError> {
        // Every check runs before any state mutates: a rejected shard must
        // leave the merger exactly as it was (in particular, a bad *first*
        // shard must not establish the run's identity).
        if let Some(header) = &self.expected {
            // Backend first: two backends imply two fingerprints as well, and
            // the substrate mismatch is the actionable diagnosis.
            if result.backend != header.backend {
                return Err(MergeError::BackendMismatch {
                    expected: header.backend,
                    found: result.backend,
                });
            }
            if result.fingerprint != header.fingerprint {
                return Err(MergeError::FingerprintMismatch {
                    expected: header.fingerprint,
                    found: result.fingerprint,
                });
            }
            if result.master_seed != header.master_seed {
                return Err(MergeError::SeedMismatch {
                    expected: header.master_seed,
                    found: result.master_seed,
                });
            }
            if result.total_trials != header.total_trials {
                return Err(MergeError::TotalMismatch {
                    expected: header.total_trials,
                    found: result.total_trials,
                });
            }
        }
        if result.payload.trials() != result.trial_count {
            return Err(MergeError::PayloadLength {
                expected: result.trial_count,
                found: result.payload.trials(),
            });
        }
        match result.trial_start.cmp(&self.next_trial) {
            std::cmp::Ordering::Greater => {
                return Err(MergeError::Gap {
                    expected_start: self.next_trial,
                    found_start: result.trial_start,
                });
            }
            std::cmp::Ordering::Less => {
                return Err(MergeError::Overlap {
                    expected_start: self.next_trial,
                    found_start: result.trial_start,
                });
            }
            std::cmp::Ordering::Equal => {}
        }
        if let Some(merged) = &self.merged {
            if merged.kind() != result.payload.kind() {
                return Err(MergeError::MixedPayloads);
            }
        }
        // All checks passed — commit.
        if self.expected.is_none() {
            self.expected = Some(RunHeader {
                master_seed: result.master_seed,
                fingerprint: result.fingerprint,
                backend: result.backend,
                total_trials: result.total_trials,
            });
        }
        let trial_end = result.trial_end();
        match (&mut self.merged, result.payload) {
            (merged @ None, payload) => *merged = Some(payload),
            (Some(ShardPayload::Outcomes(all)), ShardPayload::Outcomes(mut outcomes)) => {
                all.append(&mut outcomes);
            }
            (Some(ShardPayload::Summary(partial)), ShardPayload::Summary(other)) => {
                partial.merge(other);
            }
            _ => unreachable!("payload kinds were checked above"),
        }
        self.next_trial = trial_end;
        Ok(())
    }

    /// Completes the merge.
    ///
    /// # Errors
    ///
    /// [`MergeError::Empty`] when nothing was pushed,
    /// [`MergeError::Incomplete`] when the merged range does not cover the
    /// whole run.
    pub fn finish(self) -> Result<MergedRun, MergeError> {
        let header = self.expected.ok_or(MergeError::Empty)?;
        if self.next_trial != header.total_trials as u64 {
            return Err(MergeError::Incomplete {
                merged: self.next_trial,
                total: header.total_trials,
            });
        }
        Ok(
            match self.merged.expect("a header implies at least one payload") {
                ShardPayload::Outcomes(outcomes) => MergedRun::Outcomes(outcomes),
                ShardPayload::Summary(partial) => MergedRun::Summary(partial.finish()),
            },
        )
    }
}

/// Merges shard results collected in any order: sorts by trial range, then
/// folds through a [`ShardMerger`].
///
/// # Errors
///
/// Propagates any [`MergeError`] of the fold, including incomplete coverage.
pub fn merge_shard_results(
    results: impl IntoIterator<Item = ShardResult>,
) -> Result<MergedRun, MergeError> {
    let mut results: Vec<ShardResult> = results.into_iter().collect();
    // Empty shards share their start with the following shard; the count key
    // orders them first so the fold sees a seamless range.
    results.sort_by_key(|r| (r.trial_start, r.trial_count));
    let mut merger = ShardMerger::new();
    for result in results {
        merger.push(result)?;
    }
    merger.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SessionConfig;
    use crate::engine::Parallelism;
    use crate::identity::IdentityPair;
    use rand::SeedableRng;

    fn scenario(seed: u64) -> Scenario {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let identities = IdentityPair::generate(3, &mut rng);
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(24)
            .build()
            .unwrap();
        Scenario::new(config, identities)
    }

    #[test]
    fn whole_run_plan_covers_everything() {
        let engine = SessionEngine::new(9);
        let plan = engine.plan(&scenario(1), 10);
        assert_eq!(plan.trial_start, 0);
        assert_eq!(plan.trial_count, 10);
        assert_eq!(plan.total_trials, 10);
        assert_eq!(plan.trial_end(), 10);
        assert_eq!(plan.master_seed, 9);
        assert!(!plan.is_empty());
        assert!(plan.validate().is_ok());
        assert!(plan.to_string().contains("trials 0..10 of 10"));
    }

    #[test]
    fn split_into_partitions_the_range_contiguously() {
        let plan = SessionEngine::new(2).plan(&scenario(2), 11);
        let shards = plan.split_into(4);
        assert_eq!(shards.len(), 4);
        assert_eq!(
            shards.iter().map(|s| s.trial_count).collect::<Vec<_>>(),
            vec![3, 3, 3, 2]
        );
        let mut next = 0u64;
        for shard in &shards {
            assert_eq!(shard.trial_start, next);
            assert_eq!(shard.total_trials, 11);
            assert!(shard.validate().is_ok());
            next = shard.trial_end();
        }
        assert_eq!(next, 11);
        // More shards than trials: the surplus shards are empty but valid.
        let sparse = plan.split_into(20);
        assert_eq!(sparse.len(), 20);
        assert_eq!(sparse.iter().map(|s| s.trial_count).sum::<usize>(), 11);
        assert!(sparse[19].is_empty());
        assert!(sparse[19].validate().is_ok());
    }

    #[test]
    fn split_max_caps_every_shard() {
        let plan = SessionEngine::new(3).plan(&scenario(3), 10);
        let shards = plan.split_max(4);
        assert_eq!(
            shards.iter().map(|s| s.trial_count).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        let empty = SessionEngine::new(3).plan(&scenario(3), 0);
        let shards = empty.split_max(4);
        assert_eq!(shards.len(), 1);
        assert!(shards[0].is_empty());
    }

    #[test]
    fn tampered_plans_are_rejected() {
        let engine = SessionEngine::new(4);
        let mut plan = engine.plan(&scenario(4), 3);
        plan.fingerprint ^= 1;
        assert!(matches!(
            plan.validate(),
            Err(ProtocolError::InvalidConfig(_))
        ));
        assert!(matches!(
            engine.execute_shard(&plan, ShardOutput::Summary),
            Err(ProtocolError::InvalidConfig(_))
        ));
        let mut oversized = engine.plan(&scenario(4), 3);
        oversized.trial_count = 5;
        assert!(matches!(
            oversized.validate(),
            Err(ProtocolError::InvalidConfig(_))
        ));
    }

    #[test]
    fn edited_trial_ranges_are_rejected() {
        // Regression: the scenario fingerprint cannot witness the trial
        // range, so a plan whose range fields were edited after planning used
        // to pass `validate` as long as the range stayed within `total`.
        let engine = SessionEngine::new(21);
        let sub = engine.plan(&scenario(21), 10).subrange(0, 5);
        assert!(sub.validate().is_ok(), "legitimate sub-plans validate");

        // The motivating case: a stale `total` — shrink the run so the
        // merger would believe 5 merged trials complete a 5-trial run.
        let mut shrunk = sub.clone();
        shrunk.total_trials = 5;
        let err = shrunk.validate().unwrap_err();
        assert!(err.to_string().contains("stamp"), "{err}");

        // Any other header edit is equally detected…
        for edit in [
            |p: &mut ShardPlan| p.trial_start = 1,
            |p: &mut ShardPlan| p.trial_count = 4,
            |p: &mut ShardPlan| p.master_seed ^= 1,
        ] {
            let mut tampered = sub.clone();
            edit(&mut tampered);
            assert!(
                matches!(tampered.validate(), Err(ProtocolError::InvalidConfig(_))),
                "edited header fields must fail validation"
            );
            assert!(matches!(
                engine.execute_shard(&tampered, ShardOutput::Summary),
                Err(ProtocolError::InvalidConfig(_))
            ));
        }

        // …while every split of a valid plan re-stamps and stays valid.
        for shard in sub.split_into(3) {
            assert_eq!(shard.plan_stamp, shard.provenance_stamp());
            assert!(shard.validate().is_ok());
        }
        for shard in sub.split_max(2) {
            assert!(shard.validate().is_ok());
        }
    }

    #[test]
    fn execution_uses_the_plans_seed_not_the_engines() {
        let scenario = scenario(5);
        let plan = SessionEngine::new(1234).plan(&scenario, 2);
        let on_other_engine = SessionEngine::new(999)
            .execute_shard(&plan, ShardOutput::Outcomes)
            .unwrap();
        let reference = SessionEngine::new(1234).run_outcomes(&scenario, 2).unwrap();
        assert_eq!(
            on_other_engine.payload,
            ShardPayload::Outcomes(reference),
            "a shard must reproduce identically on any engine"
        );
    }

    #[test]
    fn sharded_outcomes_and_summaries_match_the_unsharded_run() {
        let scenario = scenario(6);
        let engine = SessionEngine::new(77);
        let trials = 7;
        let whole_outcomes = engine.run_outcomes(&scenario, trials).unwrap();
        let whole_summary = engine.run_trials(&scenario, trials).unwrap();
        for shards in [1usize, 2, 3, 7, 9] {
            let plans = engine.plan(&scenario, trials).split_into(shards);
            let outcome_results: Vec<ShardResult> = plans
                .iter()
                .map(|p| engine.execute_shard(p, ShardOutput::Outcomes).unwrap())
                .collect();
            let merged = merge_shard_results(outcome_results)
                .unwrap()
                .into_outcomes()
                .unwrap();
            assert_eq!(merged, whole_outcomes, "{shards} shards (outcomes)");
            let summary_results: Vec<ShardResult> = plans
                .iter()
                .map(|p| engine.execute_shard(p, ShardOutput::Summary).unwrap())
                .collect();
            let merged = merge_shard_results(summary_results)
                .unwrap()
                .into_summary()
                .unwrap();
            assert_eq!(merged, whole_summary, "{shards} shards (summary)");
            assert_eq!(
                serde::json::to_string(&merged),
                serde::json::to_string(&whole_summary),
                "{shards} shards must merge byte-identically"
            );
        }
    }

    #[test]
    fn shards_execute_under_any_parallelism_policy() {
        let scenario = scenario(7);
        let engine = SessionEngine::new(7);
        let plan = engine.plan(&scenario, 5).subrange(1, 3);
        let serial = engine.execute_shard(&plan, ShardOutput::Outcomes).unwrap();
        for mode in [Parallelism::Threads(2), Parallelism::Auto] {
            let threaded = SessionEngine::new(7)
                .with_parallelism(mode)
                .execute_shard_with_stats(&plan, ShardOutput::Outcomes)
                .unwrap();
            assert_eq!(threaded.0, serial, "{mode}");
            assert_eq!(threaded.1.tasks, 3);
        }
    }

    #[test]
    fn merger_detects_gaps_overlaps_and_mismatches() {
        let scenario = scenario(8);
        let engine = SessionEngine::new(8);
        let plans = engine.plan(&scenario, 6).split_into(3);
        let results: Vec<ShardResult> = plans
            .iter()
            .map(|p| engine.execute_shard(p, ShardOutput::Summary).unwrap())
            .collect();

        // Gap: skip the middle shard.
        let mut merger = ShardMerger::new();
        merger.push(results[0].clone()).unwrap();
        assert_eq!(
            merger.push(results[2].clone()),
            Err(MergeError::Gap {
                expected_start: 2,
                found_start: 4
            })
        );

        // Overlap: push the same shard twice.
        let mut merger = ShardMerger::new();
        merger.push(results[0].clone()).unwrap();
        assert_eq!(
            merger.push(results[0].clone()),
            Err(MergeError::Overlap {
                expected_start: 2,
                found_start: 0
            })
        );

        // Fingerprint mismatch: a shard of a different run.
        let mut merger = ShardMerger::new();
        merger.push(results[0].clone()).unwrap();
        let mut alien = results[1].clone();
        alien.fingerprint ^= 1;
        assert!(matches!(
            merger.push(alien),
            Err(MergeError::FingerprintMismatch { .. })
        ));

        // Seed mismatch.
        let mut merger = ShardMerger::new();
        merger.push(results[0].clone()).unwrap();
        let mut reseeded = results[1].clone();
        reseeded.master_seed += 1;
        assert!(matches!(
            merger.push(reseeded),
            Err(MergeError::SeedMismatch { .. })
        ));

        // Total mismatch.
        let mut merger = ShardMerger::new();
        merger.push(results[0].clone()).unwrap();
        let mut resized = results[1].clone();
        resized.total_trials = 9;
        assert!(matches!(
            merger.push(resized),
            Err(MergeError::TotalMismatch { .. })
        ));

        // Corrupt payload: header claims more trials than the payload holds.
        let mut merger = ShardMerger::new();
        let mut corrupt = results[0].clone();
        corrupt.trial_count += 1;
        corrupt.total_trials += 1;
        assert_eq!(
            merger.push(corrupt),
            Err(MergeError::PayloadLength {
                expected: 3,
                found: 2
            })
        );
        // A rejected shard leaves the merger untouched — in particular, a bad
        // *first* shard must not establish the run's identity, so the real
        // shards still merge cleanly afterwards.
        for result in &results {
            merger.push(result.clone()).unwrap();
        }
        assert!(merger.finish().is_ok());

        // Mixed payloads.
        let mut merger = ShardMerger::new();
        merger.push(results[0].clone()).unwrap();
        let outcomes = engine
            .execute_shard(&plans[1], ShardOutput::Outcomes)
            .unwrap();
        assert_eq!(merger.push(outcomes), Err(MergeError::MixedPayloads));

        // Empty and incomplete finishes.
        assert_eq!(ShardMerger::new().finish().unwrap_err(), MergeError::Empty);
        let mut merger = ShardMerger::new();
        merger.push(results[0].clone()).unwrap();
        assert_eq!(merger.merged_trials(), 2);
        assert_eq!(
            merger.finish().unwrap_err(),
            MergeError::Incomplete {
                merged: 2,
                total: 6
            }
        );

        // Every error has a distinct human-readable rendering.
        for error in [
            MergeError::Gap {
                expected_start: 1,
                found_start: 2,
            },
            MergeError::MixedPayloads,
            MergeError::Empty,
        ] {
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn cross_backend_merges_are_rejected() {
        // Regression test: a ShardPlan/ShardResult used to identify a run by
        // scenario + seed + trial range only, so the merger would silently
        // fold shards computed on different simulation substrates into one
        // "byte-identical" run. The backend is now part of the scenario
        // fingerprint AND carried explicitly on every result.
        let density = scenario(12);
        let statevector = density.clone().with_backend(BackendKind::Statevector);
        let engine = SessionEngine::new(12);
        let density_plans = engine.plan(&density, 4).split_into(2);
        let statevector_plans = engine.plan(&statevector, 4).split_into(2);
        assert_eq!(density_plans[0].backend(), BackendKind::DensityMatrix);
        assert_eq!(statevector_plans[1].backend(), BackendKind::Statevector);
        assert_ne!(
            density_plans[0].fingerprint, statevector_plans[0].fingerprint,
            "the backend must be covered by the fingerprint"
        );
        for output in [ShardOutput::Summary, ShardOutput::Outcomes] {
            let first = engine.execute_shard(&density_plans[0], output).unwrap();
            assert_eq!(first.backend, BackendKind::DensityMatrix);
            let second = engine.execute_shard(&statevector_plans[1], output).unwrap();
            assert_eq!(second.backend, BackendKind::Statevector);

            let mut merger = ShardMerger::new();
            merger.push(first.clone()).unwrap();
            let err = merger.push(second.clone()).unwrap_err();
            assert_eq!(
                err,
                MergeError::BackendMismatch {
                    expected: BackendKind::DensityMatrix,
                    found: BackendKind::Statevector,
                }
            );
            assert!(err.to_string().contains("statevector"), "{err}");
            assert!(err.to_string().contains("density-matrix"), "{err}");
            // The order-insensitive entry point rejects the mix as well.
            assert!(matches!(
                merge_shard_results([first, second]),
                Err(MergeError::BackendMismatch { .. })
            ));
        }
        // A consistent statevector run still merges byte-identically.
        let results: Vec<ShardResult> = statevector_plans
            .iter()
            .map(|p| engine.execute_shard(p, ShardOutput::Summary).unwrap())
            .collect();
        let merged = merge_shard_results(results)
            .unwrap()
            .into_summary()
            .unwrap();
        assert_eq!(merged, engine.run_trials(&statevector, 4).unwrap());
    }

    #[test]
    fn pauli_twirled_shards_never_merge_into_exact_runs() {
        // Regression guard for the twirled substrate: its detection
        // statistics are an approximation of the exact backends', so a
        // twirled shard folded into a density-matrix (or statevector) run
        // would silently bias the merged rates. The merger must reject the
        // mix in both push orders.
        let exact = scenario(13);
        let twirled = exact.clone().with_backend(BackendKind::PauliTwirled);
        let engine = SessionEngine::new(13);
        let exact_shard = engine
            .execute_shard(&engine.plan(&exact, 2), ShardOutput::Summary)
            .unwrap();
        let twirled_shard = engine
            .execute_shard(&engine.plan(&twirled, 2), ShardOutput::Summary)
            .unwrap();
        assert_eq!(twirled_shard.backend, BackendKind::PauliTwirled);
        assert_ne!(
            exact_shard.fingerprint, twirled_shard.fingerprint,
            "the twirled substrate must draw a disjoint trial stream"
        );

        let mut merger = ShardMerger::new();
        merger.push(exact_shard.clone()).unwrap();
        assert_eq!(
            merger.push(twirled_shard.clone()).unwrap_err(),
            MergeError::BackendMismatch {
                expected: BackendKind::DensityMatrix,
                found: BackendKind::PauliTwirled,
            }
        );
        let mut merger = ShardMerger::new();
        merger.push(twirled_shard.clone()).unwrap();
        let err = merger.push(exact_shard).unwrap_err();
        assert_eq!(
            err,
            MergeError::BackendMismatch {
                expected: BackendKind::PauliTwirled,
                found: BackendKind::DensityMatrix,
            }
        );
        assert!(err.to_string().contains("pauli-twirled"), "{err}");
        // A consistent twirled run still merges byte-identically.
        let results: Vec<ShardResult> = engine
            .plan(&twirled, 4)
            .split_into(2)
            .iter()
            .map(|p| engine.execute_shard(p, ShardOutput::Summary).unwrap())
            .collect();
        let merged = merge_shard_results(results)
            .unwrap()
            .into_summary()
            .unwrap();
        assert_eq!(merged, engine.run_trials(&twirled, 4).unwrap());
    }

    #[test]
    fn plans_and_results_serde_round_trip() {
        let scenario = scenario(10);
        let engine = SessionEngine::new(10);
        for plan in engine.plan(&scenario, 4).split_into(3) {
            let json = serde::json::to_string(&plan);
            let back: ShardPlan = serde::json::from_str(&json).unwrap();
            assert_eq!(back, plan, "via {json}");
            for output in [ShardOutput::Outcomes, ShardOutput::Summary] {
                let result = engine.execute_shard(&back, output).unwrap();
                let json = serde::json::to_string(&result);
                let restored: ShardResult = serde::json::from_str(&json).unwrap();
                assert_eq!(restored, result, "{output} payload must round-trip");
            }
        }
    }

    #[test]
    fn empty_shards_merge_cleanly() {
        let scenario = scenario(11);
        let engine = SessionEngine::new(11);
        let plans = engine.plan(&scenario, 2).split_into(5);
        let results: Vec<ShardResult> = plans
            .iter()
            .map(|p| engine.execute_shard(p, ShardOutput::Summary).unwrap())
            .collect();
        let merged = merge_shard_results(results)
            .unwrap()
            .into_summary()
            .unwrap();
        assert_eq!(merged, engine.run_trials(&scenario, 2).unwrap());
        // A zero-trial run merges to a zero-trial summary.
        let empty = engine
            .execute_shard(&engine.plan(&scenario, 0), ShardOutput::Summary)
            .unwrap();
        let merged = merge_shard_results([empty])
            .unwrap()
            .into_summary()
            .unwrap();
        assert_eq!(merged.trials, 0);
    }
}
