//! A resumable, work-stealing shard queue persisted to a shared directory.
//!
//! The [`shard`](super::shard) module makes a sweep *location-independent*:
//! a [`ShardPlan`] fully determines its trials, so shards execute anywhere
//! and merge back byte-identically. This module adds the missing *scheduler*
//! for a heterogeneous fleet: instead of hand-assigning one static shard per
//! worker (and restarting the whole sweep when any worker dies), a
//! [`ShardQueue`] decomposes the run into fine-grained sub-plans and hands
//! them out on a **claim/lease** basis:
//!
//! - A fast worker simply claims again sooner, so it naturally drains more
//!   shards than a slow one — no capacity model required.
//! - A claim is a *lease*, not an assignment: if the worker dies (or just
//!   stalls past its lease), the shard becomes claimable again and another
//!   worker re-executes it. Re-execution is always safe because a shard's
//!   result is a pure function of its plan — whichever worker submits first,
//!   the recorded bytes are identical.
//!
//! All coordination happens through one shared directory (local disk, NFS, or
//! any shared filesystem) — no network daemon:
//!
//! ```text
//! queue-dir/
//!   checkpoint.json   the MergeCheckpoint: whole-run plan + per-shard state
//!   queue.lock        advisory file lock serializing checkpoint mutations
//!   results/          one ShardResult JSON file per completed shard
//! ```
//!
//! The `checkpoint.json` manifest **is** the [`MergeCheckpoint`]: a
//! versioned, serde-persisted record of the whole-run plan, the payload kind,
//! and every shard's completion state — including a content fingerprint of
//! each completed result file. Checkpoint writes are atomic (write-temp +
//! rename), so a worker SIGKILLed at any instant leaves the directory either
//! before or after its last transition, never in between. A killed sweep
//! therefore resumes exactly where it stopped: completed shards are trusted
//! (their fingerprints still verify), expired leases are re-issued, and the
//! final [`merge`](ShardQueue::merge) is byte-identical to an uninterrupted
//! single-process run.
//!
//! ```rust
//! use protocol::engine::{Scenario, SessionEngine, ShardOutput, ShardQueue, ClaimOutcome};
//! use protocol::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let identities = IdentityPair::generate(3, &mut rng);
//! let config = SessionConfig::builder()
//!     .message_bits(8)
//!     .check_bits(2)
//!     .di_check_pairs(24)
//!     .build()?;
//! let scenario = Scenario::new(config, identities);
//!
//! let engine = SessionEngine::new(42);
//! let dir = std::env::temp_dir().join(format!("queue-doc-{}", std::process::id()));
//! let queue = ShardQueue::init(&dir, &engine.plan(&scenario, 6), 2, ShardOutput::Summary)?;
//!
//! // Any number of workers, possibly on other machines, drain the queue:
//! while let ClaimOutcome::Claimed(plan) = queue.claim("worker-1", 60_000)? {
//!     let result = engine.execute_shard(&plan, ShardOutput::Summary)?;
//!     queue.submit(&result)?;
//! }
//! let merged = queue.merge()?.into_summary().unwrap();
//! assert_eq!(merged, engine.run_trials(&scenario, 6)?);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```
//!
//! The `shardctl queue` subcommands (in the `bench` crate) expose the same
//! operations between processes: `init`, `claim`, `submit`, `status`,
//! `resume`, and the `work` loop a fleet worker runs.

use super::shard::{MergeError, MergedRun, ShardMerger, ShardOutput, ShardPlan, ShardResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// The on-disk checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Name of the checkpoint manifest inside a queue directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";
/// Name of the advisory lock file inside a queue directory.
pub const LOCK_FILE: &str = "queue.lock";
/// Name of the results subdirectory inside a queue directory.
pub const RESULTS_DIR: &str = "results";
/// The shortest lease [`ShardQueue::claim`] will grant, in milliseconds.
///
/// A zero-length lease expires the instant it is granted (`expires_at_ms ==
/// now_ms`, which the claimable predicate already treats as expired), so the
/// same shard is immediately re-claimable and gets executed twice. Leases
/// below this floor are rejected with [`QueueError::LeaseTooShort`] rather
/// than silently granted as instant-steal tokens.
pub const MIN_LEASE_MS: u64 = 10;

/// Stable 64-bit FNV-1a content fingerprint of a result file's bytes, as
/// recorded in [`SlotState::Done`]. Any later corruption of the file —
/// truncation, bit rot, a concurrent partial write — is detected by
/// re-hashing at merge time.
pub fn content_fingerprint(bytes: &[u8]) -> u64 {
    super::fnv1a64(bytes)
}

/// The latest wall-clock reading [`now_ms`] has handed out, shared across
/// the process so a backwards-stepping system clock can never time-travel
/// lease arithmetic (see [`monotonic_ms`]).
static LAST_WALL_MS: AtomicU64 = AtomicU64::new(0);

/// Milliseconds since the UNIX epoch — the wall clock leases are expressed
/// in. The `*_at` method variants accept an explicit clock for deterministic
/// tests.
///
/// Readings are clamped to be non-decreasing across the process: a system
/// clock stepped backwards (NTP slew, VM migration) returns the last
/// observed time instead of a smaller one, because a backwards jump would
/// make every live lease look expired and trigger fleet-wide duplicate
/// re-execution.
///
/// # Errors
///
/// [`QueueError::Clock`] when the system clock reads before the UNIX epoch —
/// previously this was swallowed as `t = 0`, which mass-expired every live
/// lease; now the caller fails loudly instead.
pub fn now_ms() -> Result<u64, QueueError> {
    // detlint: allow(wall-clock): lease expiry is wall time by design; results use *_at variants
    let raw = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .map_err(|e| QueueError::Clock {
            message: e.to_string(),
        })?;
    Ok(monotonic_ms(raw, &LAST_WALL_MS))
}

/// Clamps `candidate` against the largest reading recorded in `last`,
/// recording `candidate` when it is the new maximum. The returned sequence
/// is non-decreasing no matter how the underlying clock jumps. Factored out
/// of [`now_ms`] (which feeds it the process-wide cell) so the saturation
/// behaviour is unit-testable with an injected clock.
fn monotonic_ms(candidate: u64, last: &AtomicU64) -> u64 {
    let previous = last.fetch_max(candidate, Ordering::Relaxed);
    candidate.max(previous)
}

// -------------------------------------------------------------- checkpoint --

/// The lifecycle state of one shard slot in the checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SlotState {
    /// Not yet claimed by any worker (or reclaimed after a lease expired).
    Pending,
    /// Claimed by a worker; claimable again once the lease expires.
    Leased {
        /// The claiming worker's self-reported name (diagnostics only —
        /// results are accepted from any worker).
        worker: String,
        /// Wall-clock lease expiry, in milliseconds since the UNIX epoch.
        expires_at_ms: u64,
    },
    /// Completed: the result file is on disk.
    Done {
        /// [`content_fingerprint`] of the result file's exact bytes.
        result_fingerprint: u64,
    },
}

/// One shard's entry in the checkpoint: its trial range plus completion
/// state. The sub-plan itself is not duplicated here — it is re-derived from
/// the whole-run plan via [`ShardPlan::subrange`], which re-stamps
/// provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSlot {
    /// First trial index of this shard's range.
    pub trial_start: u64,
    /// Number of trials in this shard.
    pub trial_count: usize,
    /// Current lifecycle state.
    pub state: SlotState,
}

impl ShardSlot {
    /// Name of this slot's result file inside [`RESULTS_DIR`]. Zero-padded so
    /// lexical order equals trial order.
    pub fn result_file_name(&self) -> String {
        format!(
            "shard-{:010}-{:06}.json",
            self.trial_start, self.trial_count
        )
    }
}

/// The versioned, serde-persisted record of a queued sweep: the whole-run
/// [`ShardPlan`], the payload kind every worker must produce, and every
/// shard's completion state (with per-shard result-file fingerprints). This
/// is the `checkpoint.json` manifest of a queue directory; together with the
/// results directory it is everything needed to resume a killed sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]); readers reject versions they
    /// do not understand rather than misinterpreting the manifest.
    pub version: u32,
    /// The whole-run plan this queue drains.
    pub plan: ShardPlan,
    /// The payload kind every shard of this run produces.
    pub output: ShardOutput,
    /// Per-shard state, in trial order.
    pub shards: Vec<ShardSlot>,
}

impl MergeCheckpoint {
    /// Counts of slots per state: `(pending, leased, done)`.
    fn state_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for slot in &self.shards {
            match slot.state {
                SlotState::Pending => counts.0 += 1,
                SlotState::Leased { .. } => counts.1 += 1,
                SlotState::Done { .. } => counts.2 += 1,
            }
        }
        counts
    }
}

/// A point-in-time summary of a queue's progress (see
/// [`ShardQueue::status`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueStatus {
    /// Total shard slots in the checkpoint.
    pub total_shards: usize,
    /// Slots not yet claimed.
    pub pending: usize,
    /// Slots currently leased to a worker.
    pub leased: usize,
    /// Completed slots.
    pub done: usize,
    /// Trials covered by completed slots.
    pub trials_done: u64,
    /// Trials of the whole run.
    pub trials_total: usize,
}

impl QueueStatus {
    /// `true` once every shard is done.
    pub fn complete(&self) -> bool {
        self.done == self.total_shards
    }
}

impl fmt::Display for QueueStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} shards done ({}/{} trials), {} leased, {} pending",
            self.done,
            self.total_shards,
            self.trials_done,
            self.trials_total,
            self.leased,
            self.pending
        )
    }
}

/// What [`ShardQueue::claim`] handed back.
#[derive(Debug, Clone, PartialEq)]
pub enum ClaimOutcome {
    /// A shard was leased to the caller: execute this sub-plan and
    /// [`submit`](ShardQueue::submit) its result. (Boxed: a plan carries its
    /// whole scenario, which would dominate the enum's size.)
    Claimed(Box<ShardPlan>),
    /// Nothing is claimable right now, but other workers hold live leases —
    /// poll again (a lease may expire, or the queue may drain).
    Wait {
        /// Number of currently leased shards.
        leased: usize,
    },
    /// Every shard is done; the worker can exit.
    Drained,
}

/// What [`ShardQueue::submit`] did with a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The result was persisted and its slot marked done.
    Recorded,
    /// Another worker already completed this shard (a benign work-stealing
    /// race — both results are bit-identical by construction); the submission
    /// was discarded.
    AlreadyDone,
}

// ------------------------------------------------------------------ errors --

/// Why a queue operation failed. Every filesystem-shaped failure names the
/// offending file, and merge-stage failures carry the precise
/// [`MergeError`] — a fault-injection suite (and an operator) can tell a
/// truncated result file from a corrupted one from a checkpoint that belongs
/// to a different plan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueueError {
    /// An I/O operation failed on `path`.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error rendering.
        message: String,
    },
    /// A file held syntactically invalid JSON (e.g. truncated mid-write).
    Parse {
        /// The unparseable file.
        path: PathBuf,
        /// The parser's diagnosis.
        message: String,
    },
    /// The checkpoint was written by an incompatible format version.
    Version {
        /// The checkpoint file.
        path: PathBuf,
        /// Version found on disk.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The checkpoint's plan fails [`ShardPlan::validate`] — the manifest was
    /// edited after it was written.
    InvalidPlan(crate::error::ProtocolError),
    /// A checkpoint shard slot's trial range lies outside its plan's range —
    /// the manifest was corrupted or edited after it was written.
    InvalidSlot {
        /// The checkpoint file.
        path: PathBuf,
        /// The out-of-range slot's first trial.
        trial_start: u64,
        /// The out-of-range slot's trial count.
        trial_count: usize,
    },
    /// The directory holds no checkpoint — it is not an initialized queue.
    NotInitialized {
        /// The absent checkpoint file.
        path: PathBuf,
    },
    /// `init` on a directory that already holds a checkpoint.
    AlreadyInitialized {
        /// The existing checkpoint file.
        path: PathBuf,
    },
    /// A submitted result's trial range matches no slot of the checkpoint.
    UnknownShard {
        /// The alien result's first trial.
        trial_start: u64,
        /// The alien result's trial count.
        trial_count: usize,
    },
    /// A claim (or lease extension) asked for a lease shorter than
    /// [`MIN_LEASE_MS`]. A zero-length lease is an instant-steal token — the
    /// shard would be re-claimable the moment it was granted and executed
    /// twice — so too-short leases are refused instead of granted.
    LeaseTooShort {
        /// The lease the caller asked for, in milliseconds.
        lease_ms: u64,
        /// The smallest lease this queue grants ([`MIN_LEASE_MS`]).
        min_ms: u64,
    },
    /// A heartbeat tried to extend a lease the worker does not currently
    /// hold: the slot is pending (the lease expired and was reclaimed),
    /// already done, or leased to another worker. The caller must treat its
    /// shard as lost — another worker may already be re-executing it.
    LeaseNotHeld {
        /// First trial of the shard whose lease was refused.
        trial_start: u64,
        /// Trial count of the shard whose lease was refused.
        trial_count: usize,
        /// The worker whose heartbeat was refused.
        worker: String,
        /// The slot's actual state: `pending`, `done`, or `leased to <w>`.
        state: String,
    },
    /// The system wall clock read before the UNIX epoch, so lease expiry
    /// times cannot be computed. Previously this was swallowed as `t = 0`,
    /// which made every live lease look expired and triggered fleet-wide
    /// duplicate re-execution; now it fails loudly.
    Clock {
        /// The underlying [`std::time::SystemTimeError`] rendering.
        message: String,
    },
    /// A completed result file's bytes no longer hash to the fingerprint the
    /// checkpoint recorded at submit time.
    Corrupt {
        /// The corrupted result file.
        path: PathBuf,
        /// Fingerprint recorded in the checkpoint.
        expected: u64,
        /// Fingerprint of the bytes on disk.
        found: u64,
    },
    /// A result file the checkpoint marks done is missing from the results
    /// directory.
    Missing {
        /// The expected result file.
        path: PathBuf,
    },
    /// A merge-stage check failed; `path` names the offending result file
    /// when one is involved (a header mismatch against the plan during
    /// `submit` carries no file).
    Merge {
        /// The offending result file, if the failure is file-shaped.
        path: Option<PathBuf>,
        /// The precise merge failure.
        error: MergeError,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::Io { path, message } => {
                write!(f, "I/O error on {}: {message}", path.display())
            }
            QueueError::Parse { path, message } => write!(
                f,
                "invalid JSON in {} (truncated or corrupt): {message}",
                path.display()
            ),
            QueueError::Version {
                path,
                found,
                supported,
            } => write!(
                f,
                "checkpoint {} is format version {found}, this build supports {supported}",
                path.display()
            ),
            QueueError::InvalidPlan(error) => {
                write!(f, "checkpoint plan fails validation: {error}")
            }
            QueueError::InvalidSlot {
                path,
                trial_start,
                trial_count,
            } => write!(
                f,
                "checkpoint {} holds a shard slot covering trials {trial_start}..{} outside \
                 its plan's range; the manifest was corrupted or edited",
                path.display(),
                trial_start.saturating_add(*trial_count as u64)
            ),
            QueueError::NotInitialized { path } => write!(
                f,
                "no queue checkpoint at {}: the directory is not an initialized queue",
                path.display()
            ),
            QueueError::AlreadyInitialized { path } => {
                write!(f, "queue already initialized: {} exists", path.display())
            }
            QueueError::UnknownShard {
                trial_start,
                trial_count,
            } => write!(
                f,
                "result for trials {trial_start}..{} matches no shard of this queue",
                trial_start + *trial_count as u64
            ),
            QueueError::LeaseTooShort { lease_ms, min_ms } => write!(
                f,
                "lease of {lease_ms} ms is below the {min_ms} ms minimum: it would expire the \
                 instant it was granted and the shard would be executed twice"
            ),
            QueueError::LeaseNotHeld {
                trial_start,
                trial_count,
                worker,
                state,
            } => write!(
                f,
                "worker {worker} no longer holds the lease on trials {trial_start}..{} \
                 (slot is {state}); treat the shard as lost",
                trial_start.saturating_add(*trial_count as u64)
            ),
            QueueError::Clock { message } => write!(
                f,
                "system wall clock reads before the UNIX epoch ({message}); refusing to \
                 compute lease expiries from it"
            ),
            QueueError::Corrupt {
                path,
                expected,
                found,
            } => write!(
                f,
                "result file {} is corrupt: content fingerprint {found:#018x} does not match \
                 the checkpoint's {expected:#018x}",
                path.display()
            ),
            QueueError::Missing { path } => write!(
                f,
                "result file {} is marked done in the checkpoint but missing on disk",
                path.display()
            ),
            QueueError::Merge { path, error } => match path {
                Some(path) => write!(f, "cannot merge {}: {error}", path.display()),
                None => write!(f, "merge failed: {error}"),
            },
        }
    }
}

impl std::error::Error for QueueError {}

// ------------------------------------------------------------------- queue --

/// A claimable, resumable work queue over one sharded run, backed by a
/// shared directory (see the [module docs](self) for the layout and the
/// lease/work-stealing semantics).
///
/// A `ShardQueue` value is just the directory handle; all state lives on
/// disk, so any number of `ShardQueue`s in any number of processes (or
/// machines sharing the filesystem) operate on the same sweep. Mutating
/// operations serialize through an advisory file lock; checkpoint writes are
/// atomic (temp file + rename), so readers never observe a partial manifest.
#[derive(Debug, Clone)]
pub struct ShardQueue {
    dir: PathBuf,
}

impl ShardQueue {
    /// Creates a queue directory for `plan`, decomposed into sub-shards of at
    /// most `shard_trials` trials each (fine-grained shards are what let
    /// heterogeneous workers balance load — slow workers simply claim fewer).
    ///
    /// # Errors
    ///
    /// [`QueueError::AlreadyInitialized`] when the directory already holds a
    /// checkpoint, [`QueueError::InvalidPlan`] when the plan fails
    /// [`ShardPlan::validate`], or an I/O error.
    ///
    /// # Panics
    ///
    /// Panics when `shard_trials` is 0 (as [`ShardPlan::split_max`] does).
    pub fn init(
        dir: impl Into<PathBuf>,
        plan: &ShardPlan,
        shard_trials: usize,
        output: ShardOutput,
    ) -> Result<Self, QueueError> {
        let queue = Self { dir: dir.into() };
        plan.validate().map_err(QueueError::InvalidPlan)?;
        fs::create_dir_all(queue.results_dir()).map_err(|e| QueueError::Io {
            path: queue.results_dir(),
            message: e.to_string(),
        })?;
        // The existence check happens under the lock: two racing `init`s must
        // resolve to one checkpoint and one AlreadyInitialized error, never a
        // silent overwrite.
        let _lock = queue.lock()?;
        let checkpoint_path = queue.checkpoint_path();
        if checkpoint_path.exists() {
            return Err(QueueError::AlreadyInitialized {
                path: checkpoint_path,
            });
        }
        let shards = plan
            .split_max(shard_trials)
            .into_iter()
            .map(|sub| ShardSlot {
                trial_start: sub.trial_start,
                trial_count: sub.trial_count,
                state: SlotState::Pending,
            })
            .collect();
        let checkpoint = MergeCheckpoint {
            version: CHECKPOINT_VERSION,
            plan: plan.clone(),
            output,
            shards,
        };
        queue.save(&checkpoint)?;
        Ok(queue)
    }

    /// Opens an existing queue directory, verifying that its checkpoint
    /// parses, carries a supported version, and holds a valid plan with
    /// in-range slots.
    ///
    /// # Errors
    ///
    /// [`QueueError::NotInitialized`] / [`QueueError::Parse`] /
    /// [`QueueError::Version`] / [`QueueError::InvalidPlan`] /
    /// [`QueueError::InvalidSlot`] as appropriate.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, QueueError> {
        let queue = Self { dir: dir.into() };
        queue.load()?;
        Ok(queue)
    }

    /// The queue directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint manifest.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }

    /// Path of the results directory.
    pub fn results_dir(&self) -> PathBuf {
        self.dir.join(RESULTS_DIR)
    }

    /// Path of a slot's result file.
    pub fn result_path(&self, slot: &ShardSlot) -> PathBuf {
        self.results_dir().join(slot.result_file_name())
    }

    /// Reads the current checkpoint (no lock needed: checkpoint writes are
    /// atomic renames, so this sees a consistent manifest).
    ///
    /// # Errors
    ///
    /// As for [`open`](Self::open).
    pub fn checkpoint(&self) -> Result<MergeCheckpoint, QueueError> {
        self.load()
    }

    /// Claims the next available shard for `worker` under a lease of
    /// `lease_ms` milliseconds of wall-clock time, re-issuing any lease that
    /// has already expired (the work-stealing path: a dead worker's shards
    /// come back automatically).
    ///
    /// # Errors
    ///
    /// Checkpoint load/store failures, [`QueueError::LeaseTooShort`] for
    /// leases under [`MIN_LEASE_MS`], or [`QueueError::Clock`] when the
    /// system clock is unusable.
    pub fn claim(&self, worker: &str, lease_ms: u64) -> Result<ClaimOutcome, QueueError> {
        self.claim_at(worker, lease_ms, now_ms()?)
    }

    /// [`claim`](Self::claim) with an explicit clock (milliseconds since the
    /// UNIX epoch) for deterministic tests.
    ///
    /// # Errors
    ///
    /// Checkpoint load/store failures, or [`QueueError::LeaseTooShort`] for
    /// leases under [`MIN_LEASE_MS`].
    pub fn claim_at(
        &self,
        worker: &str,
        lease_ms: u64,
        now_ms: u64,
    ) -> Result<ClaimOutcome, QueueError> {
        if lease_ms < MIN_LEASE_MS {
            return Err(QueueError::LeaseTooShort {
                lease_ms,
                min_ms: MIN_LEASE_MS,
            });
        }
        let _lock = self.lock()?;
        let mut checkpoint = self.load()?;
        let claimable = checkpoint.shards.iter_mut().find(|slot| match &slot.state {
            SlotState::Pending => true,
            SlotState::Leased { expires_at_ms, .. } => *expires_at_ms <= now_ms,
            SlotState::Done { .. } => false,
        });
        let Some(slot) = claimable else {
            let (_, leased, done) = checkpoint.state_counts();
            return Ok(if done == checkpoint.shards.len() {
                ClaimOutcome::Drained
            } else {
                ClaimOutcome::Wait { leased }
            });
        };
        slot.state = SlotState::Leased {
            worker: worker.to_string(),
            expires_at_ms: now_ms.saturating_add(lease_ms),
        };
        let plan = subplan(&checkpoint.plan, slot.trial_start, slot.trial_count);
        self.save(&checkpoint)?;
        Ok(ClaimOutcome::Claimed(Box::new(plan)))
    }

    /// Extends `worker`'s lease on the shard covering `plan`'s trial range
    /// to `lease_ms` milliseconds from now — the heartbeat a slow-but-alive
    /// worker sends so its shard is not stolen mid-run and computed twice.
    ///
    /// Worker-identity-checked: only the current leaseholder may extend. A
    /// lease that has nominally expired but not yet been stolen is still
    /// re-assertable by its holder (the extension happens under the queue
    /// lock, so it races cleanly with a would-be thief's claim: whichever
    /// lands first wins and the other sees the slot's new state). A
    /// heartbeat never shortens a lease. Returns the new expiry time.
    ///
    /// # Errors
    ///
    /// [`QueueError::LeaseNotHeld`] when the slot is pending, done, or
    /// leased to someone else; [`QueueError::UnknownShard`] when the range
    /// matches no slot; [`QueueError::LeaseTooShort`] for extensions under
    /// [`MIN_LEASE_MS`]; [`QueueError::Clock`] when the system clock is
    /// unusable; or checkpoint load/store failures.
    pub fn extend_lease(
        &self,
        worker: &str,
        plan: &ShardPlan,
        lease_ms: u64,
    ) -> Result<u64, QueueError> {
        self.extend_lease_at(worker, plan, lease_ms, now_ms()?)
    }

    /// [`extend_lease`](Self::extend_lease) with an explicit clock for
    /// deterministic tests.
    ///
    /// # Errors
    ///
    /// As for [`extend_lease`](Self::extend_lease).
    pub fn extend_lease_at(
        &self,
        worker: &str,
        plan: &ShardPlan,
        lease_ms: u64,
        now_ms: u64,
    ) -> Result<u64, QueueError> {
        if lease_ms < MIN_LEASE_MS {
            return Err(QueueError::LeaseTooShort {
                lease_ms,
                min_ms: MIN_LEASE_MS,
            });
        }
        let _lock = self.lock()?;
        let mut checkpoint = self.load()?;
        let Some(slot) = checkpoint
            .shards
            .iter_mut()
            .find(|s| s.trial_start == plan.trial_start && s.trial_count == plan.trial_count)
        else {
            return Err(QueueError::UnknownShard {
                trial_start: plan.trial_start,
                trial_count: plan.trial_count,
            });
        };
        let refused = |state: String| QueueError::LeaseNotHeld {
            trial_start: plan.trial_start,
            trial_count: plan.trial_count,
            worker: worker.to_string(),
            state,
        };
        match &mut slot.state {
            SlotState::Leased {
                worker: holder,
                expires_at_ms,
            } if holder == worker => {
                *expires_at_ms = (*expires_at_ms).max(now_ms.saturating_add(lease_ms));
                let extended = *expires_at_ms;
                self.save(&checkpoint)?;
                Ok(extended)
            }
            SlotState::Leased { worker: holder, .. } => Err(refused(format!("leased to {holder}"))),
            SlotState::Pending => Err(refused("pending".to_string())),
            SlotState::Done { .. } => Err(refused("done".to_string())),
        }
    }

    /// Spawns a heartbeat thread that re-extends `worker`'s lease on `plan`
    /// every `lease_ms / 3` milliseconds until the returned guard is
    /// dropped, so a shard whose execution legitimately outlives its lease
    /// is never stolen from a live worker. The thread stops on its own the
    /// moment an extension is refused (the lease was lost — the executor's
    /// submit path handles the resulting benign duplicate).
    ///
    /// Drop the guard right after [`submit`](Self::submit); dropping joins
    /// the thread.
    pub fn heartbeat(&self, worker: &str, plan: &ShardPlan, lease_ms: u64) -> LeaseHeartbeat {
        let queue = self.clone();
        let worker = worker.to_string();
        let plan = plan.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let period = Duration::from_millis((lease_ms / 3).max(1));
        let handle = thread::spawn(move || loop {
            thread::park_timeout(period);
            if flag.load(Ordering::Relaxed) {
                break;
            }
            if queue.extend_lease(&worker, &plan, lease_ms).is_err() {
                break;
            }
        });
        LeaseHeartbeat {
            stop,
            handle: Some(handle),
        }
    }

    /// Persists a completed shard result and marks its slot done. Accepts a
    /// valid result for any non-done slot regardless of who holds the lease:
    /// results are pure functions of their plans, so a late submission from a
    /// presumed-dead worker is bit-identical to the re-executed one and
    /// recording whichever arrives first is safe.
    ///
    /// # Errors
    ///
    /// [`QueueError::Merge`] when the result's header does not belong to this
    /// queue's plan (wrong fingerprint / seed / backend / total, or a payload
    /// whose length or kind is wrong), [`QueueError::UnknownShard`] when its
    /// range matches no slot, or checkpoint/result I/O failures.
    pub fn submit(&self, result: &ShardResult) -> Result<SubmitOutcome, QueueError> {
        let _lock = self.lock()?;
        let mut checkpoint = self.load()?;
        validate_result_header(&checkpoint, result, None)?;
        let Some(slot) = checkpoint
            .shards
            .iter_mut()
            .find(|s| s.trial_start == result.trial_start && s.trial_count == result.trial_count)
        else {
            return Err(QueueError::UnknownShard {
                trial_start: result.trial_start,
                trial_count: result.trial_count,
            });
        };
        if matches!(slot.state, SlotState::Done { .. }) {
            return Ok(SubmitOutcome::AlreadyDone);
        }
        let bytes = serde::json::to_string(result).into_bytes();
        let fingerprint = content_fingerprint(&bytes);
        let path = self.results_dir().join(slot.result_file_name());
        write_atomically(&path, &bytes)?;
        slot.state = SlotState::Done {
            result_fingerprint: fingerprint,
        };
        self.save(&checkpoint)?;
        Ok(SubmitOutcome::Recorded)
    }

    /// The queue's current progress.
    ///
    /// # Errors
    ///
    /// Checkpoint load failures.
    pub fn status(&self) -> Result<QueueStatus, QueueError> {
        Ok(status_of(&self.load()?))
    }

    /// Recovers a (possibly killed) sweep: verifies every completed result
    /// file on disk against its checkpointed fingerprint, then returns every
    /// expired lease to the pending state so workers can re-claim the dead
    /// workers' shards. Returns the status after recovery.
    ///
    /// The verification is deliberately strict — a truncated or corrupted
    /// result file fails the resume with an error naming that file rather
    /// than being silently re-executed, so an operator sees the fault before
    /// trusting the directory again.
    ///
    /// # Errors
    ///
    /// [`QueueError::Missing`] / [`QueueError::Corrupt`] /
    /// [`QueueError::Parse`] / [`QueueError::Merge`] naming the offending
    /// result file, checkpoint load/store failures, or
    /// [`QueueError::Clock`] when the system clock is unusable.
    pub fn recover(&self) -> Result<QueueStatus, QueueError> {
        self.recover_at(now_ms()?)
    }

    /// [`recover`](Self::recover) with an explicit clock for deterministic
    /// tests.
    ///
    /// # Errors
    ///
    /// As for [`recover`](Self::recover).
    pub fn recover_at(&self, now_ms: u64) -> Result<QueueStatus, QueueError> {
        let _lock = self.lock()?;
        let mut checkpoint = self.load()?;
        // Verify completed work first: resuming must fail loudly on a
        // damaged results directory, never paper over it.
        self.verified_done_results(&checkpoint)?;
        let status = expire_leases(&mut checkpoint, now_ms);
        self.save(&checkpoint)?;
        Ok(status)
    }

    /// The whole resume path in one pass over the results directory:
    /// [`recover`](Self::recover), plus — when recovery leaves every shard
    /// done — the final merge of the already-verified results. Returns the
    /// post-recovery status and, for a complete sweep, the merged run
    /// (byte-identical to the uninterrupted single-process sweep).
    ///
    /// # Errors
    ///
    /// As for [`recover`](Self::recover) and [`merge`](Self::merge).
    pub fn resume(&self) -> Result<(QueueStatus, Option<MergedRun>), QueueError> {
        self.resume_at(now_ms()?)
    }

    /// [`resume`](Self::resume) with an explicit clock for deterministic
    /// tests.
    ///
    /// # Errors
    ///
    /// As for [`resume`](Self::resume).
    pub fn resume_at(&self, now_ms: u64) -> Result<(QueueStatus, Option<MergedRun>), QueueError> {
        let _lock = self.lock()?;
        let mut checkpoint = self.load()?;
        let results = self.verified_done_results(&checkpoint)?;
        let status = expire_leases(&mut checkpoint, now_ms);
        self.save(&checkpoint)?;
        let merged = if status.complete() {
            Some(fold_results(results)?)
        } else {
            None
        };
        Ok((status, merged))
    }

    /// Folds every completed shard through a [`ShardMerger`] in trial order —
    /// verifying each result file's fingerprint and header on the way — and
    /// returns the merged run, byte-identical to the uninterrupted
    /// single-process sweep.
    ///
    /// # Errors
    ///
    /// [`QueueError::Merge`] with [`MergeError::Incomplete`] when shards are
    /// still outstanding; otherwise file faults
    /// ([`QueueError::Missing`] / [`QueueError::Corrupt`] /
    /// [`QueueError::Parse`]) or merge-stage failures, each naming the
    /// offending result file.
    pub fn merge(&self) -> Result<MergedRun, QueueError> {
        let checkpoint = self.load()?;
        let status = status_of(&checkpoint);
        if !status.complete() {
            return Err(QueueError::Merge {
                path: None,
                error: MergeError::Incomplete {
                    merged: status.trials_done,
                    total: checkpoint.plan.trial_count,
                },
            });
        }
        fold_results(self.verified_done_results(&checkpoint)?)
    }

    /// Reads, checksum-verifies, parses and header-checks every completed
    /// slot's result file, in trial order.
    fn verified_done_results(
        &self,
        checkpoint: &MergeCheckpoint,
    ) -> Result<Vec<(PathBuf, ShardResult)>, QueueError> {
        let mut results = Vec::new();
        for slot in &checkpoint.shards {
            if let SlotState::Done { result_fingerprint } = slot.state {
                let (path, result) = self.verified_result_bytes(slot, result_fingerprint)?;
                validate_result_header(checkpoint, &result, Some(path.clone()))?;
                results.push((path, result));
            }
        }
        Ok(results)
    }

    /// Reads, checksum-verifies and parses one completed slot's result file.
    fn verified_result_bytes(
        &self,
        slot: &ShardSlot,
        expected_fingerprint: u64,
    ) -> Result<(PathBuf, ShardResult), QueueError> {
        let path = self.result_path(slot);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(QueueError::Missing { path });
            }
            Err(e) => {
                return Err(QueueError::Io {
                    path,
                    message: e.to_string(),
                });
            }
        };
        let found = content_fingerprint(&bytes);
        if found != expected_fingerprint {
            return Err(QueueError::Corrupt {
                path,
                expected: expected_fingerprint,
                found,
            });
        }
        let text = String::from_utf8(bytes).map_err(|e| QueueError::Parse {
            path: path.clone(),
            message: e.to_string(),
        })?;
        let result: ShardResult = serde::json::from_str(&text).map_err(|e| QueueError::Parse {
            path: path.clone(),
            message: e.to_string(),
        })?;
        Ok((path, result))
    }

    /// Takes the queue's advisory file lock (blocking). Dropping the guard
    /// releases it.
    fn lock(&self) -> Result<File, QueueError> {
        let path = self.dir.join(LOCK_FILE);
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)
            .map_err(|e| QueueError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
        file.lock().map_err(|e| QueueError::Io {
            path,
            message: e.to_string(),
        })?;
        Ok(file)
    }

    /// Loads and fully validates the checkpoint.
    fn load(&self) -> Result<MergeCheckpoint, QueueError> {
        let path = self.checkpoint_path();
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(QueueError::NotInitialized { path });
            }
            Err(e) => {
                return Err(QueueError::Io {
                    path,
                    message: e.to_string(),
                });
            }
        };
        // Version-gate before full decoding: a future format may not even
        // parse as today's shapes.
        let value = serde::json::parse(&text).map_err(|e| QueueError::Parse {
            path: path.clone(),
            message: e.to_string(),
        })?;
        let version =
            u32::from_value(value.get_field("version").map_err(|e| QueueError::Parse {
                path: path.clone(),
                message: e.to_string(),
            })?)
            .map_err(|e| QueueError::Parse {
                path: path.clone(),
                message: e.to_string(),
            })?;
        if version != CHECKPOINT_VERSION {
            return Err(QueueError::Version {
                path,
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let checkpoint = MergeCheckpoint::from_value(&value).map_err(|e| QueueError::Parse {
            path: path.clone(),
            message: e.to_string(),
        })?;
        checkpoint
            .plan
            .validate()
            .map_err(QueueError::InvalidPlan)?;
        // Range-check every slot against the plan so a corrupt or hand-edited
        // manifest surfaces as an error here, not as a panic when a slot's
        // sub-plan is later re-derived.
        let plan = &checkpoint.plan;
        for slot in &checkpoint.shards {
            let in_range = slot.trial_start >= plan.trial_start
                && slot
                    .trial_start
                    .checked_add(slot.trial_count as u64)
                    .is_some_and(|end| end <= plan.trial_end());
            if !in_range {
                return Err(QueueError::InvalidSlot {
                    path,
                    trial_start: slot.trial_start,
                    trial_count: slot.trial_count,
                });
            }
        }
        Ok(checkpoint)
    }

    /// Atomically persists the checkpoint (write temp + rename).
    fn save(&self, checkpoint: &MergeCheckpoint) -> Result<(), QueueError> {
        write_atomically(
            &self.checkpoint_path(),
            serde::json::to_string(checkpoint).as_bytes(),
        )
    }
}

/// The guard of a running [`ShardQueue::heartbeat`] thread. Dropping it
/// stops the heartbeat and joins the thread; the lease is then left to
/// expire naturally (a completed shard's slot is `Done` anyway, so expiry
/// is moot).
#[derive(Debug)]
pub struct LeaseHeartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Drop for LeaseHeartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// Re-derives a slot's sub-plan from the whole-run plan (re-stamping
/// provenance on the way, via [`ShardPlan::subrange`]). Safe to call only on
/// slots [`load`](ShardQueue::load) has range-checked against the plan.
fn subplan(whole: &ShardPlan, trial_start: u64, trial_count: usize) -> ShardPlan {
    whole.subrange((trial_start - whole.trial_start) as usize, trial_count)
}

/// Returns every lease that has expired by `now_ms` to the pending state and
/// reports the resulting status.
fn expire_leases(checkpoint: &mut MergeCheckpoint, now_ms: u64) -> QueueStatus {
    for slot in &mut checkpoint.shards {
        if let SlotState::Leased { expires_at_ms, .. } = slot.state {
            if expires_at_ms <= now_ms {
                slot.state = SlotState::Pending;
            }
        }
    }
    status_of(checkpoint)
}

/// Folds verified results (in trial order) into one merged run, naming the
/// source file of any shard the merger rejects.
fn fold_results(results: Vec<(PathBuf, ShardResult)>) -> Result<MergedRun, QueueError> {
    let mut merger = ShardMerger::new();
    for (path, result) in results {
        merger.push(result).map_err(|error| QueueError::Merge {
            path: Some(path),
            error,
        })?;
    }
    merger
        .finish()
        .map_err(|error| QueueError::Merge { path: None, error })
}

fn status_of(checkpoint: &MergeCheckpoint) -> QueueStatus {
    let (pending, leased, done) = checkpoint.state_counts();
    QueueStatus {
        total_shards: checkpoint.shards.len(),
        pending,
        leased,
        done,
        trials_done: checkpoint
            .shards
            .iter()
            .filter(|s| matches!(s.state, SlotState::Done { .. }))
            .map(|s| s.trial_count as u64)
            .sum(),
        trials_total: checkpoint.plan.trial_count,
    }
}

/// Rejects a result whose header does not belong to the checkpoint's plan —
/// the "checkpoint from a different plan" fault surfaces here as the precise
/// [`MergeError`] the header check would raise at merge time.
fn validate_result_header(
    checkpoint: &MergeCheckpoint,
    result: &ShardResult,
    path: Option<PathBuf>,
) -> Result<(), QueueError> {
    let plan = &checkpoint.plan;
    let merge = |error: MergeError| QueueError::Merge {
        path: path.clone(),
        error,
    };
    if result.backend != plan.backend() {
        return Err(merge(MergeError::BackendMismatch {
            expected: plan.backend(),
            found: result.backend,
        }));
    }
    if result.fingerprint != plan.fingerprint {
        return Err(merge(MergeError::FingerprintMismatch {
            expected: plan.fingerprint,
            found: result.fingerprint,
        }));
    }
    if result.master_seed != plan.master_seed {
        return Err(merge(MergeError::SeedMismatch {
            expected: plan.master_seed,
            found: result.master_seed,
        }));
    }
    if result.total_trials != plan.total_trials {
        return Err(merge(MergeError::TotalMismatch {
            expected: plan.total_trials,
            found: result.total_trials,
        }));
    }
    if result.payload.trials() != result.trial_count {
        return Err(merge(MergeError::PayloadLength {
            expected: result.trial_count,
            found: result.payload.trials(),
        }));
    }
    let expected_kind = checkpoint.output.as_str();
    if result.payload.kind() != expected_kind {
        return Err(merge(MergeError::MixedPayloads));
    }
    Ok(())
}

/// Writes `bytes` to `path` atomically: write a sibling temp file, then
/// rename over the target. A crash at any instant leaves either the old file
/// or the new one, never a torn write.
pub(super) fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), QueueError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes).map_err(|e| QueueError::Io {
        path: tmp.clone(),
        message: e.to_string(),
    })?;
    fs::rename(&tmp, path).map_err(|e| QueueError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SessionConfig;
    use crate::engine::{Scenario, SessionEngine};
    use crate::identity::IdentityPair;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique queue directory, removed on drop.
    struct TempQueueDir(PathBuf);

    impl TempQueueDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "ua-di-qsdc-queue-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            TempQueueDir(dir)
        }
    }

    impl Drop for TempQueueDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn scenario(seed: u64) -> Scenario {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let identities = IdentityPair::generate(3, &mut rng);
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(24)
            .build()
            .unwrap();
        Scenario::new(config, identities)
    }

    fn drain(queue: &ShardQueue, engine: &SessionEngine, output: ShardOutput, now: u64) {
        loop {
            match queue.claim_at("w", 1_000, now).unwrap() {
                ClaimOutcome::Claimed(plan) => {
                    let result = engine.execute_shard(&plan, output).unwrap();
                    assert_eq!(queue.submit(&result).unwrap(), SubmitOutcome::Recorded);
                }
                ClaimOutcome::Drained => break,
                ClaimOutcome::Wait { .. } => unreachable!("single worker never waits"),
            }
        }
    }

    #[test]
    fn drained_queue_merges_to_the_unsharded_run() {
        let tmp = TempQueueDir::new("drain");
        let scenario = scenario(1);
        let engine = SessionEngine::new(41);
        let plan = engine.plan(&scenario, 7);
        let queue = ShardQueue::init(&tmp.0, &plan, 2, ShardOutput::Summary).unwrap();
        assert_eq!(queue.status().unwrap().total_shards, 4);
        drain(&queue, &engine, ShardOutput::Summary, 0);
        let status = queue.status().unwrap();
        assert!(status.complete());
        assert_eq!(status.trials_done, 7);
        let merged = queue.merge().unwrap().into_summary().unwrap();
        assert_eq!(merged, engine.run_trials(&scenario, 7).unwrap());
        // Re-opening the directory sees the same finished sweep.
        let reopened = ShardQueue::open(&tmp.0).unwrap();
        assert!(reopened.status().unwrap().complete());
        assert_eq!(
            serde::json::to_string(&reopened.merge().unwrap().into_summary().unwrap()),
            serde::json::to_string(&engine.run_trials(&scenario, 7).unwrap())
        );
    }

    #[test]
    fn expired_leases_are_reissued_and_live_ones_are_not() {
        let tmp = TempQueueDir::new("lease");
        let scenario = scenario(2);
        let engine = SessionEngine::new(42);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 4), 2, ShardOutput::Summary).unwrap();
        // Worker a claims both shards and dies without submitting.
        let ClaimOutcome::Claimed(first) = queue.claim_at("a", 1_000, 0).unwrap() else {
            panic!("first claim");
        };
        let ClaimOutcome::Claimed(second) = queue.claim_at("a", 1_000, 0).unwrap() else {
            panic!("second claim");
        };
        assert_ne!(first.trial_start, second.trial_start);
        // While the leases live, worker b must wait…
        assert_eq!(
            queue.claim_at("b", 1_000, 500).unwrap(),
            ClaimOutcome::Wait { leased: 2 }
        );
        // …after expiry it steals the shards and finishes the run.
        let ClaimOutcome::Claimed(stolen) = queue.claim_at("b", 1_000, 1_500).unwrap() else {
            panic!("stolen claim");
        };
        assert_eq!(stolen.trial_start, first.trial_start);
        queue
            .submit(&engine.execute_shard(&stolen, ShardOutput::Summary).unwrap())
            .unwrap();
        drain(&queue, &engine, ShardOutput::Summary, 3_000);
        assert_eq!(
            queue.merge().unwrap().into_summary().unwrap(),
            engine.run_trials(&scenario, 4).unwrap()
        );
    }

    #[test]
    fn recover_returns_expired_leases_to_pending() {
        let tmp = TempQueueDir::new("recover");
        let scenario = scenario(3);
        let engine = SessionEngine::new(43);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 4), 2, ShardOutput::Summary).unwrap();
        let ClaimOutcome::Claimed(plan) = queue.claim_at("a", 1_000, 0).unwrap() else {
            panic!("claim");
        };
        queue
            .submit(&engine.execute_shard(&plan, ShardOutput::Summary).unwrap())
            .unwrap();
        let ClaimOutcome::Claimed(_) = queue.claim_at("a", 1_000, 0).unwrap() else {
            panic!("claim");
        };
        // Before expiry the lease survives recovery; after it, recovery
        // returns the shard to pending.
        assert_eq!(queue.recover_at(500).unwrap().leased, 1);
        let status = queue.recover_at(1_500).unwrap();
        assert_eq!((status.leased, status.pending, status.done), (0, 1, 1));
    }

    #[test]
    fn late_duplicate_submissions_are_benign() {
        let tmp = TempQueueDir::new("dup");
        let scenario = scenario(4);
        let engine = SessionEngine::new(44);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 2), 2, ShardOutput::Outcomes).unwrap();
        let ClaimOutcome::Claimed(plan) = queue.claim_at("a", 10, 0).unwrap() else {
            panic!("claim");
        };
        let result = engine.execute_shard(&plan, ShardOutput::Outcomes).unwrap();
        assert_eq!(queue.submit(&result).unwrap(), SubmitOutcome::Recorded);
        // The presumed-dead worker's late submission of the same shard.
        assert_eq!(queue.submit(&result).unwrap(), SubmitOutcome::AlreadyDone);
        assert_eq!(
            queue.merge().unwrap().into_outcomes().unwrap(),
            engine.run_outcomes(&scenario, 2).unwrap()
        );
    }

    #[test]
    fn foreign_and_malformed_results_are_rejected() {
        let tmp = TempQueueDir::new("foreign");
        let base = scenario(5);
        let engine = SessionEngine::new(45);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&base, 2), 2, ShardOutput::Summary).unwrap();
        let plan = engine.plan(&base, 2);
        let good = engine.execute_shard(&plan, ShardOutput::Summary).unwrap();

        // A result from a different run (checkpoint from a different plan).
        let alien_engine = SessionEngine::new(9_999);
        let alien = alien_engine
            .execute_shard(&alien_engine.plan(&scenario(55), 2), ShardOutput::Summary)
            .unwrap();
        assert!(matches!(
            queue.submit(&alien),
            Err(QueueError::Merge {
                error: MergeError::FingerprintMismatch { .. },
                ..
            })
        ));

        // Same plan, wrong payload kind.
        let outcomes = engine.execute_shard(&plan, ShardOutput::Outcomes).unwrap();
        assert!(matches!(
            queue.submit(&outcomes),
            Err(QueueError::Merge {
                error: MergeError::MixedPayloads,
                ..
            })
        ));

        // Same plan, but the header claims fewer trials than the payload
        // holds (a corrupt result).
        let mut truncated = good.clone();
        truncated.trial_count = 1;
        assert!(matches!(
            queue.submit(&truncated),
            Err(QueueError::Merge {
                error: MergeError::PayloadLength { .. },
                ..
            })
        ));

        // Same plan, valid result, but a range matching no slot.
        let half = engine
            .execute_shard(&plan.subrange(0, 1), ShardOutput::Summary)
            .unwrap();
        assert!(matches!(
            queue.submit(&half),
            Err(QueueError::UnknownShard {
                trial_start: 0,
                trial_count: 1
            })
        ));

        // The valid result still lands afterwards.
        assert_eq!(queue.submit(&good).unwrap(), SubmitOutcome::Recorded);
    }

    #[test]
    fn corrupt_and_missing_result_files_fail_resume_by_name() {
        let tmp = TempQueueDir::new("corrupt");
        let scenario = scenario(6);
        let engine = SessionEngine::new(46);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 4), 2, ShardOutput::Summary).unwrap();
        drain(&queue, &engine, ShardOutput::Summary, 0);
        let checkpoint = queue.checkpoint().unwrap();
        let first = queue.result_path(&checkpoint.shards[0]);

        // Truncate the file: the checksum no longer matches.
        let original = fs::read(&first).unwrap();
        fs::write(&first, &original[..original.len() / 2]).unwrap();
        let err = queue.recover_at(0).unwrap_err();
        assert!(matches!(err, QueueError::Corrupt { .. }), "{err}");
        assert!(err
            .to_string()
            .contains(&checkpoint.shards[0].result_file_name()));
        assert!(matches!(queue.merge(), Err(QueueError::Corrupt { .. })));

        // Delete it: resume names the missing file.
        fs::remove_file(&first).unwrap();
        let err = queue.recover_at(0).unwrap_err();
        assert!(matches!(err, QueueError::Missing { .. }), "{err}");

        // Restore the original bytes: the sweep is whole again.
        fs::write(&first, &original).unwrap();
        assert!(queue.recover_at(0).unwrap().complete());
        assert_eq!(
            queue.merge().unwrap().into_summary().unwrap(),
            engine.run_trials(&scenario, 4).unwrap()
        );
    }

    #[test]
    fn version_and_plan_tampering_are_rejected() {
        let tmp = TempQueueDir::new("version");
        let scenario = scenario(7);
        let engine = SessionEngine::new(47);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 2), 2, ShardOutput::Summary).unwrap();

        // Double init is refused.
        assert!(matches!(
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 2), 2, ShardOutput::Summary),
            Err(QueueError::AlreadyInitialized { .. })
        ));

        // A checkpoint from the future is refused by version.
        let mut checkpoint = queue.checkpoint().unwrap();
        checkpoint.version = CHECKPOINT_VERSION + 1;
        fs::write(queue.checkpoint_path(), serde::json::to_string(&checkpoint)).unwrap();
        assert!(matches!(
            ShardQueue::open(&tmp.0),
            Err(QueueError::Version { found, .. }) if found == CHECKPOINT_VERSION + 1
        ));

        // A checkpoint whose plan range was edited fails plan validation.
        checkpoint.version = CHECKPOINT_VERSION;
        checkpoint.plan.total_trials = 1;
        fs::write(queue.checkpoint_path(), serde::json::to_string(&checkpoint)).unwrap();
        assert!(matches!(
            ShardQueue::open(&tmp.0),
            Err(QueueError::InvalidPlan(_))
        ));

        // Truncated checkpoint JSON is a parse error naming the file.
        fs::write(queue.checkpoint_path(), "{\"version\": 1, \"plan").unwrap();
        let err = ShardQueue::open(&tmp.0).unwrap_err();
        assert!(matches!(err, QueueError::Parse { .. }), "{err}");
        assert!(err.to_string().contains(CHECKPOINT_FILE));
    }

    #[test]
    fn out_of_range_slots_and_uninitialized_dirs_are_errors_not_panics() {
        let tmp = TempQueueDir::new("slots");

        // Opening a directory that holds no checkpoint is its own error.
        let err = ShardQueue::open(&tmp.0).unwrap_err();
        assert!(matches!(err, QueueError::NotInitialized { .. }), "{err}");
        assert!(
            err.to_string().contains("not an initialized queue"),
            "{err}"
        );

        let scenario = scenario(13);
        let engine = SessionEngine::new(53);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 4), 2, ShardOutput::Summary).unwrap();

        // A slot edited to lie outside the plan's range must be rejected at
        // load time (previously re-deriving its sub-plan panicked).
        let mut checkpoint = queue.checkpoint().unwrap();
        checkpoint.shards[1].trial_count = 40;
        fs::write(queue.checkpoint_path(), serde::json::to_string(&checkpoint)).unwrap();
        for result in [
            ShardQueue::open(&tmp.0).map(|_| ()),
            queue.claim_at("w", 1_000, 0).map(|_| ()),
            queue.status().map(|_| ()),
        ] {
            let err = result.unwrap_err();
            assert!(matches!(err, QueueError::InvalidSlot { .. }), "{err}");
            assert!(err.to_string().contains(CHECKPOINT_FILE), "{err}");
        }
    }

    #[test]
    fn resume_recovers_and_merges_in_one_pass() {
        let tmp = TempQueueDir::new("resume");
        let scenario = scenario(14);
        let engine = SessionEngine::new(54);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 4), 2, ShardOutput::Summary).unwrap();

        // One shard done, one leased to a dead worker.
        let ClaimOutcome::Claimed(plan) = queue.claim_at("a", 1_000, 0).unwrap() else {
            panic!("claim");
        };
        queue
            .submit(&engine.execute_shard(&plan, ShardOutput::Summary).unwrap())
            .unwrap();
        let ClaimOutcome::Claimed(orphan) = queue.claim_at("dead", 1_000, 0).unwrap() else {
            panic!("claim");
        };

        // Incomplete resume: lease expired back to pending, no merge yet.
        let (status, merged) = queue.resume_at(2_000).unwrap();
        assert_eq!((status.pending, status.leased, status.done), (1, 0, 1));
        assert!(merged.is_none());

        // Finish the orphaned shard; resume now merges in the same call.
        queue
            .submit(&engine.execute_shard(&orphan, ShardOutput::Summary).unwrap())
            .unwrap();
        let (status, merged) = queue.resume_at(3_000).unwrap();
        assert!(status.complete());
        assert_eq!(
            merged.unwrap().into_summary().unwrap(),
            engine.run_trials(&scenario, 4).unwrap()
        );
    }

    #[test]
    fn checkpoint_serde_round_trips() {
        let tmp = TempQueueDir::new("serde");
        let scenario = scenario(8);
        let engine = SessionEngine::new(48);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 3), 1, ShardOutput::Summary).unwrap();
        let ClaimOutcome::Claimed(plan) = queue.claim_at("w", 5_000, 100).unwrap() else {
            panic!("claim");
        };
        queue
            .submit(&engine.execute_shard(&plan, ShardOutput::Summary).unwrap())
            .unwrap();
        let checkpoint = queue.checkpoint().unwrap();
        let json = serde::json::to_string(&checkpoint);
        let back: MergeCheckpoint = serde::json::from_str(&json).unwrap();
        assert_eq!(back, checkpoint, "via {json}");
        // All three slot states appear and render.
        let status = queue.status().unwrap();
        assert_eq!((status.pending, status.leased, status.done), (2, 0, 1));
        assert!(status.to_string().contains("1/3 shards done"));
        assert!(!status.complete());
        assert!(matches!(
            queue.merge(),
            Err(QueueError::Merge {
                error: MergeError::Incomplete {
                    merged: 1,
                    total: 3
                },
                ..
            })
        ));
    }

    #[test]
    fn zero_trial_runs_queue_and_merge_cleanly() {
        let tmp = TempQueueDir::new("empty");
        let scenario = scenario(9);
        let engine = SessionEngine::new(49);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 0), 4, ShardOutput::Summary).unwrap();
        drain(&queue, &engine, ShardOutput::Summary, 0);
        let merged = queue.merge().unwrap().into_summary().unwrap();
        assert_eq!(merged.trials, 0);
    }

    #[test]
    fn zero_and_too_short_leases_are_rejected() {
        let tmp = TempQueueDir::new("minlease");
        let scenario = scenario(20);
        let engine = SessionEngine::new(60);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 4), 2, ShardOutput::Summary).unwrap();
        // The regression: lease_ms == 0 made expires_at_ms == now_ms, which
        // the claimable predicate treats as already expired — the same shard
        // was instantly re-claimable and executed twice. Now it is refused.
        for lease_ms in [0, MIN_LEASE_MS - 1] {
            let err = queue.claim_at("a", lease_ms, 100).unwrap_err();
            assert!(
                matches!(
                    err,
                    QueueError::LeaseTooShort {
                        lease_ms: l,
                        min_ms: MIN_LEASE_MS
                    } if l == lease_ms
                ),
                "{err}"
            );
        }
        // Nothing was leased by the refused claims, and the floor itself is
        // grantable: the same worker's immediate re-claim gets the *other*
        // shard, not a stolen copy of the first.
        let ClaimOutcome::Claimed(first) = queue.claim_at("a", MIN_LEASE_MS, 100).unwrap() else {
            panic!("floor-length lease is grantable");
        };
        let ClaimOutcome::Claimed(second) = queue.claim_at("a", MIN_LEASE_MS, 100).unwrap() else {
            panic!("second shard is claimable");
        };
        assert_ne!(first.trial_start, second.trial_start);
        // Extensions are floored identically.
        assert!(matches!(
            queue.extend_lease_at("a", &first, 0, 100),
            Err(QueueError::LeaseTooShort { lease_ms: 0, .. })
        ));
    }

    #[test]
    fn wall_clock_readings_never_step_backwards() {
        // The injected-clock seam of now_ms(): a candidate below the last
        // observed reading saturates to it instead of time-travelling (a
        // backwards-stepped clock mass-expires every live lease otherwise).
        let cell = AtomicU64::new(0);
        assert_eq!(monotonic_ms(100, &cell), 100);
        assert_eq!(monotonic_ms(40, &cell), 100, "backwards step saturates");
        assert_eq!(monotonic_ms(100, &cell), 100);
        assert_eq!(monotonic_ms(250, &cell), 250, "forward steps pass through");
        assert_eq!(cell.load(Ordering::Relaxed), 250);
        // The live clock is usable and non-decreasing across calls.
        let first = now_ms().expect("post-epoch clock reads");
        let second = now_ms().expect("post-epoch clock reads");
        assert!(second >= first);
    }

    #[test]
    fn lease_extension_is_identity_checked() {
        let tmp = TempQueueDir::new("extend");
        let scenario = scenario(21);
        let engine = SessionEngine::new(61);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 4), 2, ShardOutput::Summary).unwrap();
        let ClaimOutcome::Claimed(plan) = queue.claim_at("a", 1_000, 0).unwrap() else {
            panic!("claim");
        };

        // The holder extends; the lease moves out and never shrinks.
        assert_eq!(
            queue.extend_lease_at("a", &plan, 1_000, 500).unwrap(),
            1_500
        );
        assert_eq!(
            queue.extend_lease_at("a", &plan, 1_000, 100).unwrap(),
            1_500,
            "a heartbeat never shortens a lease"
        );

        // A non-holder's extension is refused by name.
        let err = queue.extend_lease_at("b", &plan, 1_000, 600).unwrap_err();
        assert!(
            matches!(&err, QueueError::LeaseNotHeld { worker, state, .. }
                if worker == "b" && state == "leased to a"),
            "{err}"
        );

        // "b" takes the other shard; after that, the heartbeat is what keeps
        // "a"'s shard from being stolen at its original t=1000 expiry.
        let ClaimOutcome::Claimed(other) = queue.claim_at("b", 10_000, 600).unwrap() else {
            panic!("second shard is claimable");
        };
        assert_ne!(other.trial_start, plan.trial_start);
        assert_eq!(
            queue.claim_at("b", 1_000, 1_200).unwrap(),
            ClaimOutcome::Wait { leased: 2 }
        );

        // Once the extended lease lapses and "b" steals the shard, the old
        // holder's heartbeat is refused — it must treat the shard as lost.
        let ClaimOutcome::Claimed(stolen) = queue.claim_at("b", 1_000, 2_000).unwrap() else {
            panic!("steal after expiry");
        };
        assert_eq!(stolen.trial_start, plan.trial_start);
        let err = queue.extend_lease_at("a", &plan, 1_000, 2_100).unwrap_err();
        assert!(
            matches!(&err, QueueError::LeaseNotHeld { worker, state, .. }
                if worker == "a" && state == "leased to b"),
            "{err}"
        );

        // Done slots refuse extensions too.
        queue
            .submit(&engine.execute_shard(&stolen, ShardOutput::Summary).unwrap())
            .unwrap();
        let err = queue
            .extend_lease_at("b", &stolen, 1_000, 2_200)
            .unwrap_err();
        assert!(
            matches!(&err, QueueError::LeaseNotHeld { state, .. } if state == "done"),
            "{err}"
        );
        // ...and so does a slot recovered back to pending after its holder
        // stopped beating.
        queue.recover_at(20_000).unwrap();
        let err = queue
            .extend_lease_at("b", &other, 1_000, 20_100)
            .unwrap_err();
        assert!(
            matches!(&err, QueueError::LeaseNotHeld { state, .. } if state == "pending"),
            "{err}"
        );

        // A range matching no slot is an UnknownShard, not a panic.
        let alien = engine.plan(&scenario, 4).subrange(1, 1);
        assert!(matches!(
            queue.extend_lease_at("a", &alien, 1_000, 2_400),
            Err(QueueError::UnknownShard { .. })
        ));
    }

    #[test]
    fn heartbeat_guard_keeps_a_slow_worker_alive() {
        let tmp = TempQueueDir::new("heartbeat");
        let scenario = scenario(22);
        let engine = SessionEngine::new(62);
        let queue =
            ShardQueue::init(&tmp.0, &engine.plan(&scenario, 2), 2, ShardOutput::Summary).unwrap();
        let ClaimOutcome::Claimed(plan) = queue.claim("slow", 30).unwrap() else {
            panic!("claim");
        };
        {
            let _beat = queue.heartbeat("slow", &plan, 30);
            // Simulated slow execution: several lease lengths long. The
            // heartbeat (period 10 ms) must keep the lease live throughout.
            thread::sleep(Duration::from_millis(150));
            assert_eq!(
                queue.claim("thief", 1_000).unwrap(),
                ClaimOutcome::Wait { leased: 1 },
                "a heartbeating worker is never stolen from"
            );
            queue
                .submit(&engine.execute_shard(&plan, ShardOutput::Summary).unwrap())
                .unwrap();
        }
        let status = queue.status().unwrap();
        assert_eq!(status.done, 1);
    }

    #[test]
    fn queues_over_subranged_plans_use_plan_relative_offsets() {
        // A queue over a plan that is itself a subrange of a larger run —
        // slot offsets must be taken relative to the plan's own start, and
        // the claimed sub-plans must execute the *window's* trials.
        let tmp = TempQueueDir::new("subrange");
        let scenario = scenario(10);
        let engine = SessionEngine::new(50);
        let window = engine.plan(&scenario, 9).subrange(3, 4);
        let queue = ShardQueue::init(&tmp.0, &window, 3, ShardOutput::Outcomes).unwrap();
        let mut starts = Vec::new();
        loop {
            match queue.claim_at("w", 1_000, 0).unwrap() {
                ClaimOutcome::Claimed(plan) => {
                    assert!(plan.validate().is_ok(), "claimed sub-plans are re-stamped");
                    starts.push(plan.trial_start);
                    let result = engine.execute_shard(&plan, ShardOutput::Outcomes).unwrap();
                    queue.submit(&result).unwrap();
                }
                ClaimOutcome::Drained => break,
                ClaimOutcome::Wait { .. } => unreachable!(),
            }
        }
        assert_eq!(starts, vec![3, 6]);
        // The window alone cannot merge into a whole run (trials 0..3 are
        // missing), and the merger says so rather than inventing coverage.
        assert!(matches!(
            queue.merge(),
            Err(QueueError::Merge {
                error: MergeError::Gap { .. },
                ..
            })
        ));
    }
}
