//! Protocol error type.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring or running a UA-DI-QSDC session.
///
/// Note that a protocol *abort* (detected eavesdropper, failed authentication, …) is **not**
/// an error: aborting is the protocol working as designed, and is reported through
/// [`crate::session::SessionStatus`]. `ProtocolError` covers misuse of the API and simulator
/// failures only.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The session configuration is internally inconsistent.
    InvalidConfig(
        /// Human-readable description of the inconsistency.
        String,
    ),
    /// An identity string had an odd number of bits (each qubit encodes exactly two).
    OddIdentityLength(
        /// The offending bit length.
        usize,
    ),
    /// The supplied message does not match the configured length.
    MessageLengthMismatch {
        /// Bits expected by the configuration.
        expected: usize,
        /// Bits supplied.
        actual: usize,
    },
    /// The underlying quantum simulator reported an error.
    Simulation(
        /// The simulator error message.
        String,
    ),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidConfig(msg) => write!(f, "invalid session configuration: {msg}"),
            ProtocolError::OddIdentityLength(len) => {
                write!(
                    f,
                    "identity strings must have an even number of bits, got {len}"
                )
            }
            ProtocolError::MessageLengthMismatch { expected, actual } => write!(
                f,
                "message length mismatch: configuration expects {expected} bits, got {actual}"
            ),
            ProtocolError::Simulation(msg) => write!(f, "simulation error: {msg}"),
        }
    }
}

impl Error for ProtocolError {}

impl From<qsim::QsimError> for ProtocolError {
    fn from(err: qsim::QsimError) -> Self {
        ProtocolError::Simulation(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ProtocolError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(ProtocolError::OddIdentityLength(3)
            .to_string()
            .contains('3'));
        assert!(ProtocolError::MessageLengthMismatch {
            expected: 8,
            actual: 6
        }
        .to_string()
        .contains('8'));
        let sim: ProtocolError = qsim::QsimError::NotNormalized.into();
        assert!(sim.to_string().contains("normalised"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProtocolError>();
    }
}
