//! Mutual identity authentication.
//!
//! The authentication phase (paper Section II, step 4) runs in two directions:
//!
//! - **Alice verifies Bob.** Alice applied secret *cover operations* to the `D_A` qubits, Bob
//!   encodes `id_B` on the partner qubits and publicly announces the Bell results. Because of
//!   the covers, the announced results look uniformly random to Eve (keeping `id_B` reusable),
//!   but Alice — who knows both the covers and `id_B` — can predict every result exactly.
//! - **Bob verifies Alice.** Alice encoded `id_A` on the `C_A` qubits; Bob Bell-measures them
//!   and compares against the `id_A` he already knows. These results are *never* announced,
//!   keeping `id_A` reusable.
//!
//! An impersonator who does not know the relevant identity can only guess the right Pauli with
//! probability 1/4 per qubit, so either check catches them with probability `1 − (1/4)^l`.

use crate::identity::IdentityString;
use qsim::bell::BellState;
use qsim::pauli::Pauli;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an authentication check accepted or rejected the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuthVerdict {
    /// The observed error rate was within tolerance.
    Accept,
    /// Too many identity qubits mismatched — assume an impersonator (or a hopeless channel).
    Reject,
}

impl fmt::Display for AuthVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthVerdict::Accept => write!(f, "accept"),
            AuthVerdict::Reject => write!(f, "reject"),
        }
    }
}

/// The result of one directional authentication check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuthReport {
    /// Which identity was being verified (`"id_A"` or `"id_B"`).
    pub identity: String,
    /// Number of identity qubits examined (`l`).
    pub qubits: usize,
    /// Number of mismatching qubits.
    pub mismatches: usize,
    /// The mismatch fraction.
    pub error_rate: f64,
    /// The tolerance that was applied.
    pub tolerance: f64,
    /// The verdict.
    pub verdict: AuthVerdict,
}

impl AuthReport {
    fn from_mismatches(identity: &str, qubits: usize, mismatches: usize, tolerance: f64) -> Self {
        let error_rate = if qubits == 0 {
            0.0
        } else {
            mismatches as f64 / qubits as f64
        };
        let verdict = if error_rate <= tolerance {
            AuthVerdict::Accept
        } else {
            AuthVerdict::Reject
        };
        Self {
            identity: identity.to_string(),
            qubits,
            mismatches,
            error_rate,
            tolerance,
            verdict,
        }
    }

    /// Returns `true` when the peer was accepted.
    pub fn passed(&self) -> bool {
        self.verdict == AuthVerdict::Accept
    }
}

impl fmt::Display for AuthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} verification: {}/{} mismatches ({:.1}% > {:.1}% ⇒ reject) → {}",
            self.identity,
            self.mismatches,
            self.qubits,
            self.error_rate * 100.0,
            self.tolerance * 100.0,
            self.verdict
        )
    }
}

/// The Bell state Alice expects Bob to announce for one `(D_A, D_B)` pair, given her cover
/// operation and the `id_B` Pauli for that position.
pub fn expected_bob_result(cover: Pauli, id_b_pauli: Pauli) -> BellState {
    BellState::PhiPlus.after_pauli(cover.compose(id_b_pauli))
}

/// Alice's verification of Bob: compares the Bell states Bob announced for the `(D_A, D_B)`
/// pairs against the states she can predict from her cover operations and the shared `id_B`.
///
/// # Panics
///
/// Panics if `announced`, `covers` and the identity disagree on the number of qubits.
pub fn verify_bob(
    announced: &[BellState],
    covers: &[Pauli],
    id_b: &IdentityString,
    tolerance: f64,
) -> AuthReport {
    let l = id_b.qubit_len();
    assert_eq!(
        announced.len(),
        l,
        "one announced Bell result per identity qubit"
    );
    assert_eq!(covers.len(), l, "one cover operation per identity qubit");
    let id_paulis = id_b.as_paulis();
    let mismatches = announced
        .iter()
        .zip(covers.iter())
        .zip(id_paulis.iter())
        .filter(|((observed, cover), id_pauli)| {
            **observed != expected_bob_result(**cover, **id_pauli)
        })
        .count();
    AuthReport::from_mismatches("id_B", l, mismatches, tolerance)
}

/// Bob's verification of Alice: compares the Bell states he measured on the `C_A` pairs
/// against the states `id_A` should have produced.
///
/// # Panics
///
/// Panics if `measured` and the identity disagree on the number of qubits.
pub fn verify_alice(measured: &[BellState], id_a: &IdentityString, tolerance: f64) -> AuthReport {
    let l = id_a.qubit_len();
    assert_eq!(
        measured.len(),
        l,
        "one measured Bell result per identity qubit"
    );
    let id_paulis = id_a.as_paulis();
    let mismatches = measured
        .iter()
        .zip(id_paulis.iter())
        .filter(|(observed, id_pauli)| **observed != BellState::PhiPlus.after_pauli(**id_pauli))
        .count();
    AuthReport::from_mismatches("id_A", l, mismatches, tolerance)
}

/// The analytic probability that an impersonator who guesses Paulis uniformly at random is
/// detected by an `l`-qubit identity check with zero tolerance: `1 − (1/4)^l`
/// (paper, Section III-A).
pub fn impersonation_detection_probability(l: usize) -> f64 {
    1.0 - 0.25f64.powi(l as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::pauli::Pauli;
    use rand::Rng;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(4)
    }

    fn identity_with_paulis(paulis: &[Pauli]) -> IdentityString {
        let bits = paulis
            .iter()
            .flat_map(|p| {
                let (a, b) = p.to_bits();
                [a, b]
            })
            .collect();
        IdentityString::from_bits(bits).unwrap()
    }

    #[test]
    fn honest_bob_passes_verification() {
        let mut r = rng();
        for _ in 0..20 {
            let l = 6;
            let id_b = IdentityString::random(l, &mut r);
            let covers: Vec<Pauli> = (0..l).map(|_| Pauli::random(&mut r)).collect();
            let announced: Vec<BellState> = covers
                .iter()
                .zip(id_b.as_paulis())
                .map(|(c, p)| expected_bob_result(*c, p))
                .collect();
            let report = verify_bob(&announced, &covers, &id_b, 0.0);
            assert!(report.passed(), "{report}");
            assert_eq!(report.mismatches, 0);
        }
    }

    #[test]
    fn honest_alice_passes_verification() {
        let id_a = identity_with_paulis(&[Pauli::I, Pauli::X, Pauli::IY, Pauli::Z]);
        let measured: Vec<BellState> = id_a
            .as_paulis()
            .into_iter()
            .map(|p| BellState::PhiPlus.after_pauli(p))
            .collect();
        let report = verify_alice(&measured, &id_a, 0.0);
        assert!(report.passed());
        assert_eq!(report.error_rate, 0.0);
        assert_eq!(report.identity, "id_A");
    }

    #[test]
    fn random_guessing_is_detected_with_high_probability() {
        let mut r = rng();
        let l = 8;
        let trials = 400;
        let mut detected = 0;
        for _ in 0..trials {
            let id_b = IdentityString::random(l, &mut r);
            let covers: Vec<Pauli> = (0..l).map(|_| Pauli::random(&mut r)).collect();
            // Eve announces what she gets from random Pauli guesses.
            let announced: Vec<BellState> = covers
                .iter()
                .map(|c| expected_bob_result(*c, Pauli::random(&mut r)))
                .collect();
            if !verify_bob(&announced, &covers, &id_b, 0.0).passed() {
                detected += 1;
            }
        }
        let rate = detected as f64 / trials as f64;
        let expected = impersonation_detection_probability(l);
        assert!(
            (rate - expected).abs() < 0.02,
            "detection rate {rate} should be close to {expected}"
        );
    }

    #[test]
    fn detection_probability_formula() {
        assert!((impersonation_detection_probability(1) - 0.75).abs() < 1e-12);
        assert!((impersonation_detection_probability(2) - 0.9375).abs() < 1e-12);
        assert!(impersonation_detection_probability(16) > 0.999_999);
    }

    #[test]
    fn tolerance_allows_some_channel_noise() {
        let id_a = identity_with_paulis(&[Pauli::I; 10]);
        let mut measured: Vec<BellState> = id_a
            .as_paulis()
            .into_iter()
            .map(|p| BellState::PhiPlus.after_pauli(p))
            .collect();
        // One noisy flip out of ten.
        measured[3] = BellState::PsiMinus;
        let strict = verify_alice(&measured, &id_a, 0.0);
        assert!(!strict.passed());
        let tolerant = verify_alice(&measured, &id_a, 0.15);
        assert!(tolerant.passed());
        assert_eq!(tolerant.mismatches, 1);
        assert!((tolerant.error_rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn wrong_identity_guess_fails_with_certainty_when_all_qubits_differ() {
        // If Eve uses an identity whose every Pauli differs from the real one, detection is
        // certain even with a generous tolerance.
        let id_a = identity_with_paulis(&[Pauli::I, Pauli::I, Pauli::I, Pauli::I]);
        let wrong = identity_with_paulis(&[Pauli::X, Pauli::X, Pauli::X, Pauli::X]);
        let measured: Vec<BellState> = wrong
            .as_paulis()
            .into_iter()
            .map(|p| BellState::PhiPlus.after_pauli(p))
            .collect();
        let report = verify_alice(&measured, &id_a, 0.5);
        assert!(!report.passed());
        assert_eq!(report.mismatches, 4);
    }

    #[test]
    fn announced_results_look_random_thanks_to_covers() {
        // With uniformly random covers, the announced Bell results are uniform over the four
        // Bell states irrespective of id_B — that is what keeps id_B reusable.
        let mut r = rng();
        let id_b = identity_with_paulis(&[Pauli::Z; 2]); // fixed, heavily biased identity
        let mut counts = std::collections::HashMap::new();
        for _ in 0..4000 {
            let cover = Pauli::random(&mut r);
            let announced = expected_bob_result(cover, id_b.as_paulis()[0]);
            *counts.entry(announced).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4, "all four Bell states must appear");
        for (&state, &count) in &counts {
            let frac = count as f64 / 4000.0;
            assert!(
                (frac - 0.25).abs() < 0.05,
                "announced {state} frequency {frac} is not ≈ 1/4"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one cover operation per identity qubit")]
    fn mismatched_cover_count_panics() {
        let id_b = IdentityString::random(3, &mut rng());
        let announced = vec![BellState::PhiPlus; 3];
        let _ = verify_bob(&announced, &[Pauli::I], &id_b, 0.0);
    }

    #[test]
    fn report_display_and_verdict() {
        let report = AuthReport::from_mismatches("id_B", 4, 1, 0.0);
        assert!(!report.passed());
        assert_eq!(report.verdict, AuthVerdict::Reject);
        assert!(report.to_string().contains("id_B"));
        assert_eq!(AuthVerdict::Accept.to_string(), "accept");
        assert_eq!(AuthVerdict::Reject.to_string(), "reject");
        let empty = AuthReport::from_mismatches("id_A", 0, 0, 0.0);
        assert!(empty.passed());
        let _ = rng().gen::<bool>();
    }
}
