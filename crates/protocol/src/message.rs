//! Secret messages and check-bit padding.
//!
//! Alice's `n`-bit secret message `m` is padded with `c` random check bits at random positions
//! to form `m'` of length `n + c = 2N`; the check bits are later revealed publicly so Bob can
//! estimate the transmission error rate without exposing any message bit.

use crate::error::ProtocolError;
use qsim::pauli::Pauli;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The secret `n`-bit message Alice wants to deliver.
///
/// # Examples
///
/// ```rust
/// use protocol::message::SecretMessage;
///
/// let m = SecretMessage::from_bits(vec![true, false, true, true]);
/// assert_eq!(m.len(), 4);
/// assert_eq!(m.to_bitstring(), "1011");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SecretMessage {
    bits: Vec<bool>,
}

impl SecretMessage {
    /// Creates a message from raw bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Creates a message from an ASCII `0`/`1` string.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] if the string contains other characters.
    pub fn from_bitstring(s: &str) -> Result<Self, ProtocolError> {
        let mut bits = Vec::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                other => {
                    return Err(ProtocolError::InvalidConfig(format!(
                        "message bitstring contains non-binary character {other:?}"
                    )))
                }
            }
        }
        Ok(Self { bits })
    }

    /// Generates a uniformly random message of `n` bits.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Self {
            bits: (0..n).map(|_| rng.gen::<bool>()).collect(),
        }
    }

    /// Encodes a UTF-8 string as a message (8 bits per byte, MSB first).
    pub fn from_text(text: &str) -> Self {
        let bits = text
            .bytes()
            .flat_map(|byte| (0..8).rev().map(move |i| (byte >> i) & 1 == 1))
            .collect();
        Self { bits }
    }

    /// Decodes the message back to text (lossy: trailing partial bytes are dropped, invalid
    /// UTF-8 is replaced).
    pub fn to_text_lossy(&self) -> String {
        let bytes: Vec<u8> = self
            .bits
            .chunks(8)
            .filter(|chunk| chunk.len() == 8)
            .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | u8::from(b)))
            .collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` for the empty message.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The raw bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The message as an ASCII `0`/`1` string.
    pub fn to_bitstring(&self) -> String {
        self.bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// Bit error rate relative to another message of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn bit_error_rate(&self, other: &SecretMessage) -> f64 {
        assert_eq!(self.len(), other.len(), "messages must have equal length");
        if self.is_empty() {
            return 0.0;
        }
        let errors = self
            .bits
            .iter()
            .zip(other.bits.iter())
            .filter(|(a, b)| a != b)
            .count();
        errors as f64 / self.len() as f64
    }
}

impl fmt::Display for SecretMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bitstring())
    }
}

/// The padded message `m'`: the secret bits plus `c` check bits at random positions, ready to
/// be encoded two bits per qubit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaddedMessage {
    bits: Vec<bool>,
    check_positions: Vec<usize>,
    check_values: Vec<bool>,
}

impl PaddedMessage {
    /// Builds `m'` by inserting `check_bits` random check bits into `message` at random
    /// positions.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] if the total length `n + c` is odd (it must be
    /// `2N` to map onto `N` qubits) or the message is empty.
    pub fn embed<R: Rng + ?Sized>(
        message: &SecretMessage,
        check_bits: usize,
        rng: &mut R,
    ) -> Result<Self, ProtocolError> {
        if message.is_empty() {
            return Err(ProtocolError::InvalidConfig(
                "cannot pad an empty message".into(),
            ));
        }
        let total = message.len() + check_bits;
        if !total.is_multiple_of(2) {
            return Err(ProtocolError::InvalidConfig(format!(
                "padded length n + c = {total} must be even (two bits per qubit)"
            )));
        }
        // Choose which of the `total` slots hold check bits.
        let mut slots: Vec<usize> = (0..total).collect();
        slots.shuffle(rng);
        let mut check_positions: Vec<usize> = slots.into_iter().take(check_bits).collect();
        check_positions.sort_unstable();
        let check_values: Vec<bool> = (0..check_bits).map(|_| rng.gen::<bool>()).collect();

        let mut bits = Vec::with_capacity(total);
        let mut message_iter = message.bits().iter();
        let mut check_iter = check_values.iter();
        for slot in 0..total {
            if check_positions.binary_search(&slot).is_ok() {
                bits.push(*check_iter.next().expect("one value per check position"));
            } else {
                bits.push(
                    *message_iter
                        .next()
                        .expect("message bits fill non-check slots"),
                );
            }
        }
        Ok(Self {
            bits,
            check_positions,
            check_values,
        })
    }

    /// Reconstructs a padded message from received bits plus the publicly revealed check-bit
    /// positions and values (Bob's view after Alice's reveal).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidConfig`] if positions/values are inconsistent with the
    /// received length.
    pub fn from_received(
        bits: Vec<bool>,
        check_positions: Vec<usize>,
        check_values: Vec<bool>,
    ) -> Result<Self, ProtocolError> {
        if check_positions.len() != check_values.len() {
            return Err(ProtocolError::InvalidConfig(
                "check positions and values must have equal length".into(),
            ));
        }
        if check_positions.iter().any(|&p| p >= bits.len()) {
            return Err(ProtocolError::InvalidConfig(
                "check position outside the received bit string".into(),
            ));
        }
        Ok(Self {
            bits,
            check_positions,
            check_values,
        })
    }

    /// Total length `2N = n + c`.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` when there are no bits (never the case for a validly constructed value).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of qubits needed (`N`).
    pub fn qubit_len(&self) -> usize {
        self.bits.len() / 2
    }

    /// The padded bits `m'`.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The check-bit positions (sorted).
    pub fn check_positions(&self) -> &[usize] {
        &self.check_positions
    }

    /// The check-bit values, in position order.
    pub fn check_values(&self) -> &[bool] {
        &self.check_values
    }

    /// The Pauli operators encoding `m'`, two bits per operator.
    pub fn as_paulis(&self) -> Vec<Pauli> {
        self.bits
            .chunks(2)
            .map(|pair| Pauli::from_bits(pair[0], pair[1]))
            .collect()
    }

    /// Rebuilds padded bits from decoded Pauli operators (Bob's decoding step).
    pub fn bits_from_paulis(paulis: &[Pauli]) -> Vec<bool> {
        paulis
            .iter()
            .flat_map(|p| {
                let (msb, lsb) = p.to_bits();
                [msb, lsb]
            })
            .collect()
    }

    /// Error rate observed on the check bits of a received bit string relative to this padded
    /// message's check values.
    ///
    /// # Panics
    ///
    /// Panics if `received` has a different length.
    pub fn check_bit_error_rate(&self, received: &[bool]) -> f64 {
        assert_eq!(received.len(), self.len(), "received length mismatch");
        if self.check_positions.is_empty() {
            return 0.0;
        }
        let errors = self
            .check_positions
            .iter()
            .zip(self.check_values.iter())
            .filter(|(&pos, &val)| received[pos] != val)
            .count();
        errors as f64 / self.check_positions.len() as f64
    }

    /// Strips the check bits out of a received bit string, recovering the message bits.
    ///
    /// # Panics
    ///
    /// Panics if `received` has a different length.
    pub fn extract_message(&self, received: &[bool]) -> SecretMessage {
        assert_eq!(received.len(), self.len(), "received length mismatch");
        let bits = received
            .iter()
            .enumerate()
            .filter(|(i, _)| self.check_positions.binary_search(i).is_err())
            .map(|(_, &b)| b)
            .collect();
        SecretMessage::from_bits(bits)
    }

    /// The original secret message (what `extract_message` recovers from an error-free
    /// transmission).
    pub fn message(&self) -> SecretMessage {
        self.extract_message(&self.bits)
    }
}

impl fmt::Display for PaddedMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "m' ({} bits, {} check bits)",
            self.len(),
            self.check_positions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    #[test]
    fn secret_message_constructors() {
        let m = SecretMessage::from_bitstring("1010").unwrap();
        assert_eq!(m.bits(), &[true, false, true, false]);
        assert_eq!(m.to_bitstring(), "1010");
        assert_eq!(m.to_string(), "1010");
        assert!(SecretMessage::from_bitstring("10a1").is_err());
        let r = SecretMessage::random(32, &mut rng());
        assert_eq!(r.len(), 32);
        assert!(!r.is_empty());
    }

    #[test]
    fn text_round_trip() {
        let m = SecretMessage::from_text("Hi");
        assert_eq!(m.len(), 16);
        assert_eq!(m.to_text_lossy(), "Hi");
    }

    #[test]
    fn bit_error_rate() {
        let a = SecretMessage::from_bitstring("1100").unwrap();
        let b = SecretMessage::from_bitstring("1001").unwrap();
        assert!((a.bit_error_rate(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.bit_error_rate(&a), 0.0);
    }

    #[test]
    fn embedding_preserves_message_and_length() {
        let mut r = rng();
        let message = SecretMessage::random(20, &mut r);
        let padded = PaddedMessage::embed(&message, 6, &mut r).unwrap();
        assert_eq!(padded.len(), 26);
        assert_eq!(padded.qubit_len(), 13);
        assert_eq!(padded.check_positions().len(), 6);
        assert_eq!(padded.check_values().len(), 6);
        assert_eq!(padded.message(), message);
        assert!(!padded.is_empty());
        assert!(padded.to_string().contains("check"));
    }

    #[test]
    fn embedding_rejects_odd_total_and_empty_message() {
        let mut r = rng();
        let message = SecretMessage::random(5, &mut r);
        assert!(PaddedMessage::embed(&message, 2, &mut r).is_err());
        let empty = SecretMessage::from_bits(vec![]);
        assert!(PaddedMessage::embed(&empty, 2, &mut r).is_err());
    }

    #[test]
    fn pauli_round_trip() {
        let mut r = rng();
        let message = SecretMessage::random(10, &mut r);
        let padded = PaddedMessage::embed(&message, 4, &mut r).unwrap();
        let paulis = padded.as_paulis();
        assert_eq!(paulis.len(), padded.qubit_len());
        let recovered = PaddedMessage::bits_from_paulis(&paulis);
        assert_eq!(recovered, padded.bits());
    }

    #[test]
    fn check_bit_error_rate_detects_flips() {
        let mut r = rng();
        let message = SecretMessage::random(8, &mut r);
        let padded = PaddedMessage::embed(&message, 4, &mut r).unwrap();
        // Error-free reception.
        assert_eq!(padded.check_bit_error_rate(padded.bits()), 0.0);
        // Flip every check bit.
        let mut corrupted = padded.bits().to_vec();
        for &pos in padded.check_positions() {
            corrupted[pos] = !corrupted[pos];
        }
        assert!((padded.check_bit_error_rate(&corrupted) - 1.0).abs() < 1e-12);
        // Flipping a non-check bit does not affect the check error rate.
        let mut corrupted = padded.bits().to_vec();
        let non_check = (0..padded.len())
            .find(|i| padded.check_positions().binary_search(i).is_err())
            .unwrap();
        corrupted[non_check] = !corrupted[non_check];
        assert_eq!(padded.check_bit_error_rate(&corrupted), 0.0);
    }

    #[test]
    fn extract_message_recovers_payload_despite_check_bit_errors() {
        let mut r = rng();
        let message = SecretMessage::random(8, &mut r);
        let padded = PaddedMessage::embed(&message, 4, &mut r).unwrap();
        let mut corrupted = padded.bits().to_vec();
        for &pos in padded.check_positions() {
            corrupted[pos] = !corrupted[pos];
        }
        assert_eq!(padded.extract_message(&corrupted), message);
    }

    #[test]
    fn from_received_validates() {
        assert!(PaddedMessage::from_received(vec![true, false], vec![0], vec![true]).is_ok());
        assert!(PaddedMessage::from_received(vec![true], vec![3], vec![true]).is_err());
        assert!(PaddedMessage::from_received(vec![true], vec![0], vec![]).is_err());
    }

    #[test]
    fn check_positions_are_sorted_and_within_range() {
        let mut r = rng();
        for _ in 0..20 {
            let message = SecretMessage::random(14, &mut r);
            let padded = PaddedMessage::embed(&message, 6, &mut r).unwrap();
            let pos = padded.check_positions();
            assert!(pos.windows(2).all(|w| w[0] < w[1]));
            assert!(pos.iter().all(|&p| p < padded.len()));
        }
    }

    #[test]
    fn zero_check_bits_is_allowed() {
        let mut r = rng();
        let message = SecretMessage::random(8, &mut r);
        let padded = PaddedMessage::embed(&message, 0, &mut r).unwrap();
        assert_eq!(padded.check_bit_error_rate(padded.bits()), 0.0);
        assert_eq!(padded.message(), message);
    }
}
