//! Session outcome types: the observable vocabulary of a run.
//!
//! The six-phase session orchestration lives in [`crate::engine`]; this module
//! keeps what a finished session *looks like* — [`SessionOutcome`],
//! [`SessionStatus`], [`AbortStage`], [`ResourceUsage`], [`Impersonation`].
//! All execution entry points live on [`crate::engine::SessionEngine`]
//! (callers that thread their own RNG use
//! [`run_with`](crate::engine::SessionEngine::run_with)).

use crate::auth::AuthReport;
use crate::config::SessionConfig;
use crate::di_check::DiCheckReport;
use crate::message::SecretMessage;
use qchannel::classical::Transcript;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which party, if any, is being impersonated by an eavesdropper who does not know the
/// corresponding pre-shared identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Impersonation {
    /// Both parties are legitimate.
    None,
    /// Eve plays Alice (she does not know `id_A`, so she encodes random Paulis on `C_A`).
    OfAlice,
    /// Eve plays Bob (she does not know `id_B`, so she encodes random Paulis on `D_B`).
    OfBob,
}

impl fmt::Display for Impersonation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Impersonation::None => write!(f, "none"),
            Impersonation::OfAlice => write!(f, "Eve impersonates Alice"),
            Impersonation::OfBob => write!(f, "Eve impersonates Bob"),
        }
    }
}

/// The protocol stage at which a session aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortStage {
    /// The first DI security check (after entanglement sharing).
    DiCheck1,
    /// Alice's verification of Bob's identity.
    BobAuthentication,
    /// Bob's verification of Alice's identity.
    AliceAuthentication,
    /// The second DI security check (after transmission).
    DiCheck2,
    /// The final check-bit integrity verification.
    IntegrityCheck,
}

impl fmt::Display for AbortStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortStage::DiCheck1 => write!(f, "DI check round 1"),
            AbortStage::BobAuthentication => write!(f, "Bob authentication"),
            AbortStage::AliceAuthentication => write!(f, "Alice authentication"),
            AbortStage::DiCheck2 => write!(f, "DI check round 2"),
            AbortStage::IntegrityCheck => write!(f, "integrity check"),
        }
    }
}

/// Terminal status of a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionStatus {
    /// Bob received and accepted the message.
    Delivered,
    /// The protocol aborted at the given stage.
    Aborted {
        /// The stage at which the abort occurred.
        stage: AbortStage,
        /// Human-readable reason.
        reason: String,
    },
}

impl SessionStatus {
    /// Returns `true` for a delivered message.
    pub fn is_delivered(&self) -> bool {
        matches!(self, SessionStatus::Delivered)
    }
}

impl fmt::Display for SessionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionStatus::Delivered => write!(f, "delivered"),
            SessionStatus::Aborted { stage, reason } => write!(f, "aborted at {stage}: {reason}"),
        }
    }
}

/// Resource accounting for one session (feeds Table I's cost columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Total EPR pairs consumed (`N + 2l + 2d`).
    pub total_pairs: usize,
    /// Pairs carrying message bits (`N`).
    pub message_pairs: usize,
    /// Pairs carrying identity bits (`2l`).
    pub identity_pairs: usize,
    /// Pairs sacrificed in the two DI checks (`2d`).
    pub check_pairs: usize,
    /// Qubits Alice physically transmitted to Bob through the quantum channel.
    pub transmitted_qubits: usize,
    /// Messages exchanged on the classical channel.
    pub classical_messages: usize,
    /// Data qubits transmitted per secret message bit (1 for this protocol: each transmitted
    /// qubit of a message pair carries two bits, of which one is padding/check overhead in the
    /// worst case; Table I counts the asymptotic cost, `N` qubits for `2N` bits → ½ pair, i.e.
    /// one qubit, per bit).
    pub qubits_per_message_bit: f64,
}

impl ResourceUsage {
    /// The session's planned resource accounting: every field except the
    /// transcript-dependent `classical_messages` (left at zero) is a pure
    /// function of the configuration and the identity length, so Table I's
    /// cost columns can be checked without running a session. A test locks
    /// this arithmetic to the engine's live per-outcome accounting.
    #[must_use]
    pub fn planned(config: &SessionConfig, identity_qubits: usize) -> Self {
        let padded_bits = config.message_bits() + config.check_bits();
        let message_pairs = padded_bits / 2;
        let identity_pairs = 2 * identity_qubits;
        let check_pairs = 2 * config.di_check_pairs();
        let total_pairs = message_pairs + identity_pairs + check_pairs;
        Self {
            total_pairs,
            message_pairs,
            identity_pairs,
            check_pairs,
            // The second DI check draws its pairs from those Bob already
            // holds, so only `d` of the `2d` check pairs cross the channel.
            transmitted_qubits: total_pairs - config.di_check_pairs(),
            classical_messages: 0,
            qubits_per_message_bit: message_pairs as f64 / padded_bits as f64 * 2.0,
        }
    }
}

/// Everything observable about one finished session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// Delivered or aborted (and where / why).
    pub status: SessionStatus,
    /// Report of the first DI check, if it ran.
    pub di_check_round1: Option<DiCheckReport>,
    /// Report of the second DI check, if it ran.
    pub di_check_round2: Option<DiCheckReport>,
    /// Alice's verification of Bob's identity, if it ran.
    pub bob_auth: Option<AuthReport>,
    /// Bob's verification of Alice's identity, if it ran.
    pub alice_auth: Option<AuthReport>,
    /// The secret message Alice attempted to send.
    pub sent_message: SecretMessage,
    /// The message Bob decoded (only on delivery).
    pub received_message: Option<SecretMessage>,
    /// Error rate observed on the revealed check bits (only when decoding ran).
    pub check_bit_error_rate: Option<f64>,
    /// True bit error rate between sent and received message (ground truth, only on delivery).
    pub message_bit_error_rate: Option<f64>,
    /// The full public classical transcript (what Eve gets to see).
    pub transcript: Transcript,
    /// Resource accounting.
    pub resources: ResourceUsage,
}

impl SessionOutcome {
    /// Returns `true` when the message was delivered.
    pub fn is_delivered(&self) -> bool {
        self.status.is_delivered()
    }

    /// Returns `true` when the protocol aborted at the given stage.
    pub fn aborted_at(&self, stage: AbortStage) -> bool {
        matches!(&self.status, SessionStatus::Aborted { stage: s, .. } if *s == stage)
    }

    /// Fraction of message bits delivered correctly (1.0 on a perfect run, `None` if the
    /// session aborted before decoding).
    pub fn message_accuracy(&self) -> Option<f64> {
        self.message_bit_error_rate.map(|e| 1.0 - e)
    }
}

impl fmt::Display for SessionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session {}", self.status)?;
        if let Some(r1) = &self.di_check_round1 {
            write!(f, "; S1={:?}", r1.chsh)?;
        }
        if let Some(r2) = &self.di_check_round2 {
            write!(f, "; S2={:?}", r2.chsh)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SessionConfig;
    use crate::engine::{Scenario, SessionEngine};
    use crate::error::ProtocolError;
    use crate::identity::IdentityPair;
    use qchannel::quantum::NoTap;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn small_config() -> SessionConfig {
        SessionConfig::builder()
            .message_bits(16)
            .check_bits(4)
            .di_check_pairs(220)
            .build()
            .unwrap()
    }

    #[test]
    fn run_with_executes_a_session_under_caller_controlled_rng() {
        // `run_with` is the escape hatch for callers that thread their own
        // RNG: identical streams must produce identical outcomes, and the
        // scenario path accepts the same configuration.
        let identities = IdentityPair::generate(4, &mut rng(21));
        let config = small_config();
        let message = SecretMessage::random(config.message_bits(), &mut rng(22));
        let engine = SessionEngine::default();
        let first = engine
            .run_with(
                &config,
                &identities,
                &message,
                Impersonation::None,
                &mut NoTap,
                &mut rng(23),
            )
            .unwrap();
        let second = engine
            .run_with(
                &config,
                &identities,
                &message,
                Impersonation::None,
                &mut NoTap,
                &mut rng(23),
            )
            .unwrap();
        assert_eq!(first, second);
        assert!(first.is_delivered(), "{}", first.status);
        assert_eq!(first.received_message.as_ref().unwrap(), &message);
        let scenario = Scenario::new(config, identities).with_message(message);
        assert!(engine.run(&scenario).unwrap().is_delivered());
    }

    #[test]
    fn message_length_mismatch_is_an_error() {
        let mut r = rng(5);
        let identities = IdentityPair::generate(3, &mut r);
        let message = SecretMessage::from_bitstring("101").unwrap();
        let err = SessionEngine::default().run_with(
            &small_config(),
            &identities,
            &message,
            Impersonation::None,
            &mut NoTap,
            &mut r,
        );
        assert!(matches!(
            err,
            Err(ProtocolError::MessageLengthMismatch {
                expected: 16,
                actual: 3
            })
        ));
    }

    #[test]
    fn impersonation_flows_through_run_with() {
        let mut r = rng(71);
        let identities = IdentityPair::generate(8, &mut r);
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(64)
            .auth_error_tolerance(0.0)
            .build()
            .unwrap();
        let message = SecretMessage::random(8, &mut r);
        let outcome = SessionEngine::default()
            .run_with(
                &config,
                &identities,
                &message,
                Impersonation::OfBob,
                &mut NoTap,
                &mut r,
            )
            .unwrap();
        assert!(
            outcome.aborted_at(AbortStage::BobAuthentication),
            "{}",
            outcome.status
        );
    }

    #[test]
    fn planned_resources_match_the_live_accounting() {
        // `ResourceUsage::planned` must agree field for field with the
        // engine's per-outcome accounting (up to the transcript-dependent
        // classical message count) — it is what the `table1` binary's
        // campaign path prints.
        let identities = IdentityPair::generate(4, &mut rng(33));
        let config = small_config();
        let scenario = Scenario::new(config.clone(), identities.clone());
        let outcome = SessionEngine::new(33).run(&scenario).unwrap();
        let planned = ResourceUsage::planned(&config, identities.qubit_len());
        let live = ResourceUsage {
            classical_messages: 0,
            ..outcome.resources
        };
        assert_eq!(planned, live);
        assert!(outcome.resources.classical_messages > 0);
    }

    #[test]
    fn abort_stage_and_status_display() {
        assert_eq!(AbortStage::DiCheck1.to_string(), "DI check round 1");
        assert_eq!(Impersonation::OfBob.to_string(), "Eve impersonates Bob");
        assert!(SessionStatus::Delivered.is_delivered());
        let aborted = SessionStatus::Aborted {
            stage: AbortStage::IntegrityCheck,
            reason: "too many errors".into(),
        };
        assert!(!aborted.is_delivered());
        assert!(aborted.to_string().contains("integrity"));
    }
}
