//! End-to-end session orchestration.
//!
//! [`run_session_full`] simulates one complete UA-DI-QSDC run through all six phases of the
//! paper, with hooks for an eavesdropper ([`qchannel::quantum::ChannelTap`]) and for
//! impersonation of either party ([`Impersonation`]). The simpler [`run_session`] /
//! [`run_session_with_message`] wrappers cover the honest case.

use crate::auth::{self, AuthReport};
use crate::config::SessionConfig;
use crate::di_check::{run_di_check, DiCheckReport, DiCheckRound};
use crate::error::ProtocolError;
use crate::identity::IdentityPair;
use crate::message::{PaddedMessage, SecretMessage};
use qchannel::classical::{ClassicalChannel, ClassicalMessage, Party, Transcript};
use qchannel::epr::EprPair;
use qchannel::quantum::{ChannelTap, NoTap, QuantumChannel};
use qsim::bell::BellState;
use qsim::pauli::Pauli;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which party, if any, is being impersonated by an eavesdropper who does not know the
/// corresponding pre-shared identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Impersonation {
    /// Both parties are legitimate.
    None,
    /// Eve plays Alice (she does not know `id_A`, so she encodes random Paulis on `C_A`).
    OfAlice,
    /// Eve plays Bob (she does not know `id_B`, so she encodes random Paulis on `D_B`).
    OfBob,
}

impl fmt::Display for Impersonation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Impersonation::None => write!(f, "none"),
            Impersonation::OfAlice => write!(f, "Eve impersonates Alice"),
            Impersonation::OfBob => write!(f, "Eve impersonates Bob"),
        }
    }
}

/// The protocol stage at which a session aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortStage {
    /// The first DI security check (after entanglement sharing).
    DiCheck1,
    /// Alice's verification of Bob's identity.
    BobAuthentication,
    /// Bob's verification of Alice's identity.
    AliceAuthentication,
    /// The second DI security check (after transmission).
    DiCheck2,
    /// The final check-bit integrity verification.
    IntegrityCheck,
}

impl fmt::Display for AbortStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortStage::DiCheck1 => write!(f, "DI check round 1"),
            AbortStage::BobAuthentication => write!(f, "Bob authentication"),
            AbortStage::AliceAuthentication => write!(f, "Alice authentication"),
            AbortStage::DiCheck2 => write!(f, "DI check round 2"),
            AbortStage::IntegrityCheck => write!(f, "integrity check"),
        }
    }
}

/// Terminal status of a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionStatus {
    /// Bob received and accepted the message.
    Delivered,
    /// The protocol aborted at the given stage.
    Aborted {
        /// The stage at which the abort occurred.
        stage: AbortStage,
        /// Human-readable reason.
        reason: String,
    },
}

impl SessionStatus {
    /// Returns `true` for a delivered message.
    pub fn is_delivered(&self) -> bool {
        matches!(self, SessionStatus::Delivered)
    }
}

impl fmt::Display for SessionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionStatus::Delivered => write!(f, "delivered"),
            SessionStatus::Aborted { stage, reason } => write!(f, "aborted at {stage}: {reason}"),
        }
    }
}

/// Resource accounting for one session (feeds Table I's cost columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Total EPR pairs consumed (`N + 2l + 2d`).
    pub total_pairs: usize,
    /// Pairs carrying message bits (`N`).
    pub message_pairs: usize,
    /// Pairs carrying identity bits (`2l`).
    pub identity_pairs: usize,
    /// Pairs sacrificed in the two DI checks (`2d`).
    pub check_pairs: usize,
    /// Qubits Alice physically transmitted to Bob through the quantum channel.
    pub transmitted_qubits: usize,
    /// Messages exchanged on the classical channel.
    pub classical_messages: usize,
    /// Data qubits transmitted per secret message bit (1 for this protocol: each transmitted
    /// qubit of a message pair carries two bits, of which one is padding/check overhead in the
    /// worst case; Table I counts the asymptotic cost, `N` qubits for `2N` bits → ½ pair, i.e.
    /// one qubit, per bit).
    pub qubits_per_message_bit: f64,
}

/// Everything observable about one finished session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// Delivered or aborted (and where / why).
    pub status: SessionStatus,
    /// Report of the first DI check, if it ran.
    pub di_check_round1: Option<DiCheckReport>,
    /// Report of the second DI check, if it ran.
    pub di_check_round2: Option<DiCheckReport>,
    /// Alice's verification of Bob's identity, if it ran.
    pub bob_auth: Option<AuthReport>,
    /// Bob's verification of Alice's identity, if it ran.
    pub alice_auth: Option<AuthReport>,
    /// The secret message Alice attempted to send.
    pub sent_message: SecretMessage,
    /// The message Bob decoded (only on delivery).
    pub received_message: Option<SecretMessage>,
    /// Error rate observed on the revealed check bits (only when decoding ran).
    pub check_bit_error_rate: Option<f64>,
    /// True bit error rate between sent and received message (ground truth, only on delivery).
    pub message_bit_error_rate: Option<f64>,
    /// The full public classical transcript (what Eve gets to see).
    pub transcript: Transcript,
    /// Resource accounting.
    pub resources: ResourceUsage,
}

impl SessionOutcome {
    /// Returns `true` when the message was delivered.
    pub fn is_delivered(&self) -> bool {
        self.status.is_delivered()
    }

    /// Returns `true` when the protocol aborted at the given stage.
    pub fn aborted_at(&self, stage: AbortStage) -> bool {
        matches!(&self.status, SessionStatus::Aborted { stage: s, .. } if *s == stage)
    }

    /// Fraction of message bits delivered correctly (1.0 on a perfect run, `None` if the
    /// session aborted before decoding).
    pub fn message_accuracy(&self) -> Option<f64> {
        self.message_bit_error_rate.map(|e| 1.0 - e)
    }
}

impl fmt::Display for SessionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session {}", self.status)?;
        if let Some(r1) = &self.di_check_round1 {
            write!(f, "; S1={:?}", r1.chsh)?;
        }
        if let Some(r2) = &self.di_check_round2 {
            write!(f, "; S2={:?}", r2.chsh)?;
        }
        Ok(())
    }
}

/// Runs an honest session with a freshly generated random message of the configured length.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on configuration misuse; protocol aborts are reported inside
/// the [`SessionOutcome`], not as errors.
pub fn run_session<R: Rng>(
    config: &SessionConfig,
    identities: &IdentityPair,
    rng: &mut R,
) -> Result<SessionOutcome, ProtocolError> {
    let message = SecretMessage::random(config.message_bits(), rng);
    run_session_with_message(config, identities, &message, rng)
}

/// Runs an honest session delivering the given message.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on configuration misuse (e.g. message length mismatch).
pub fn run_session_with_message<R: Rng>(
    config: &SessionConfig,
    identities: &IdentityPair,
    message: &SecretMessage,
    rng: &mut R,
) -> Result<SessionOutcome, ProtocolError> {
    let mut tap = NoTap;
    run_session_full(config, identities, message, Impersonation::None, &mut tap, rng)
}

/// Runs a session with full control over the adversarial setting: an arbitrary channel tap
/// (eavesdropper) and optional impersonation of either party.
///
/// # Errors
///
/// Returns a [`ProtocolError`] on configuration misuse; aborts triggered by the adversary are
/// part of the normal [`SessionOutcome`].
pub fn run_session_full<R: Rng>(
    config: &SessionConfig,
    identities: &IdentityPair,
    message: &SecretMessage,
    impersonation: Impersonation,
    tap: &mut dyn ChannelTap,
    rng: &mut R,
) -> Result<SessionOutcome, ProtocolError> {
    if message.len() != config.message_bits() {
        return Err(ProtocolError::MessageLengthMismatch {
            expected: config.message_bits(),
            actual: message.len(),
        });
    }

    let l = identities.qubit_len();
    let d = config.di_check_pairs();
    let padded = PaddedMessage::embed(message, config.check_bits(), rng)?;
    let n_qubits = padded.qubit_len();
    let total_pairs = n_qubits + 2 * l + 2 * d;

    let channel = QuantumChannel::new(config.channel().clone());
    let classical = ClassicalChannel::new();

    let resources = ResourceUsage {
        total_pairs,
        message_pairs: n_qubits,
        identity_pairs: 2 * l,
        check_pairs: 2 * d,
        transmitted_qubits: total_pairs - d,
        classical_messages: 0, // filled in at the end
        qubits_per_message_bit: n_qubits as f64 / padded.len() as f64 * 2.0,
    };

    // Helper to assemble an outcome. The transcript / classical message count is attached by
    // the caller-side closure at every exit point.
    let finish = |status: SessionStatus,
                  r1: Option<DiCheckReport>,
                  r2: Option<DiCheckReport>,
                  bob_auth: Option<AuthReport>,
                  alice_auth: Option<AuthReport>,
                  received: Option<SecretMessage>,
                  check_err: Option<f64>,
                  classical: &ClassicalChannel,
                  mut resources: ResourceUsage| {
        let transcript = classical.snapshot();
        resources.classical_messages = transcript.len();
        let message_bit_error_rate = received
            .as_ref()
            .map(|r| message.bit_error_rate(r));
        SessionOutcome {
            status,
            di_check_round1: r1,
            di_check_round2: r2,
            bob_auth,
            alice_auth,
            sent_message: message.clone(),
            received_message: received,
            check_bit_error_rate: check_err,
            message_bit_error_rate,
            transcript,
            resources,
        }
    };

    // ------------------------------------------------------------------ phase 1: sharing --
    let mut pairs: Vec<EprPair> = Vec::with_capacity(total_pairs);
    for _ in 0..total_pairs {
        let mut pair = EprPair::from_noisy_source(config.channel().device());
        channel.distribute_tapped(&mut pair, tap, rng);
        pairs.push(pair);
    }

    // ------------------------------------------------------- phase 2: DI check round one --
    let mut all_positions: Vec<usize> = (0..total_pairs).collect();
    all_positions.shuffle(rng);
    let check1_positions: Vec<usize> = all_positions[..d].to_vec();
    let remaining_positions: Vec<usize> = all_positions[d..].to_vec();
    classical.send(
        Party::Alice,
        ClassicalMessage::Positions {
            purpose: "di-check-1".into(),
            positions: check1_positions.clone(),
        },
    );
    let mut check1_pairs: Vec<EprPair> = check1_positions
        .iter()
        .map(|&pos| pairs[pos].clone())
        .collect();
    let (report1, records1) = run_di_check(
        DiCheckRound::First,
        &mut check1_pairs,
        config.chsh_abort_threshold(),
        rng,
    );
    classical.send(
        Party::Alice,
        ClassicalMessage::BasisChoices {
            round: 1,
            settings: records1
                .iter()
                .map(|r| (r.alice_setting, r.bob_setting))
                .collect(),
        },
    );
    classical.send(
        Party::Bob,
        ClassicalMessage::CheckOutcomes {
            round: 1,
            outcomes: records1
                .iter()
                .map(|r| (r.alice_outcome.to_bit(), r.bob_outcome.to_bit()))
                .collect(),
        },
    );
    if !report1.passed {
        classical.send(
            Party::Alice,
            ClassicalMessage::Abort {
                reason: format!("first DI check failed: {report1}"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::DiCheck1,
                reason: report1.to_string(),
            },
            Some(report1),
            None,
            None,
            None,
            None,
            None,
            &classical,
            resources,
        ));
    }

    // ----------------------------------------------------------- phase 3: Alice encoding --
    let mut rest = remaining_positions;
    rest.shuffle(rng);
    let check2_positions: Vec<usize> = rest[..d].to_vec();
    let ma_positions: Vec<usize> = rest[d..d + n_qubits].to_vec();
    let ca_positions: Vec<usize> = rest[d + n_qubits..d + n_qubits + l].to_vec();
    let da_positions: Vec<usize> = rest[d + n_qubits + l..d + n_qubits + 2 * l].to_vec();

    let message_paulis = padded.as_paulis();
    for (pauli, &pos) in message_paulis.iter().zip(&ma_positions) {
        pairs[pos].apply_alice_pauli(*pauli);
    }
    // id_A encoding — Eve-as-Alice must guess.
    let ida_paulis: Vec<Pauli> = if impersonation == Impersonation::OfAlice {
        (0..l).map(|_| Pauli::random(rng)).collect()
    } else {
        identities.alice.as_paulis()
    };
    for (pauli, &pos) in ida_paulis.iter().zip(&ca_positions) {
        pairs[pos].apply_alice_pauli(*pauli);
    }
    // Cover operations on D_A.
    let covers: Vec<Pauli> = (0..l).map(|_| Pauli::random(rng)).collect();
    for (cover, &pos) in covers.iter().zip(&da_positions) {
        pairs[pos].apply_alice_pauli(*cover);
    }

    // ------------------------------------------------------------- phase 4: transmission --
    // Alice sends every qubit she still holds (check-2, message, identity and cover blocks).
    for &pos in check2_positions
        .iter()
        .chain(&ma_positions)
        .chain(&ca_positions)
        .chain(&da_positions)
    {
        channel.transmit_tapped(&mut pairs[pos], tap, rng);
    }

    // ---------------------------------------------------------- phase 4b: authentication --
    classical.send(
        Party::Alice,
        ClassicalMessage::Positions {
            purpose: "DA".into(),
            positions: da_positions.clone(),
        },
    );
    // Bob encodes id_B on the partner qubits and announces the Bell results.
    let idb_paulis: Vec<Pauli> = if impersonation == Impersonation::OfBob {
        (0..l).map(|_| Pauli::random(rng)).collect()
    } else {
        identities.bob.as_paulis()
    };
    let mut announced: Vec<BellState> = Vec::with_capacity(l);
    for (pauli, &pos) in idb_paulis.iter().zip(&da_positions) {
        pairs[pos].apply_bob_pauli(*pauli);
        announced.push(pairs[pos].bell_measure(rng).state);
    }
    classical.send(
        Party::Bob,
        ClassicalMessage::BellResults {
            block: "DB-auth".into(),
            results: announced.iter().map(|s| s.encoding_pauli().to_index()).collect(),
        },
    );
    // Alice (the real one) verifies Bob. When Eve impersonates Alice she has no id_B to check
    // against and simply continues, so the abort decision is skipped in that case.
    let bob_report = auth::verify_bob(&announced, &covers, &identities.bob, config.auth_error_tolerance());
    if impersonation != Impersonation::OfAlice && !bob_report.passed() {
        classical.send(
            Party::Alice,
            ClassicalMessage::Abort {
                reason: format!("Bob authentication failed: {bob_report}"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::BobAuthentication,
                reason: bob_report.to_string(),
            },
            Some(report1),
            None,
            Some(bob_report),
            None,
            None,
            None,
            &classical,
            resources,
        ));
    }

    // Alice reveals C_A; Bob verifies id_A. The Bell results are *not* announced.
    classical.send(
        Party::Alice,
        ClassicalMessage::Positions {
            purpose: "CA".into(),
            positions: ca_positions.clone(),
        },
    );
    let mut measured_ca: Vec<BellState> = Vec::with_capacity(l);
    for &pos in &ca_positions {
        measured_ca.push(pairs[pos].bell_measure(rng).state);
    }
    let alice_report =
        auth::verify_alice(&measured_ca, &identities.alice, config.auth_error_tolerance());
    if impersonation != Impersonation::OfBob && !alice_report.passed() {
        classical.send(
            Party::Bob,
            ClassicalMessage::Abort {
                reason: format!("Alice authentication failed: {alice_report}"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::AliceAuthentication,
                reason: alice_report.to_string(),
            },
            Some(report1),
            None,
            Some(bob_report),
            Some(alice_report),
            None,
            None,
            &classical,
            resources,
        ));
    }
    classical.send(
        Party::Bob,
        ClassicalMessage::Ack {
            phase: "authentication".into(),
        },
    );

    // ------------------------------------------------------- phase 5: DI check round two --
    classical.send(
        Party::Alice,
        ClassicalMessage::Positions {
            purpose: "di-check-2".into(),
            positions: check2_positions.clone(),
        },
    );
    let mut check2_pairs: Vec<EprPair> = check2_positions
        .iter()
        .map(|&pos| pairs[pos].clone())
        .collect();
    let (report2, _records2) = run_di_check(
        DiCheckRound::Second,
        &mut check2_pairs,
        config.chsh_abort_threshold(),
        rng,
    );
    classical.send(
        Party::Bob,
        ClassicalMessage::Ack {
            phase: "di-check-2".into(),
        },
    );
    if !report2.passed {
        classical.send(
            Party::Bob,
            ClassicalMessage::Abort {
                reason: format!("second DI check failed: {report2}"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::DiCheck2,
                reason: report2.to_string(),
            },
            Some(report1),
            Some(report2),
            Some(bob_report),
            Some(alice_report),
            None,
            None,
            &classical,
            resources,
        ));
    }

    // ------------------------------------------------------------------ phase 6: decode --
    let mut received_paulis: Vec<Pauli> = Vec::with_capacity(n_qubits);
    for &pos in &ma_positions {
        received_paulis.push(pairs[pos].bell_measure(rng).state.encoding_pauli());
    }
    let received_bits = PaddedMessage::bits_from_paulis(&received_paulis);
    classical.send(
        Party::Alice,
        ClassicalMessage::CheckBitsReveal {
            positions: padded.check_positions().to_vec(),
            values: padded.check_values().to_vec(),
        },
    );
    let check_error = padded.check_bit_error_rate(&received_bits);
    if check_error > config.check_bit_error_tolerance() {
        classical.send(
            Party::Bob,
            ClassicalMessage::Abort {
                reason: format!("check-bit error rate {check_error:.3} exceeds tolerance"),
            },
        );
        return Ok(finish(
            SessionStatus::Aborted {
                stage: AbortStage::IntegrityCheck,
                reason: format!("check-bit error rate {check_error:.3}"),
            },
            Some(report1),
            Some(report2),
            Some(bob_report),
            Some(alice_report),
            None,
            Some(check_error),
            &classical,
            resources,
        ));
    }
    let received_message = padded.extract_message(&received_bits);
    classical.send(
        Party::Bob,
        ClassicalMessage::Ack {
            phase: "message-received".into(),
        },
    );

    Ok(finish(
        SessionStatus::Delivered,
        Some(report1),
        Some(report2),
        Some(bob_report),
        Some(alice_report),
        Some(received_message),
        Some(check_error),
        &classical,
        resources,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noise::DeviceModel;
    use qchannel::quantum::ChannelSpec;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn small_config() -> SessionConfig {
        SessionConfig::builder()
            .message_bits(16)
            .check_bits(4)
            .di_check_pairs(220)
            .build()
            .unwrap()
    }

    #[test]
    fn honest_ideal_session_delivers_the_exact_message() {
        let mut r = rng(11);
        let identities = IdentityPair::generate(5, &mut r);
        let config = small_config();
        let message = SecretMessage::from_bitstring("1010011100101101").unwrap();
        let outcome = run_session_with_message(&config, &identities, &message, &mut r).unwrap();
        assert!(outcome.is_delivered(), "{}", outcome.status);
        assert_eq!(outcome.received_message.as_ref().unwrap(), &message);
        assert_eq!(outcome.message_bit_error_rate, Some(0.0));
        assert_eq!(outcome.check_bit_error_rate, Some(0.0));
        assert_eq!(outcome.message_accuracy(), Some(1.0));
        assert!(outcome.di_check_round1.as_ref().unwrap().passed);
        assert!(outcome.di_check_round2.as_ref().unwrap().passed);
        assert!(outcome.bob_auth.as_ref().unwrap().passed());
        assert!(outcome.alice_auth.as_ref().unwrap().passed());
        assert!(!outcome.transcript.contains_abort());
        assert!(outcome.resources.classical_messages > 5);
        assert_eq!(
            outcome.resources.total_pairs,
            config.total_pairs(identities.qubit_len())
        );
    }

    #[test]
    fn random_message_session_delivers() {
        let mut r = rng(23);
        let identities = IdentityPair::generate(4, &mut r);
        let outcome = run_session(&small_config(), &identities, &mut r).unwrap();
        assert!(outcome.is_delivered());
        assert_eq!(
            outcome.sent_message.bits(),
            outcome.received_message.as_ref().unwrap().bits()
        );
    }

    #[test]
    fn short_noisy_channel_still_delivers_with_high_accuracy() {
        let mut r = rng(37);
        let identities = IdentityPair::generate(5, &mut r);
        let config = SessionConfig::builder()
            .message_bits(24)
            .check_bits(8)
            .di_check_pairs(220)
            .channel(ChannelSpec::noisy_identity_chain(
                10,
                DeviceModel::ibm_brisbane_like(),
            ))
            .build()
            .unwrap();
        let outcome = run_session(&config, &identities, &mut r).unwrap();
        assert!(outcome.is_delivered(), "{}", outcome.status);
        assert!(outcome.message_accuracy().unwrap() > 0.85);
        let s2 = outcome.di_check_round2.unwrap().chsh.unwrap();
        assert!(s2 > 2.0, "noisy but honest channel keeps S2 > 2, got {s2}");
    }

    #[test]
    fn message_length_mismatch_is_an_error() {
        let mut r = rng(5);
        let identities = IdentityPair::generate(3, &mut r);
        let message = SecretMessage::from_bitstring("101").unwrap();
        let err = run_session_with_message(&small_config(), &identities, &message, &mut r);
        assert!(matches!(
            err,
            Err(ProtocolError::MessageLengthMismatch { expected: 16, actual: 3 })
        ));
    }

    #[test]
    fn impersonating_bob_is_caught_by_alice() {
        let mut r = rng(71);
        let identities = IdentityPair::generate(8, &mut r);
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(64)
            .auth_error_tolerance(0.0)
            .build()
            .unwrap();
        let message = SecretMessage::random(8, &mut r);
        let mut tap = NoTap;
        let outcome = run_session_full(
            &config,
            &identities,
            &message,
            Impersonation::OfBob,
            &mut tap,
            &mut r,
        )
        .unwrap();
        assert!(outcome.aborted_at(AbortStage::BobAuthentication), "{}", outcome.status);
        assert!(outcome.transcript.contains_abort());
        assert!(outcome.received_message.is_none());
    }

    #[test]
    fn impersonating_alice_is_caught_by_bob() {
        let mut r = rng(72);
        let identities = IdentityPair::generate(8, &mut r);
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(64)
            .auth_error_tolerance(0.0)
            .build()
            .unwrap();
        let message = SecretMessage::random(8, &mut r);
        let mut tap = NoTap;
        let outcome = run_session_full(
            &config,
            &identities,
            &message,
            Impersonation::OfAlice,
            &mut tap,
            &mut r,
        )
        .unwrap();
        assert!(
            outcome.aborted_at(AbortStage::AliceAuthentication),
            "{}",
            outcome.status
        );
        assert!(outcome.received_message.is_none());
    }

    #[test]
    fn channel_tap_that_destroys_entanglement_triggers_second_check_abort() {
        /// A crude "measure everything in the Z basis" interceptor.
        struct ZMeasureTap;
        impl ChannelTap for ZMeasureTap {
            fn on_transmit(&mut self, pair: &mut EprPair, _rng: &mut dyn rand::RngCore) {
                noise::KrausChannel::phase_flip(0.5).apply(pair.density_mut(), &[0]);
            }
            fn name(&self) -> &str {
                "z-measure"
            }
        }
        let mut r = rng(99);
        let identities = IdentityPair::generate(4, &mut r);
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(220)
            .auth_error_tolerance(0.6)
            .build()
            .unwrap();
        let message = SecretMessage::random(8, &mut r);
        let mut tap = ZMeasureTap;
        let outcome = run_session_full(
            &config,
            &identities,
            &message,
            Impersonation::None,
            &mut tap,
            &mut r,
        )
        .unwrap();
        assert!(
            !outcome.is_delivered(),
            "a channel that destroys coherence must be detected, got {}",
            outcome.status
        );
        // Round 1 ran before transmission, so it passed; the abort happened later.
        assert!(outcome.di_check_round1.as_ref().unwrap().passed);
        assert!(!outcome.aborted_at(AbortStage::DiCheck1));
    }

    #[test]
    fn transcript_never_contains_message_or_alice_identity_results() {
        let mut r = rng(123);
        let identities = IdentityPair::generate(4, &mut r);
        let outcome = run_session(&small_config(), &identities, &mut r).unwrap();
        // The only Bell results on the wire are the covered DB-auth block.
        let bell_msgs = outcome.transcript.messages_of_kind("bell-results");
        assert_eq!(bell_msgs.len(), 1);
        // No transcript message kind carries message bits; the decoded message only lives in
        // the outcome struct (Bob's private memory).
        for entry in outcome.transcript.iter() {
            assert_ne!(entry.message.kind(), "message");
        }
    }

    #[test]
    fn abort_stage_and_status_display() {
        assert_eq!(AbortStage::DiCheck1.to_string(), "DI check round 1");
        assert_eq!(Impersonation::OfBob.to_string(), "Eve impersonates Bob");
        assert!(SessionStatus::Delivered.is_delivered());
        let aborted = SessionStatus::Aborted {
            stage: AbortStage::IntegrityCheck,
            reason: "too many errors".into(),
        };
        assert!(!aborted.is_delivered());
        assert!(aborted.to_string().contains("integrity"));
    }
}
