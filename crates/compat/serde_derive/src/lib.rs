//! Minimal stand-in for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for the item shapes this workspace uses (named-field structs, and enums
//! with unit, named-field, and tuple variants; no generics).
//!
//! The generated code targets the sibling `serde` shim's value-tree model:
//! `Serialize::to_value` / `Deserialize::from_value`.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

// ------------------------------------------------------------------- parsing --

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            other => {
                panic!("serde shim derive: struct `{name}` must use named fields, found {other:?}")
            }
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Item { name, shape }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // `#`
                *pos += 1; // the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // `pub(crate)` and friends
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists, tracking `<`/`>` depth so commas
/// inside generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                panic!("serde shim derive: expected `:` after field `{field}`, found {other:?}")
            }
        }
        fields.push(field);
        let mut angle_depth = 0i32;
        while let Some(token) = tokens.get(pos) {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Consume the trailing comma, if any.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for (i, token) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                // A trailing comma does not start a new field.
                ',' if angle_depth == 0 && i + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

// ---------------------------------------------------------------- generation --

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
                        ),
                        VariantKind::Named(fields) => {
                            let bindings = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => ::serde::Value::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let bindings: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let values: Vec<String> = bindings
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))])",
                                bindings.join(", "),
                                values.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(__value.get_field(\"{f}\")?)?")
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("\"{vname}\" => Ok({name}::{vname})"));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     __inner.get_field(\"{f}\")?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {} }})",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?))"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => {{ let __items = __inner.as_seq()?; \
                             if __items.len() != {n} {{ return Err(::serde::Error::new(\
                             \"wrong tuple arity for variant {vname}\")); }} \
                             Ok({name}::{vname}({})) }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let unit_match = format!(
                "match __tag.as_str() {{ {}{} _ => Err(::serde::Error::new(format!(\
                 \"unknown variant `{{}}` for {name}\", __tag))) }}",
                unit_arms.join(", "),
                if unit_arms.is_empty() { "" } else { "," }
            );
            let tagged_match = format!(
                "match __tag.as_str() {{ {}{} _ => Err(::serde::Error::new(format!(\
                 \"unknown variant `{{}}` for {name}\", __tag))) }}",
                tagged_arms.join(", "),
                if tagged_arms.is_empty() { "" } else { "," }
            );
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__tag) => {unit_match},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 {tagged_match}\n\
                 }},\n\
                 __other => Err(::serde::Error::new(format!(\
                 \"expected variant of {name}, got {{}}\", __other.kind())))\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }}\n\
         }}"
    )
}
