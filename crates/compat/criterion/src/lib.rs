//! Minimal, dependency-free stand-in for the subset of the `criterion` bench
//! framework this workspace uses.
//!
//! Benches compiled against this shim run each benchmark closure for a small
//! number of timed samples and print mean / min wall-clock times. The point is
//! to keep `cargo bench` runnable and the relative numbers meaningful, not to
//! reproduce criterion's statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 10, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// True when the bench binary was invoked with `--test` (as `cargo bench --
/// --test` does): each benchmark then runs exactly once, untimed, so CI can
/// verify every bench still compiles and executes without paying for samples.
fn test_mode() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    if test_mode() {
        let mut smoke = Bencher::default();
        f(&mut smoke);
        println!("Testing {id}: ok");
        return;
    }
    // One warm-up run that is not timed.
    let mut warmup = Bencher::default();
    f(&mut warmup);

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut iterations = 0u64;
    for _ in 0..samples {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        if bencher.iterations > 0 {
            let per_iter = bencher.elapsed / bencher.iterations as u32;
            total += per_iter;
            min = min.min(per_iter);
            iterations += bencher.iterations;
        }
    }
    if iterations == 0 {
        println!("{id}: no iterations recorded");
        return;
    }
    let mean = total / samples as u32;
    println!("{id}: mean {mean:?}, min {min:?} ({samples} samples)");
}

/// Declares a group of benchmark functions runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
