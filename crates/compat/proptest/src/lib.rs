//! Minimal, dependency-free stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! Strategies are simple deterministic samplers over the workspace's `rand`
//! shim; the [`proptest!`] macro expands each property into a plain `#[test]`
//! that draws [`CASES`] random cases from a seed derived from the test name,
//! so failures are reproducible run to run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Number of random cases each property is checked against.
pub const CASES: usize = 64;

/// The RNG handed to strategies by the harness.
pub type TestRng = StdRng;

/// Creates the deterministic RNG for one property, seeded from its name.
pub fn test_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name keeps seeds stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred` (regenerating up to a bounded
    /// number of times).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.reason
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Uniform choice among boxed alternative strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange(exact..exact + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        SizeRange(range)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<T>` with element strategy `S` (see [`vec()`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::collection;
}

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy,
    };
}

/// Declares property tests; each expands to a `#[test]` running [`CASES`]
/// random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::test_rng(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    let ($($arg,)*) = (
                        $($crate::Strategy::generate(&($strategy), &mut __proptest_rng),)*
                    );
                    $body
                }
            }
        )*
    };
}

/// Asserts a property-level condition.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts property-level equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($option) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn filter_and_map_compose() {
        let strategy = (0u64..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        let mut rng = crate::test_rng("filter_and_map_compose");
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!(v % 2 == 1 && v < 101);
        }
    }

    #[test]
    fn oneof_hits_every_option() {
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_rng("oneof_hits_every_option");
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strategy.generate(&mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #[test]
        fn macro_smoke(a in 0usize..10, v in collection::vec(0u8..4, 1..5)) {
            prop_assert!(a < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(v.iter().filter(|&&b| b > 3).count(), 0);
        }
    }
}
