//! Minimal, dependency-free stand-in for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors a
//! tiny deterministic implementation instead: [`rngs::StdRng`] is a
//! xoshiro256\*\* generator seeded through SplitMix64, which is more than enough
//! statistical quality for the protocol simulations while staying reproducible
//! across platforms and releases (the real `rand` explicitly does *not*
//! guarantee value stability of `StdRng` across versions; this shim does, which
//! the deterministic-replay tests rely on).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Returns a uniformly distributed `u64` below `bound` (rejection sampling).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let max_valid = (u64::MAX / bound) * bound;
    loop {
        let v = rng.next_u64();
        if v < max_valid {
            return v % bound;
        }
    }
}

/// Types that can be sampled uniformly from their "natural" distribution
/// (the shim's equivalent of `rand::distributions::Standard`).
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_sample_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types that can produce a uniform sample (the shim's equivalent of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full integer range: every word is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step; used for seeding and seed derivation.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256\*\*).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            Self { s }
        }
    }
}

/// Random helpers for slices.
pub mod seq {
    use super::{uniform_u64_below, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4u8) as usize] = true;
            let v = rng.gen_range(1..=2usize);
            assert!((1..=2).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_samples_are_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..4000).filter(|_| rng.gen::<bool>()).count();
        assert!((1700..2300).contains(&heads), "got {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _: f64 = dyn_rng.gen();
        let _: bool = dyn_rng.gen();
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
