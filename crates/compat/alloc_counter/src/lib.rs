//! A counting global allocator for allocation-regression tests.
//!
//! The workspace's hot paths promise *zero steady-state heap allocations*
//! (see the kernel architecture notes in the repo root). Promises rot unless
//! a test can observe them, and observing the allocator requires a global
//! hook — which is why this shim lives in its own crate: it is the only
//! place in the workspace allowed to use `unsafe`, and only for the two
//! `GlobalAlloc` forwarding calls.
//!
//! # Usage
//!
//! ```rust,ignore
//! use alloc_counter::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! let before = CountingAllocator::allocations();
//! hot_path();
//! assert_eq!(CountingAllocator::allocations() - before, 0);
//! ```
//!
//! Only one `#[global_allocator]` may exist per binary, so tests that use
//! this live in dedicated integration-test files, not unit-test modules.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] that forwards to the system allocator and counts every
/// call. Counters are process-wide (all threads share them).
pub struct CountingAllocator;

impl CountingAllocator {
    /// Creates the allocator (a zero-sized handle; the counters are static).
    pub const fn new() -> Self {
        CountingAllocator
    }

    /// Total number of allocation calls so far.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total number of deallocation calls so far.
    pub fn deallocations() -> u64 {
        DEALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Total bytes requested from the allocator so far.
    pub fn bytes_allocated() -> u64 {
        BYTES_ALLOCATED.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: all allocator calls forward verbatim to `System`, which upholds
// the `GlobalAlloc` contract; the counter updates are side-effect-only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}
