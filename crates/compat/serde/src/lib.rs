//! Minimal, dependency-free stand-in for the subset of `serde` this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors a
//! small value-tree serialization framework with the same trait and derive
//! names: `#[derive(Serialize, Deserialize)]` (provided by the sibling
//! `serde_derive` proc-macro crate) plus a JSON text format in [`json`].
//!
//! Representation choices mirror serde's defaults closely enough for this
//! workspace: structs become maps, unit enum variants become strings, and
//! data-carrying variants become externally tagged single-entry maps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A serialized value tree (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / `None` / JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `Int`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// The `null` value, for returning references to missing fields.
pub const NULL: Value = Value::Null;

impl Value {
    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Looks up a field in a map value; missing fields read as [`NULL`] so
    /// `Option` fields deserialize to `None`.
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(Error::new(format!(
                "expected map with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a sequence.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::new(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::new(format!("expected string, got {}", other.kind()))),
        }
    }

    /// Interprets the value as an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::UInt(v) => Ok(v),
            Value::Int(v) if v >= 0 => Ok(v as u64),
            ref other => Err(Error::new(format!(
                "expected unsigned integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a signed integer.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::Int(v) => Ok(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Ok(v as i64),
            ref other => Err(Error::new(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }

    /// Interprets the value as a float (integers coerce; the strings `"inf"`,
    /// `"-inf"` and `"NaN"` encode the non-finite values JSON cannot express).
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::Float(v) => Ok(v),
            Value::Int(v) => Ok(v as f64),
            Value::UInt(v) => Ok(v as f64),
            Value::Str(ref s) => match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "NaN" => Ok(f64::NAN),
                _ => Err(Error::new(format!("expected number, got string `{s}`"))),
            },
            ref other => Err(Error::new(format!("expected number, got {}", other.kind()))),
        }
    }

    /// Interprets the value as a bool.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match *self {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from the value data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- primitives --

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64()?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64()?;
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64()
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------- containers --

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq()?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// JSON text format over the [`Value`] data model.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serializes a value to a JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &value.to_value());
        out
    }

    /// Deserializes a value from a JSON string.
    pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
        let value = parse(input)?;
        T::from_value(&value)
    }

    /// Parses JSON text into a [`Value`] tree.
    pub fn parse(input: &str) -> Result<Value, Error> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(Error::new("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn write_value(out: &mut String, value: &Value) {
        match value {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v) => {
                if v.is_finite() {
                    // `{:?}` always keeps a decimal point or exponent, so the
                    // value round-trips as a float.
                    let _ = write!(out, "{v:?}");
                } else if v.is_nan() {
                    // JSON has no non-finite numbers; encode them as tagged
                    // strings that `Value::as_f64` maps back.
                    out.push_str("\"NaN\"");
                } else if *v > 0.0 {
                    out.push_str("\"inf\"");
                } else {
                    out.push_str("\"-inf\"");
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_value(out, item);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (key, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    write_value(out, item);
                }
                out.push('}');
            }
        }
    }

    fn write_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_whitespace(&mut self) {
            while self.pos < self.bytes.len()
                && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, byte: u8) -> Result<(), Error> {
            if self.peek() == Some(byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected `{}` at byte {}",
                    byte as char, self.pos
                )))
            }
        }

        fn eat_literal(&mut self, literal: &str) -> bool {
            if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
                self.pos += literal.len();
                true
            } else {
                false
            }
        }

        fn parse_value(&mut self) -> Result<Value, Error> {
            self.skip_whitespace();
            match self.peek() {
                None => Err(Error::new("unexpected end of JSON input")),
                Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
                Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
                Some(b'"') => self.parse_string().map(Value::Str),
                Some(b'[') => self.parse_seq(),
                Some(b'{') => self.parse_map(),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
                Some(c) => Err(Error::new(format!(
                    "unexpected character `{}` at byte {}",
                    c as char, self.pos
                ))),
            }
        }

        fn parse_seq(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_whitespace();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(self.parse_value()?);
                self.skip_whitespace();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::new("expected `,` or `]` in sequence")),
                }
            }
        }

        fn parse_map(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_whitespace();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                self.skip_whitespace();
                let key = self.parse_string()?;
                self.skip_whitespace();
                self.expect(b':')?;
                let value = self.parse_value()?;
                entries.push((key, value));
                self.skip_whitespace();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::new("expected `,` or `}` in map")),
                }
            }
        }

        fn parse_string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            let raw = std::str::from_utf8(&self.bytes[self.pos..])
                .map_err(|_| Error::new("invalid UTF-8 in JSON input"))?;
            let mut chars = raw.char_indices();
            while let Some((offset, c)) = chars.next() {
                match c {
                    '"' => {
                        self.pos += offset + 1;
                        return Ok(out);
                    }
                    '\\' => match chars.next() {
                        Some((_, '"')) => out.push('"'),
                        Some((_, '\\')) => out.push('\\'),
                        Some((_, '/')) => out.push('/'),
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 'r')) => out.push('\r'),
                        Some((_, 't')) => out.push('\t'),
                        Some((_, 'b')) => out.push('\u{8}'),
                        Some((_, 'f')) => out.push('\u{c}'),
                        Some((start, 'u')) => {
                            let hex = raw
                                .get(start + 1..start + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            // Skip the four hex digits.
                            for _ in 0..4 {
                                chars.next();
                            }
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    },
                    c => out.push(c),
                }
            }
            Err(Error::new("unterminated string"))
        }

        fn parse_number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut is_float = false;
            while let Some(c) = self.peek() {
                match c {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::new("invalid number"))?;
            if is_float {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid float literal `{text}`")))
            } else if let Ok(v) = text.parse::<i64>() {
                Ok(Value::Int(v))
            } else if let Ok(v) = text.parse::<u64>() {
                Ok(Value::UInt(v))
            } else {
                Err(Error::new(format!("invalid integer literal `{text}`")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(json::from_str::<u64>(&json::to_string(&42u64)).unwrap(), 42);
        assert_eq!(json::from_str::<i64>(&json::to_string(&-7i64)).unwrap(), -7);
        assert_eq!(
            json::from_str::<f64>(&json::to_string(&1.5f64)).unwrap(),
            1.5
        );
        assert_eq!(
            json::from_str::<String>(&json::to_string("hi \"there\"\n")).unwrap(),
            "hi \"there\"\n"
        );
        assert_eq!(
            json::from_str::<Option<bool>>(&json::to_string(&None::<bool>)).unwrap(),
            None
        );
        assert_eq!(
            json::from_str::<Vec<(u8, u8)>>(&json::to_string(&vec![(1u8, 2u8)])).unwrap(),
            vec![(1, 2)]
        );
    }

    #[test]
    fn map_round_trip_preserves_entries() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2u64);
        let back: BTreeMap<String, u64> = json::from_str(&json::to_string(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for v in [0.0, -0.0, 1.0, 2.828_427, 1e-12, 6.02e23, -3.5] {
            let s = json::to_string(&v);
            assert_eq!(json::from_str::<f64>(&s).unwrap(), v, "via {s}");
        }
    }

    #[test]
    fn missing_fields_read_as_null() {
        let v = json::parse(r#"{"a": 1}"#).unwrap();
        assert_eq!(v.get_field("missing").unwrap(), &Value::Null);
        assert_eq!(
            Option::<u64>::from_value(v.get_field("missing").unwrap()).unwrap(),
            None
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("12 34").is_err());
        assert!(json::from_str::<u64>("-3").is_err());
    }
}
