//! The EPR-pair working unit.
//!
//! Every resource the protocol consumes is one `|Φ+⟩` pair: Alice holds the first qubit (the
//! one that later flies through the quantum channel), Bob holds the second. [`EprPair`] wraps
//! a two-qubit density matrix with that fixed role assignment and exposes exactly the
//! operations the protocol needs: Pauli encoding on either half, basis measurements for the
//! DI check, Bell-state measurement for decoding, and fidelity bookkeeping.

use noise::DeviceModel;
use qsim::bell::{bell_measure_density, BellOutcome, BellState};
use qsim::density::DensityMatrix;
use qsim::measurement::MeasurementOutcome;
use qsim::pauli::Pauli;
use qsim::statevector::StateVector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of Alice's qubit inside an [`EprPair`].
pub const ALICE_QUBIT: usize = 0;
/// Index of Bob's qubit inside an [`EprPair`].
pub const BOB_QUBIT: usize = 1;

/// One shared `|Φ+⟩` pair (possibly degraded by noise or an eavesdropper).
///
/// # Examples
///
/// ```rust
/// use qchannel::epr::EprPair;
/// use qsim::pauli::Pauli;
/// use qsim::bell::BellState;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut pair = EprPair::ideal();
/// pair.apply_alice_pauli(Pauli::X);
/// let outcome = pair.bell_measure(&mut rng);
/// assert_eq!(outcome.state, BellState::PsiPlus);
/// ```
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct EprPair {
    rho: DensityMatrix,
}

impl Clone for EprPair {
    fn clone(&self) -> Self {
        Self {
            rho: self.rho.clone(),
        }
    }

    /// Copies `source` into `self`, reusing `self`'s density buffer — the
    /// allocation-free reset behind [`EprPair::reset_ideal`] and the
    /// engine's per-trial pair pool.
    fn clone_from(&mut self, source: &Self) {
        self.rho.clone_from(&source.rho);
    }
}

fn ideal_rho() -> &'static DensityMatrix {
    static IDEAL: std::sync::OnceLock<DensityMatrix> = std::sync::OnceLock::new();
    IDEAL.get_or_init(|| DensityMatrix::from_statevector(&BellState::PhiPlus.statevector()))
}

impl EprPair {
    /// Creates a perfect `|Φ+⟩` pair.
    ///
    /// The protocol emits one pair per transmitted qubit, so the reference
    /// state is built once per process and cloned thereafter.
    pub fn ideal() -> Self {
        Self {
            rho: ideal_rho().clone(),
        }
    }

    /// Resets this pair to the perfect `|Φ+⟩` state in place, reusing the
    /// existing density buffer. Equivalent to `*self = EprPair::ideal()`
    /// without the allocation — the emission hot path for pooled pairs.
    pub fn reset_ideal(&mut self) {
        self.rho.clone_from(ideal_rho());
    }

    /// Creates a pair emitted by a noisy source: a perfect `|Φ+⟩` degraded by the device's
    /// two-qubit gate channel and per-qubit state-preparation error (a simple but honest model
    /// of an imperfect entanglement source).
    pub fn from_noisy_source(device: &DeviceModel) -> Self {
        let mut pair = Self::ideal();
        if !device.is_ideal() {
            device
                .two_qubit_gate_channel()
                .apply(&mut pair.rho, &[ALICE_QUBIT, BOB_QUBIT]);
            let prep = device.state_prep_channel();
            prep.apply(&mut pair.rho, &[ALICE_QUBIT]);
            prep.apply(&mut pair.rho, &[BOB_QUBIT]);
        }
        pair
    }

    /// Wraps an existing two-qubit density matrix as a pair.
    ///
    /// # Panics
    ///
    /// Panics if the density matrix is not exactly two qubits.
    pub fn from_density(rho: DensityMatrix) -> Self {
        assert_eq!(rho.num_qubits(), 2, "an EPR pair is exactly two qubits");
        Self { rho }
    }

    /// Builds a (separable) pair of fresh single qubits in the state `|a⟩ ⊗ |b⟩` — what a
    /// man-in-the-middle attacker substitutes for the real pair.
    pub fn separable(alice_bit: u8, bob_bit: u8) -> Self {
        let mut state = StateVector::new(2);
        if alice_bit == 1 {
            state.apply_single(&qsim::gates::pauli_x(), ALICE_QUBIT);
        }
        if bob_bit == 1 {
            state.apply_single(&qsim::gates::pauli_x(), BOB_QUBIT);
        }
        Self {
            rho: DensityMatrix::from_statevector(&state),
        }
    }

    /// Immutable view of the underlying density matrix.
    pub fn density(&self) -> &DensityMatrix {
        &self.rho
    }

    /// Mutable view of the underlying density matrix (used by eavesdropper taps).
    pub fn density_mut(&mut self) -> &mut DensityMatrix {
        &mut self.rho
    }

    /// Consumes the pair and returns the density matrix.
    pub fn into_density(self) -> DensityMatrix {
        self.rho
    }

    /// Applies a Pauli encoding operator to Alice's qubit (message / identity encoding).
    pub fn apply_alice_pauli(&mut self, pauli: Pauli) {
        pauli.apply_to_density(&mut self.rho, ALICE_QUBIT);
    }

    /// Applies a Pauli encoding operator to Bob's qubit (Bob encoding `id_B` on `D_B`).
    pub fn apply_bob_pauli(&mut self, pauli: Pauli) {
        pauli.apply_to_density(&mut self.rho, BOB_QUBIT);
    }

    /// Applies an arbitrary single-qubit unitary to Alice's qubit.
    pub fn apply_alice_unitary(&mut self, gate: &mathkit::CMatrix) {
        self.rho.apply_single(gate, ALICE_QUBIT);
    }

    /// Applies an arbitrary single-qubit unitary to Bob's qubit.
    pub fn apply_bob_unitary(&mut self, gate: &mathkit::CMatrix) {
        self.rho.apply_single(gate, BOB_QUBIT);
    }

    /// Measures Alice's qubit in the basis `B(θ)` (DI-check measurement), collapsing the pair.
    pub fn measure_alice_in_basis<R: Rng + ?Sized>(
        &mut self,
        theta: f64,
        rng: &mut R,
    ) -> MeasurementOutcome {
        self.rho.measure_in_basis(ALICE_QUBIT, theta, rng)
    }

    /// Measures Bob's qubit in the basis `B(θ)` (DI-check measurement), collapsing the pair.
    pub fn measure_bob_in_basis<R: Rng + ?Sized>(
        &mut self,
        theta: f64,
        rng: &mut R,
    ) -> MeasurementOutcome {
        self.rho.measure_in_basis(BOB_QUBIT, theta, rng)
    }

    /// Measures Alice's half in `B(θ_a)` and then Bob's half in `B(θ_b)` —
    /// one CHSH record. Equivalent to
    /// [`EprPair::measure_alice_in_basis`] followed by
    /// [`EprPair::measure_bob_in_basis`] (same two RNG draws, same
    /// distribution), via the fused two-qubit kernel
    /// [`DensityMatrix::measure_two_in_bases`].
    pub fn measure_both_in_bases<R: Rng + ?Sized>(
        &mut self,
        theta_a: f64,
        theta_b: f64,
        rng: &mut R,
    ) -> (MeasurementOutcome, MeasurementOutcome) {
        self.rho
            .measure_two_in_bases(ALICE_QUBIT, theta_a, BOB_QUBIT, theta_b, rng)
    }

    /// Performs a Bell-state measurement across the two halves (Bob's decoding measurement).
    pub fn bell_measure<R: Rng + ?Sized>(&mut self, rng: &mut R) -> BellOutcome {
        bell_measure_density(&mut self.rho, ALICE_QUBIT, BOB_QUBIT, rng)
    }

    /// Measures both halves in the computational basis (used by some attack strategies).
    pub fn measure_computational<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (u8, u8) {
        self.rho
            .measure_two_computational(ALICE_QUBIT, BOB_QUBIT, rng)
    }

    /// Fidelity of the pair with the ideal `|Φ+⟩` state.
    pub fn fidelity_phi_plus(&self) -> f64 {
        self.rho
            .fidelity_with_pure(&BellState::PhiPlus.statevector())
    }

    /// Fidelity of the pair with an arbitrary Bell state.
    pub fn fidelity_with(&self, bell: BellState) -> f64 {
        self.rho.fidelity_with_pure(&bell.statevector())
    }

    /// Purity of the two-qubit state.
    pub fn purity(&self) -> f64 {
        self.rho.purity()
    }

    /// Returns `true` when the reduced state of either half is (close to) maximally mixed —
    /// a quick entanglement sanity check for tests.
    pub fn halves_look_maximally_mixed(&self, tol: f64) -> bool {
        let a = self.rho.partial_trace(&[ALICE_QUBIT]);
        let b = self.rho.partial_trace(&[BOB_QUBIT]);
        (a.purity() - 0.5).abs() <= tol && (b.purity() - 0.5).abs() <= tol
    }
}

impl Default for EprPair {
    fn default() -> Self {
        Self::ideal()
    }
}

impl fmt::Display for EprPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EprPair(F(Φ+)={:.4}, purity={:.4})",
            self.fidelity_phi_plus(),
            self.purity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn ideal_pair_is_phi_plus() {
        let pair = EprPair::ideal();
        assert!((pair.fidelity_phi_plus() - 1.0).abs() < 1e-10);
        assert!((pair.purity() - 1.0).abs() < 1e-10);
        assert!(pair.halves_look_maximally_mixed(1e-9));
        assert_eq!(EprPair::default(), pair);
    }

    #[test]
    fn noisy_source_pairs_are_slightly_degraded() {
        let pair = EprPair::from_noisy_source(&DeviceModel::ibm_brisbane_like());
        let f = pair.fidelity_phi_plus();
        assert!(f < 1.0, "noisy source must not be perfect");
        assert!(f > 0.97, "but the degradation should be small, got {f}");
        let ideal = EprPair::from_noisy_source(&DeviceModel::ideal());
        assert!((ideal.fidelity_phi_plus() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pauli_encoding_and_bell_measurement_round_trip() {
        let mut r = rng();
        for pauli in Pauli::ALL {
            let mut pair = EprPair::ideal();
            pair.apply_alice_pauli(pauli);
            let outcome = pair.bell_measure(&mut r);
            assert_eq!(outcome.state.encoding_pauli(), pauli);
        }
    }

    #[test]
    fn bob_side_encoding_composes_with_alice_side() {
        // Applying P on Alice's half and Q on Bob's half of Φ+ yields the Bell state of the
        // composed operator (because Q applied to Bob's half of Φ+ equals Qᵀ on Alice's half,
        // and our alphabet is real so Qᵀ ~ Q up to the global sign of iσy).
        let mut r = rng();
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let mut pair = EprPair::ideal();
                pair.apply_alice_pauli(a);
                pair.apply_bob_pauli(b);
                let outcome = pair.bell_measure(&mut r);
                assert_eq!(outcome.state.encoding_pauli(), a.compose(b));
            }
        }
    }

    #[test]
    fn separable_pairs_have_no_entanglement() {
        let pair = EprPair::separable(0, 1);
        assert!(!pair.halves_look_maximally_mixed(0.1));
        assert!((pair.fidelity_phi_plus() - 0.0).abs() < 1e-10);
        let mut r = rng();
        let mut pair = EprPair::separable(1, 1);
        assert_eq!(pair.measure_computational(&mut r), (1, 1));
    }

    #[test]
    fn basis_measurements_on_phi_plus_are_correlated_at_equal_angles() {
        // Measuring both halves of Φ+ in B(θ_A) and B(−θ_A) gives perfectly correlated ±1
        // outcomes (the conjugated-phase convention — see qsim::measurement).
        let mut r = rng();
        for _ in 0..50 {
            let mut pair = EprPair::ideal();
            let a = pair.measure_alice_in_basis(std::f64::consts::FRAC_PI_4, &mut r);
            let b = pair.measure_bob_in_basis(-std::f64::consts::FRAC_PI_4, &mut r);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn from_density_requires_two_qubits() {
        let rho = DensityMatrix::new(2);
        let pair = EprPair::from_density(rho);
        assert_eq!(pair.density().num_qubits(), 2);
    }

    #[test]
    #[should_panic(expected = "exactly two qubits")]
    fn from_density_rejects_wrong_size() {
        let _ = EprPair::from_density(DensityMatrix::new(3));
    }

    #[test]
    fn display_and_accessors() {
        let mut pair = EprPair::ideal();
        assert!(pair.to_string().contains("F(Φ+)"));
        pair.density_mut()
            .apply_single(&qsim::gates::pauli_x(), ALICE_QUBIT);
        assert!((pair.fidelity_with(BellState::PsiPlus) - 1.0).abs() < 1e-10);
        let rho = pair.into_density();
        assert_eq!(rho.num_qubits(), 2);
    }
}
