//! The EPR-pair working unit.
//!
//! Every resource the protocol consumes is one `|Φ+⟩` pair: Alice holds the first qubit (the
//! one that later flies through the quantum channel), Bob holds the second. [`EprPair`] wraps
//! a two-qubit density matrix with that fixed role assignment and exposes exactly the
//! operations the protocol needs: Pauli encoding on either half, basis measurements for the
//! DI check, Bell-state measurement for decoding, and fidelity bookkeeping.

use noise::DeviceModel;
use qsim::bell::{bell_diagonal_probabilities, bell_measure_density, BellOutcome, BellState};
use qsim::density::DensityMatrix;
use qsim::measurement::MeasurementOutcome;
use qsim::pauli::Pauli;
use qsim::pauli_frame::PauliFrame;
use qsim::statevector::StateVector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of Alice's qubit inside an [`EprPair`].
pub const ALICE_QUBIT: usize = 0;
/// Index of Bob's qubit inside an [`EprPair`].
pub const BOB_QUBIT: usize = 1;

/// One shared `|Φ+⟩` pair (possibly degraded by noise or an eavesdropper).
///
/// # Examples
///
/// ```rust
/// use qchannel::epr::EprPair;
/// use qsim::pauli::Pauli;
/// use qsim::bell::BellState;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut pair = EprPair::ideal();
/// pair.apply_alice_pauli(Pauli::X);
/// let outcome = pair.bell_measure(&mut rng);
/// assert_eq!(outcome.state, BellState::PsiPlus);
/// ```
/// The pair carries **two representations**:
///
/// - the exact density matrix `rho` (always allocated), and
/// - an optional Pauli **frame** — when `frame` is `Some`, the logical
///   state is the (pure) Bell state of the frame and `rho` is a *stale*
///   buffer kept around so re-materialising is allocation-free.
///
/// The exact backends never set a frame, so their behaviour is unchanged.
/// The Pauli-twirled backend keeps pairs frame-tracked through the honest
/// data path (integer-only updates) and drops back to the density
/// representation only when an active eavesdropper tap needs the full
/// state, re-projecting afterwards with [`EprPair::twirl_to_frame`].
#[derive(Debug)]
pub struct EprPair {
    rho: DensityMatrix,
    frame: Option<PauliFrame>,
}

impl Serialize for EprPair {
    /// Serializes the **logical state** in the legacy `{rho: …}` wire
    /// shape: frame-tracked pairs materialise their Bell state, so readers
    /// never see the representation split.
    fn to_value(&self) -> serde::Value {
        let rho_value = match self.frame {
            Some(f) => f.state().density_ref().to_value(),
            None => self.rho.to_value(),
        };
        serde::Value::Map(vec![("rho".to_string(), rho_value)])
    }
}

impl Clone for EprPair {
    fn clone(&self) -> Self {
        Self {
            rho: self.rho.clone(),
            frame: self.frame,
        }
    }

    /// Copies `source` into `self`, reusing `self`'s density buffer — the
    /// allocation-free reset behind [`EprPair::reset_ideal`] and the
    /// engine's per-trial pair pool.
    fn clone_from(&mut self, source: &Self) {
        self.rho.clone_from(&source.rho);
        self.frame = source.frame;
    }
}

impl PartialEq for EprPair {
    /// Compares the **logical state**, independent of representation: a
    /// frame-tracked pair equals a density-backed pair holding the same
    /// pure Bell state.
    fn eq(&self, other: &Self) -> bool {
        match (self.frame, other.frame) {
            (Some(a), Some(b)) => a == b,
            (None, None) => self.rho == other.rho,
            (Some(a), None) => a.state().density_ref() == &other.rho,
            (None, Some(b)) => &self.rho == b.state().density_ref(),
        }
    }
}

impl Deserialize for EprPair {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let rho = DensityMatrix::from_value(value.get_field("rho")?)?;
        Ok(Self { rho, frame: None })
    }
}

fn ideal_rho() -> &'static DensityMatrix {
    static IDEAL: std::sync::OnceLock<DensityMatrix> = std::sync::OnceLock::new();
    IDEAL.get_or_init(|| DensityMatrix::from_statevector(&BellState::PhiPlus.statevector()))
}

impl EprPair {
    /// Creates a perfect `|Φ+⟩` pair.
    ///
    /// The protocol emits one pair per transmitted qubit, so the reference
    /// state is built once per process and cloned thereafter.
    pub fn ideal() -> Self {
        Self {
            rho: ideal_rho().clone(),
            frame: None,
        }
    }

    /// Resets this pair to the perfect `|Φ+⟩` state in place, reusing the
    /// existing density buffer. Equivalent to `*self = EprPair::ideal()`
    /// without the allocation — the emission hot path for pooled pairs.
    pub fn reset_ideal(&mut self) {
        self.rho.clone_from(ideal_rho());
        self.frame = None;
    }

    /// Resets this pair to the perfect `|Φ+⟩` state in the **Pauli-frame
    /// representation**: the emission hot path of the twirled backend. No
    /// density work at all — the stale buffer is left untouched until (if
    /// ever) an active tap forces materialisation.
    pub fn reset_frame_ideal(&mut self) {
        match &mut self.frame {
            Some(f) => f.reset(),
            None => self.frame = Some(PauliFrame::ideal()),
        }
    }

    /// The pair's Pauli frame, when it is frame-tracked.
    pub fn frame(&self) -> Option<PauliFrame> {
        self.frame
    }

    /// `true` while the pair lives in the Pauli-frame representation.
    pub fn is_frame_tracked(&self) -> bool {
        self.frame.is_some()
    }

    /// Projects the pair onto the Bell-diagonal channel and samples one
    /// Bell label — the **re-twirl** step that returns a density-backed
    /// pair to the frame representation after an active eavesdropper tap
    /// acted on the full state. One `f64` draw; a no-op on pairs that are
    /// already frame-tracked.
    ///
    /// The sampled distribution is exactly
    /// [`bell_diagonal_probabilities`], i.e. the Pauli twirl of whatever
    /// the tap left behind.
    pub fn twirl_to_frame<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.frame.is_some() {
            return;
        }
        let probs = bell_diagonal_probabilities(&self.rho);
        let total: f64 = probs.iter().sum();
        let draw = rng.gen::<f64>() * total;
        let mut acc = 0.0;
        let mut index = 3;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if draw < acc {
                index = i;
                break;
            }
        }
        self.frame = Some(PauliFrame::new(BellState::from_index(index)));
    }

    /// Creates a pair emitted by a noisy source: a perfect `|Φ+⟩` degraded by the device's
    /// two-qubit gate channel and per-qubit state-preparation error (a simple but honest model
    /// of an imperfect entanglement source).
    pub fn from_noisy_source(device: &DeviceModel) -> Self {
        let mut pair = Self::ideal();
        if !device.is_ideal() {
            device
                .two_qubit_gate_channel()
                .apply(&mut pair.rho, &[ALICE_QUBIT, BOB_QUBIT]);
            let prep = device.state_prep_channel();
            prep.apply(&mut pair.rho, &[ALICE_QUBIT]);
            prep.apply(&mut pair.rho, &[BOB_QUBIT]);
        }
        pair
    }

    /// Wraps an existing two-qubit density matrix as a pair.
    ///
    /// # Panics
    ///
    /// Panics if the density matrix is not exactly two qubits.
    pub fn from_density(rho: DensityMatrix) -> Self {
        assert_eq!(rho.num_qubits(), 2, "an EPR pair is exactly two qubits");
        Self { rho, frame: None }
    }

    /// Builds a (separable) pair of fresh single qubits in the state `|a⟩ ⊗ |b⟩` — what a
    /// man-in-the-middle attacker substitutes for the real pair.
    pub fn separable(alice_bit: u8, bob_bit: u8) -> Self {
        let mut state = StateVector::new(2);
        if alice_bit == 1 {
            state.apply_single(&qsim::gates::pauli_x(), ALICE_QUBIT);
        }
        if bob_bit == 1 {
            state.apply_single(&qsim::gates::pauli_x(), BOB_QUBIT);
        }
        Self {
            rho: DensityMatrix::from_statevector(&state),
            frame: None,
        }
    }

    /// Immutable view of the underlying density matrix.
    ///
    /// # Panics
    ///
    /// Panics on frame-tracked pairs: the density buffer is stale there.
    /// Call [`EprPair::density_mut`] first (or keep using the frame API).
    pub fn density(&self) -> &DensityMatrix {
        assert!(
            self.frame.is_none(),
            "the density buffer of a frame-tracked EprPair is stale; materialise with density_mut() first"
        );
        &self.rho
    }

    /// Mutable view of the underlying density matrix (used by eavesdropper taps).
    ///
    /// Frame-tracked pairs **materialise** here: the frame's Bell state is
    /// copied into the existing density buffer (no allocation) and the
    /// frame is dropped, so the caller always sees the logical state.
    pub fn density_mut(&mut self) -> &mut DensityMatrix {
        if let Some(f) = self.frame.take() {
            self.rho.clone_from(f.state().density_ref());
        }
        &mut self.rho
    }

    /// Consumes the pair and returns the density matrix.
    pub fn into_density(mut self) -> DensityMatrix {
        self.density_mut();
        self.rho
    }

    /// Applies a Pauli encoding operator to Alice's qubit (message / identity encoding).
    pub fn apply_alice_pauli(&mut self, pauli: Pauli) {
        match &mut self.frame {
            Some(f) => f.apply_pauli(pauli),
            None => pauli.apply_to_density(&mut self.rho, ALICE_QUBIT),
        }
    }

    /// Applies a Pauli encoding operator to Bob's qubit (Bob encoding `id_B` on `D_B`).
    pub fn apply_bob_pauli(&mut self, pauli: Pauli) {
        match &mut self.frame {
            // A Pauli on either half of a Bell state moves the label the
            // same way (the transpose trick — our alphabet is real up to
            // the global sign of iσy, which no Bell label can see).
            Some(f) => f.apply_pauli(pauli),
            None => pauli.apply_to_density(&mut self.rho, BOB_QUBIT),
        }
    }

    /// Applies an arbitrary single-qubit unitary to Alice's qubit.
    pub fn apply_alice_unitary(&mut self, gate: &mathkit::CMatrix) {
        self.density_mut().apply_single(gate, ALICE_QUBIT);
    }

    /// Applies an arbitrary single-qubit unitary to Bob's qubit.
    pub fn apply_bob_unitary(&mut self, gate: &mathkit::CMatrix) {
        self.density_mut().apply_single(gate, BOB_QUBIT);
    }

    /// Measures Alice's qubit in the basis `B(θ)` (DI-check measurement), collapsing the pair.
    pub fn measure_alice_in_basis<R: Rng + ?Sized>(
        &mut self,
        theta: f64,
        rng: &mut R,
    ) -> MeasurementOutcome {
        self.density_mut().measure_in_basis(ALICE_QUBIT, theta, rng)
    }

    /// Measures Bob's qubit in the basis `B(θ)` (DI-check measurement), collapsing the pair.
    pub fn measure_bob_in_basis<R: Rng + ?Sized>(
        &mut self,
        theta: f64,
        rng: &mut R,
    ) -> MeasurementOutcome {
        self.density_mut().measure_in_basis(BOB_QUBIT, theta, rng)
    }

    /// Measures Alice's half in `B(θ_a)` and then Bob's half in `B(θ_b)` —
    /// one CHSH record. Equivalent to
    /// [`EprPair::measure_alice_in_basis`] followed by
    /// [`EprPair::measure_bob_in_basis`] (same two RNG draws, same
    /// distribution), via the fused two-qubit kernel
    /// [`DensityMatrix::measure_two_in_bases`].
    pub fn measure_both_in_bases<R: Rng + ?Sized>(
        &mut self,
        theta_a: f64,
        theta_b: f64,
        rng: &mut R,
    ) -> (MeasurementOutcome, MeasurementOutcome) {
        match self.frame {
            Some(f) => f.measure_in_bases(theta_a, theta_b, rng),
            None => self
                .rho
                .measure_two_in_bases(ALICE_QUBIT, theta_a, BOB_QUBIT, theta_b, rng),
        }
    }

    /// Performs a Bell-state measurement across the two halves (Bob's decoding measurement).
    pub fn bell_measure<R: Rng + ?Sized>(&mut self, rng: &mut R) -> BellOutcome {
        match self.frame {
            // Frame-tracked pairs are in a definite Bell state: the BSM is
            // deterministic and needs no RNG draw and no density work.
            Some(f) => f.bell_outcome(),
            None => bell_measure_density(&mut self.rho, ALICE_QUBIT, BOB_QUBIT, rng),
        }
    }

    /// Measures both halves in the computational basis (used by some attack strategies).
    pub fn measure_computational<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (u8, u8) {
        match self.frame {
            Some(f) => f.measure_computational(rng),
            None => self
                .rho
                .measure_two_computational(ALICE_QUBIT, BOB_QUBIT, rng),
        }
    }

    /// Fidelity of the pair with the ideal `|Φ+⟩` state.
    pub fn fidelity_phi_plus(&self) -> f64 {
        self.fidelity_with(BellState::PhiPlus)
    }

    /// Fidelity of the pair with an arbitrary Bell state.
    pub fn fidelity_with(&self, bell: BellState) -> f64 {
        match self.frame {
            Some(f) => {
                if f.state() == bell {
                    1.0
                } else {
                    0.0
                }
            }
            None => self.rho.fidelity_with_pure(&bell.statevector()),
        }
    }

    /// Purity of the two-qubit state.
    pub fn purity(&self) -> f64 {
        match self.frame {
            Some(_) => 1.0,
            None => self.rho.purity(),
        }
    }

    /// Returns `true` when the reduced state of either half is (close to) maximally mixed —
    /// a quick entanglement sanity check for tests.
    pub fn halves_look_maximally_mixed(&self, tol: f64) -> bool {
        if self.frame.is_some() {
            // Every Bell state has maximally mixed halves.
            return true;
        }
        let a = self.rho.partial_trace(&[ALICE_QUBIT]);
        let b = self.rho.partial_trace(&[BOB_QUBIT]);
        (a.purity() - 0.5).abs() <= tol && (b.purity() - 0.5).abs() <= tol
    }
}

impl Default for EprPair {
    fn default() -> Self {
        Self::ideal()
    }
}

impl fmt::Display for EprPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EprPair(F(Φ+)={:.4}, purity={:.4})",
            self.fidelity_phi_plus(),
            self.purity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn ideal_pair_is_phi_plus() {
        let pair = EprPair::ideal();
        assert!((pair.fidelity_phi_plus() - 1.0).abs() < 1e-10);
        assert!((pair.purity() - 1.0).abs() < 1e-10);
        assert!(pair.halves_look_maximally_mixed(1e-9));
        assert_eq!(EprPair::default(), pair);
    }

    #[test]
    fn noisy_source_pairs_are_slightly_degraded() {
        let pair = EprPair::from_noisy_source(&DeviceModel::ibm_brisbane_like());
        let f = pair.fidelity_phi_plus();
        assert!(f < 1.0, "noisy source must not be perfect");
        assert!(f > 0.97, "but the degradation should be small, got {f}");
        let ideal = EprPair::from_noisy_source(&DeviceModel::ideal());
        assert!((ideal.fidelity_phi_plus() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn pauli_encoding_and_bell_measurement_round_trip() {
        let mut r = rng();
        for pauli in Pauli::ALL {
            let mut pair = EprPair::ideal();
            pair.apply_alice_pauli(pauli);
            let outcome = pair.bell_measure(&mut r);
            assert_eq!(outcome.state.encoding_pauli(), pauli);
        }
    }

    #[test]
    fn bob_side_encoding_composes_with_alice_side() {
        // Applying P on Alice's half and Q on Bob's half of Φ+ yields the Bell state of the
        // composed operator (because Q applied to Bob's half of Φ+ equals Qᵀ on Alice's half,
        // and our alphabet is real so Qᵀ ~ Q up to the global sign of iσy).
        let mut r = rng();
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let mut pair = EprPair::ideal();
                pair.apply_alice_pauli(a);
                pair.apply_bob_pauli(b);
                let outcome = pair.bell_measure(&mut r);
                assert_eq!(outcome.state.encoding_pauli(), a.compose(b));
            }
        }
    }

    #[test]
    fn separable_pairs_have_no_entanglement() {
        let pair = EprPair::separable(0, 1);
        assert!(!pair.halves_look_maximally_mixed(0.1));
        assert!((pair.fidelity_phi_plus() - 0.0).abs() < 1e-10);
        let mut r = rng();
        let mut pair = EprPair::separable(1, 1);
        assert_eq!(pair.measure_computational(&mut r), (1, 1));
    }

    #[test]
    fn basis_measurements_on_phi_plus_are_correlated_at_equal_angles() {
        // Measuring both halves of Φ+ in B(θ_A) and B(−θ_A) gives perfectly correlated ±1
        // outcomes (the conjugated-phase convention — see qsim::measurement).
        let mut r = rng();
        for _ in 0..50 {
            let mut pair = EprPair::ideal();
            let a = pair.measure_alice_in_basis(std::f64::consts::FRAC_PI_4, &mut r);
            let b = pair.measure_bob_in_basis(-std::f64::consts::FRAC_PI_4, &mut r);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn from_density_requires_two_qubits() {
        let rho = DensityMatrix::new(2);
        let pair = EprPair::from_density(rho);
        assert_eq!(pair.density().num_qubits(), 2);
    }

    #[test]
    #[should_panic(expected = "exactly two qubits")]
    fn from_density_rejects_wrong_size() {
        let _ = EprPair::from_density(DensityMatrix::new(3));
    }

    #[test]
    fn frame_tracked_pairs_match_density_semantics() {
        let mut r = rng();
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let mut framed = EprPair::ideal();
                framed.reset_frame_ideal();
                assert!(framed.is_frame_tracked());
                framed.apply_alice_pauli(a);
                framed.apply_bob_pauli(b);

                let mut dense = EprPair::ideal();
                dense.apply_alice_pauli(a);
                dense.apply_bob_pauli(b);

                // Logical-state equality across representations.
                assert_eq!(framed, dense);
                assert_eq!(dense, framed);
                let outcome = framed.bell_measure(&mut r);
                assert_eq!(outcome.state.encoding_pauli(), a.compose(b));
                assert_eq!(outcome, dense.bell_measure(&mut r));
                assert_eq!(framed.fidelity_with(outcome.state), 1.0);
                assert!((framed.purity() - 1.0).abs() < 1e-12);
                assert!(framed.halves_look_maximally_mixed(1e-9));
            }
        }
    }

    #[test]
    fn materialisation_recovers_the_bell_density() {
        let mut pair = EprPair::ideal();
        pair.reset_frame_ideal();
        pair.apply_alice_pauli(Pauli::X);
        // density_mut materialises Ψ+ into the stale buffer and drops the frame.
        let rho = pair.density_mut().clone();
        assert!(!pair.is_frame_tracked());
        assert_eq!(&rho, BellState::PsiPlus.density_ref());
        assert!((pair.fidelity_with(BellState::PsiPlus) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn density_view_of_frame_tracked_pair_panics() {
        let mut pair = EprPair::ideal();
        pair.reset_frame_ideal();
        let _ = pair.density();
    }

    #[test]
    fn twirl_to_frame_projects_onto_the_bell_diagonal() {
        let mut r = rng();
        // A pure Bell state twirls to itself, deterministically.
        for bell in [
            BellState::PhiPlus,
            BellState::PhiMinus,
            BellState::PsiPlus,
            BellState::PsiMinus,
        ] {
            let mut pair = EprPair::from_density(bell.density_ref().clone());
            pair.twirl_to_frame(&mut r);
            assert_eq!(pair.frame().unwrap().state(), bell);
            // Idempotent on frame-tracked pairs.
            pair.twirl_to_frame(&mut r);
            assert_eq!(pair.frame().unwrap().state(), bell);
        }
        // A separable |00⟩⊗⟨00| state has Bell diagonal (1/2, 1/2, 0, 0):
        // the twirl never lands on a Ψ label.
        let mut phi = 0usize;
        for _ in 0..200 {
            let mut pair = EprPair::separable(0, 0);
            pair.twirl_to_frame(&mut r);
            match pair.frame().unwrap().state() {
                BellState::PhiPlus | BellState::PhiMinus => phi += 1,
                other => panic!("|00⟩ must twirl to a Φ label, got {other:?}"),
            }
        }
        assert_eq!(phi, 200);
    }

    #[test]
    fn serde_round_trip_materialises_the_frame() {
        use serde::{Deserialize as _, Serialize as _};
        let mut pair = EprPair::ideal();
        pair.reset_frame_ideal();
        pair.apply_alice_pauli(Pauli::Z);
        let value = pair.to_value();
        let back = EprPair::from_value(&value).unwrap();
        assert!(!back.is_frame_tracked());
        assert_eq!(back, pair, "wire shape carries the logical state");
    }

    #[test]
    fn reset_ideal_clears_the_frame() {
        let mut pair = EprPair::ideal();
        pair.reset_frame_ideal();
        pair.apply_alice_pauli(Pauli::X);
        pair.reset_ideal();
        assert!(!pair.is_frame_tracked());
        assert!((pair.fidelity_phi_plus() - 1.0).abs() < 1e-12);
        // And reset_frame_ideal reuses an existing frame in place.
        pair.reset_frame_ideal();
        pair.apply_bob_pauli(Pauli::IY);
        pair.reset_frame_ideal();
        assert_eq!(pair.frame().unwrap().state(), BellState::PhiPlus);
    }

    #[test]
    fn frame_measurements_are_statistically_faithful() {
        // CHSH-style correlator check: frame-tracked measurement at angles
        // (θa, θb) must reproduce the analytic cos(θa + θb) correlation.
        let mut r = rng();
        let (ta, tb) = (0.3, -0.9);
        let trials = 4000;
        let mut sum = 0.0;
        for _ in 0..trials {
            let mut pair = EprPair::ideal();
            pair.reset_frame_ideal();
            let (a, b) = pair.measure_both_in_bases(ta, tb, &mut r);
            sum += a.value() * b.value();
        }
        let expect = (ta + tb).cos();
        let got = sum / trials as f64;
        assert!(
            (got - expect).abs() < 0.05,
            "frame correlator {got} vs analytic {expect}"
        );
    }

    #[test]
    fn display_and_accessors() {
        let mut pair = EprPair::ideal();
        assert!(pair.to_string().contains("F(Φ+)"));
        pair.density_mut()
            .apply_single(&qsim::gates::pauli_x(), ALICE_QUBIT);
        assert!((pair.fidelity_with(BellState::PsiPlus) - 1.0).abs() < 1e-10);
        let rho = pair.into_density();
        assert_eq!(rho.num_qubits(), 2);
    }
}
