//! Entangle-and-measure attack.
//!
//! Eve attaches an ancilla qubit (prepared in `|0⟩`) to each flying qubit with a CNOT and
//! measures the ancilla, hoping to learn the encoded information without blocking the channel
//! (paper Section III-D). The monogamy of entanglement means her ancilla can only become
//! correlated with the flying qubit at the expense of the Alice–Bob entanglement, so the CHSH
//! value estimated in the second DI check drops (to 2 for a full-strength CNOT) and the attack
//! is detected.

use crate::epr::{EprPair, ALICE_QUBIT, BOB_QUBIT};
use crate::quantum::ChannelTap;
use qsim::density::DensityMatrix;
use qsim::gates;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The entangle-and-measure eavesdropper.
///
/// The `strength` parameter interpolates between no interaction (0.0) and a full CNOT (1.0)
/// by applying a controlled-RX(πs) instead of a controlled-X; this is useful for studying the
/// information-vs-disturbance trade-off.
///
/// # Examples
///
/// ```rust
/// use qchannel::taps::EntangleMeasureAttack;
/// use qchannel::quantum::ChannelTap;
/// use qchannel::epr::EprPair;
/// use rand::SeedableRng;
///
/// let mut eve = EntangleMeasureAttack::full();
/// let mut pair = EprPair::ideal();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// eve.on_transmit(&mut pair, &mut rng);
/// assert_eq!(eve.ancillas_measured(), 1);
/// assert!(pair.fidelity_phi_plus() < 0.75);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntangleMeasureAttack {
    strength: f64,
    ancillas_measured: usize,
    ancilla_bits: Vec<u8>,
}

impl EntangleMeasureAttack {
    /// Full-strength attack: a genuine CNOT onto the ancilla.
    pub fn full() -> Self {
        Self::with_strength(1.0)
    }

    /// Partial-strength attack: controlled-RX(π·strength) onto the ancilla.
    ///
    /// # Panics
    ///
    /// Panics if `strength` is outside `[0, 1]`.
    pub fn with_strength(strength: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&strength),
            "attack strength must lie in [0, 1]"
        );
        Self {
            strength,
            ancillas_measured: 0,
            ancilla_bits: Vec::new(),
        }
    }

    /// The interaction strength in `[0, 1]`.
    pub fn strength(&self) -> f64 {
        self.strength
    }

    /// Number of ancillas Eve has measured.
    pub fn ancillas_measured(&self) -> usize {
        self.ancillas_measured
    }

    /// The bits Eve observed on her ancillas.
    pub fn ancilla_bits(&self) -> &[u8] {
        &self.ancilla_bits
    }
}

impl ChannelTap for EntangleMeasureAttack {
    fn on_transmit(&mut self, pair: &mut EprPair, rng: &mut dyn RngCore) {
        self.ancillas_measured += 1;
        // Attach |0⟩ ancilla as qubit 2, entangle with the flying qubit, measure it, then trace
        // it back out so the pair stays a two-qubit object for the rest of the protocol.
        let extended = pair.density().tensor(&DensityMatrix::new(1));
        let mut extended = extended;
        let interaction = if (self.strength - 1.0).abs() < 1e-12 {
            gates::cnot()
        } else {
            gates::controlled(&gates::rx(std::f64::consts::PI * self.strength))
        };
        extended.apply_unitary(&interaction, &[ALICE_QUBIT, 2]);
        let bit = extended.measure(2, rng);
        self.ancilla_bits.push(bit);
        let reduced = extended.partial_trace(&[ALICE_QUBIT, BOB_QUBIT]);
        *pair = EprPair::from_density(reduced);
    }

    fn acts_on_emission(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "entangle-and-measure"
    }
}

impl fmt::Display for EntangleMeasureAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entangle-and-measure (strength {:.2}, {} ancillas)",
            self.strength, self.ancillas_measured
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(88)
    }

    #[test]
    fn full_attack_degrades_bell_fidelity_to_one_half() {
        let mut r = rng();
        let mut eve = EntangleMeasureAttack::full();
        let mut pair = EprPair::ideal();
        eve.on_transmit(&mut pair, &mut r);
        // A CNOT copy in the computational basis fully dephases the pair: fidelity 1/2.
        assert!((pair.fidelity_phi_plus() - 0.5).abs() < 1e-9);
        assert!((pair.density().trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_strength_attack_changes_nothing() {
        let mut r = rng();
        let mut eve = EntangleMeasureAttack::with_strength(0.0);
        let mut pair = EprPair::ideal();
        eve.on_transmit(&mut pair, &mut r);
        assert!((pair.fidelity_phi_plus() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ancilla_bits_are_uniform() {
        // Eve's ancilla copies the computational value of a maximally mixed qubit — pure noise.
        let mut r = rng();
        let mut eve = EntangleMeasureAttack::full();
        let trials = 2000;
        for _ in 0..trials {
            let mut pair = EprPair::ideal();
            pair.apply_alice_pauli(qsim::pauli::Pauli::Z);
            eve.on_transmit(&mut pair, &mut r);
        }
        let ones = eve.ancilla_bits().iter().filter(|&&b| b == 1).count();
        let frac = ones as f64 / trials as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "ancilla bits must be uniform, got {frac}"
        );
    }

    #[test]
    #[should_panic(expected = "strength must lie in")]
    fn invalid_strength_panics() {
        let _ = EntangleMeasureAttack::with_strength(1.5);
    }

    #[test]
    fn accessors_and_display() {
        let eve = EntangleMeasureAttack::with_strength(0.5);
        assert_eq!(eve.strength(), 0.5);
        assert_eq!(eve.ancillas_measured(), 0);
        assert_eq!(eve.name(), "entangle-and-measure");
        assert!(eve.to_string().contains("0.50"));
    }
}
