//! Standard channel-tap attack library.
//!
//! These eavesdropper models implement [`crate::quantum::ChannelTap`] and act
//! purely at the channel layer — they know nothing about the protocol running
//! on top. They live here (rather than in the higher-level `attacks` crate) so
//! that the protocol's execution engine can name them in its `Adversary`
//! vocabulary without a dependency cycle:
//!
//! - [`InterceptResendAttack`] — measure each flying qubit and resend it
//!   (paper Section III-B);
//! - [`ManInTheMiddleAttack`] — keep the real qubit, forward a fresh
//!   uncorrelated substitute (Section III-C);
//! - [`EntangleMeasureAttack`] — entangle an ancilla with the flying qubit and
//!   measure it (Section III-D).

pub mod entangle_measure;
pub mod intercept_resend;
pub mod mitm;

pub use entangle_measure::EntangleMeasureAttack;
pub use intercept_resend::{InterceptBasis, InterceptResendAttack};
pub use mitm::{ManInTheMiddleAttack, SubstituteState};
