//! Intercept-and-resend attack.
//!
//! Eve captures each flying qubit, measures it in an orthonormal basis `{|u⟩, |v⟩}` of her
//! choice and resends the post-measurement state to Bob (paper Section III-B). Whatever basis
//! she picks, the measurement breaks the entanglement — the resent qubit is in a product state
//! with Bob's half — so the CHSH value Bob estimates in the second DI check cannot exceed the
//! classical bound 2 and the protocol aborts.

use crate::epr::{EprPair, ALICE_QUBIT};
use crate::quantum::ChannelTap;
use qsim::gates;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which basis Eve measures the intercepted qubits in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InterceptBasis {
    /// The computational (Z) basis.
    Computational,
    /// The Hadamard (X) basis.
    Hadamard,
    /// The equatorial basis `B(θ) = {|0⟩ ± e^{iθ}|1⟩}` at a fixed angle.
    Equatorial(
        /// The basis angle θ.
        f64,
    ),
    /// A fresh uniformly random equatorial angle for every qubit.
    RandomPerQubit,
}

impl fmt::Display for InterceptBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterceptBasis::Computational => write!(f, "Z basis"),
            InterceptBasis::Hadamard => write!(f, "X basis"),
            InterceptBasis::Equatorial(theta) => write!(f, "B({theta:.3})"),
            InterceptBasis::RandomPerQubit => write!(f, "random basis per qubit"),
        }
    }
}

/// The intercept-and-resend eavesdropper.
///
/// # Examples
///
/// ```rust
/// use qchannel::taps::InterceptResendAttack;
/// use qchannel::quantum::ChannelTap;
/// use qchannel::epr::EprPair;
/// use rand::SeedableRng;
///
/// let mut eve = InterceptResendAttack::computational();
/// let mut pair = EprPair::ideal();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// eve.on_transmit(&mut pair, &mut rng);
/// // The measurement destroyed the entanglement.
/// assert!(pair.fidelity_phi_plus() < 0.75);
/// assert_eq!(eve.intercepted(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterceptResendAttack {
    basis: InterceptBasis,
    intercepted: usize,
    captured_bits: Vec<u8>,
}

impl InterceptResendAttack {
    /// Eve measures in the given basis.
    pub fn new(basis: InterceptBasis) -> Self {
        Self {
            basis,
            intercepted: 0,
            captured_bits: Vec::new(),
        }
    }

    /// Eve measures every qubit in the computational (Z) basis.
    pub fn computational() -> Self {
        Self::new(InterceptBasis::Computational)
    }

    /// Eve measures every qubit in the Hadamard (X) basis.
    pub fn hadamard() -> Self {
        Self::new(InterceptBasis::Hadamard)
    }

    /// Eve picks a fresh random equatorial basis for every qubit.
    pub fn random_basis() -> Self {
        Self::new(InterceptBasis::RandomPerQubit)
    }

    /// The basis Eve uses.
    pub fn basis(&self) -> InterceptBasis {
        self.basis
    }

    /// How many qubits Eve has intercepted so far.
    pub fn intercepted(&self) -> usize {
        self.intercepted
    }

    /// The raw bits Eve recorded (one per intercepted qubit). These carry essentially no
    /// information about the message because the encoding lives in the *joint* Bell state.
    pub fn captured_bits(&self) -> &[u8] {
        &self.captured_bits
    }
}

impl ChannelTap for InterceptResendAttack {
    fn on_transmit(&mut self, pair: &mut EprPair, rng: &mut dyn RngCore) {
        self.intercepted += 1;
        let rho = pair.density_mut();
        let bit = match self.basis {
            InterceptBasis::Computational => rho.measure(ALICE_QUBIT, rng),
            InterceptBasis::Hadamard => {
                rho.apply_single(&gates::hadamard(), ALICE_QUBIT);
                let bit = rho.measure(ALICE_QUBIT, rng);
                rho.apply_single(&gates::hadamard(), ALICE_QUBIT);
                bit
            }
            InterceptBasis::Equatorial(theta) => {
                rho.measure_in_basis(ALICE_QUBIT, theta, rng).to_bit()
            }
            InterceptBasis::RandomPerQubit => {
                let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                rho.measure_in_basis(ALICE_QUBIT, theta, rng).to_bit()
            }
        };
        self.captured_bits.push(bit);
    }

    fn acts_on_emission(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "intercept-and-resend"
    }
}

impl fmt::Display for InterceptResendAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "intercept-and-resend in {} ({} qubits intercepted)",
            self.basis, self.intercepted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(55)
    }

    #[test]
    fn interception_destroys_entanglement_in_every_basis() {
        let mut r = rng();
        for attack in [
            InterceptResendAttack::computational(),
            InterceptResendAttack::hadamard(),
            InterceptResendAttack::new(InterceptBasis::Equatorial(0.7)),
            InterceptResendAttack::random_basis(),
        ] {
            let mut eve = attack;
            let mut pair = EprPair::ideal();
            eve.on_transmit(&mut pair, &mut r);
            // After a local projective measurement the state is separable: the reduced purity
            // of Bob's half must be far from maximally mixed only if correlations are gone —
            // check via fidelity with Φ+ (≤ 1/2 for any separable state).
            assert!(
                pair.fidelity_phi_plus() <= 0.5 + 1e-9,
                "separable states cannot have Φ+ fidelity above 1/2 ({})",
                eve
            );
        }
    }

    #[test]
    fn eve_records_one_bit_per_interception() {
        let mut r = rng();
        let mut eve = InterceptResendAttack::computational();
        for _ in 0..10 {
            let mut pair = EprPair::ideal();
            eve.on_transmit(&mut pair, &mut r);
        }
        assert_eq!(eve.intercepted(), 10);
        assert_eq!(eve.captured_bits().len(), 10);
        assert!(eve.captured_bits().iter().all(|&b| b <= 1));
        assert_eq!(eve.basis(), InterceptBasis::Computational);
        assert_eq!(eve.name(), "intercept-and-resend");
        assert!(eve.to_string().contains("10 qubits"));
    }

    #[test]
    fn captured_bits_carry_no_message_information() {
        // Alice encodes a *fixed* message Pauli; Eve's Z-basis bits are still uniformly
        // random because each half of a Bell state is maximally mixed.
        let mut r = rng();
        let mut eve = InterceptResendAttack::computational();
        let trials = 2000;
        for _ in 0..trials {
            let mut pair = EprPair::ideal();
            pair.apply_alice_pauli(qsim::pauli::Pauli::X);
            eve.on_transmit(&mut pair, &mut r);
        }
        let ones = eve.captured_bits().iter().filter(|&&b| b == 1).count();
        let frac = ones as f64 / trials as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "Eve's bits must look uniform, got {frac}"
        );
    }

    #[test]
    fn display_of_bases() {
        assert_eq!(InterceptBasis::Computational.to_string(), "Z basis");
        assert_eq!(InterceptBasis::Hadamard.to_string(), "X basis");
        assert!(InterceptBasis::Equatorial(0.5)
            .to_string()
            .contains("B(0.5"));
        assert!(InterceptBasis::RandomPerQubit
            .to_string()
            .contains("random"));
    }
}
