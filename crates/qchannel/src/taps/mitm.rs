//! Man-in-the-middle attack.
//!
//! Eve intercepts the whole sequence `S_A` and keeps it, forwarding a freshly prepared
//! sequence `Q_E` of single qubits to Bob instead (paper Section III-C). The forwarded qubits
//! are completely uncorrelated with Bob's halves, so the second DI check measures classical
//! correlations only (`S ≤ 2`) and the protocol aborts before any message-bearing measurement
//! is made.

use crate::epr::{EprPair, ALICE_QUBIT, BOB_QUBIT};
use crate::quantum::ChannelTap;
use qsim::density::DensityMatrix;
use qsim::gates;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How Eve prepares the substitute qubits she forwards to Bob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubstituteState {
    /// Uniformly random computational-basis states `|0⟩` / `|1⟩`.
    RandomComputational,
    /// Always `|0⟩`.
    Zero,
    /// Uniformly random states from `{|0⟩, |1⟩, |+⟩, |−⟩}`.
    RandomBb84,
}

impl fmt::Display for SubstituteState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstituteState::RandomComputational => write!(f, "random |0⟩/|1⟩"),
            SubstituteState::Zero => write!(f, "|0⟩"),
            SubstituteState::RandomBb84 => write!(f, "random BB84 state"),
        }
    }
}

/// The man-in-the-middle eavesdropper.
///
/// # Examples
///
/// ```rust
/// use qchannel::taps::ManInTheMiddleAttack;
/// use qchannel::quantum::ChannelTap;
/// use qchannel::epr::EprPair;
/// use rand::SeedableRng;
///
/// let mut eve = ManInTheMiddleAttack::random_computational();
/// let mut pair = EprPair::ideal();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// eve.on_transmit(&mut pair, &mut rng);
/// assert_eq!(eve.stolen_qubits(), 1);
/// // At best Eve's substitute matches Bob's collapsed bit, which caps the
/// // fidelity at 1/2 (up to floating-point rounding).
/// assert!(pair.fidelity_phi_plus() <= 0.5 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManInTheMiddleAttack {
    substitute: SubstituteState,
    stolen_qubits: usize,
    /// The Z-basis value Eve later measures on each stolen qubit (her attempt at reading the
    /// message — futile, since each half of a Bell state is maximally mixed).
    stolen_bits: Vec<u8>,
}

impl ManInTheMiddleAttack {
    /// Eve substitutes uniformly random computational-basis qubits.
    pub fn random_computational() -> Self {
        Self::new(SubstituteState::RandomComputational)
    }

    /// Eve substitutes `|0⟩` qubits.
    pub fn zeros() -> Self {
        Self::new(SubstituteState::Zero)
    }

    /// Eve substitutes random BB84 states.
    pub fn random_bb84() -> Self {
        Self::new(SubstituteState::RandomBb84)
    }

    /// Creates the attack with an explicit substitute-state policy.
    pub fn new(substitute: SubstituteState) -> Self {
        Self {
            substitute,
            stolen_qubits: 0,
            stolen_bits: Vec::new(),
        }
    }

    /// The substitute-state policy.
    pub fn substitute(&self) -> SubstituteState {
        self.substitute
    }

    /// Number of qubits Eve has stolen so far.
    pub fn stolen_qubits(&self) -> usize {
        self.stolen_qubits
    }

    /// The Z-basis values Eve read from the stolen qubits.
    pub fn stolen_bits(&self) -> &[u8] {
        &self.stolen_bits
    }

    fn fresh_substitute(&self, rng: &mut dyn RngCore) -> DensityMatrix {
        let mut qubit = DensityMatrix::new(1);
        match self.substitute {
            SubstituteState::Zero => {}
            SubstituteState::RandomComputational => {
                if rng.gen::<bool>() {
                    qubit.apply_single(&gates::pauli_x(), 0);
                }
            }
            SubstituteState::RandomBb84 => {
                if rng.gen::<bool>() {
                    qubit.apply_single(&gates::pauli_x(), 0);
                }
                if rng.gen::<bool>() {
                    qubit.apply_single(&gates::hadamard(), 0);
                }
            }
        }
        qubit
    }
}

impl ChannelTap for ManInTheMiddleAttack {
    fn on_transmit(&mut self, pair: &mut EprPair, rng: &mut dyn RngCore) {
        self.stolen_qubits += 1;
        // Eve keeps Alice's qubit: she measures it in the Z basis for her records (this is all
        // she can ever extract), then replaces the flying qubit with a fresh substitute that
        // is uncorrelated with Bob's half.
        let stolen_bit = pair.density_mut().measure(ALICE_QUBIT, rng);
        self.stolen_bits.push(stolen_bit);
        let bob_half = pair.density().partial_trace(&[BOB_QUBIT]);
        let substitute = self.fresh_substitute(rng);
        *pair = EprPair::from_density(substitute.tensor(&bob_half));
    }

    fn acts_on_emission(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "man-in-the-middle"
    }
}

impl fmt::Display for ManInTheMiddleAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "man-in-the-middle substituting {} ({} qubits stolen)",
            self.substitute, self.stolen_qubits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(66)
    }

    #[test]
    fn substitution_breaks_all_quantum_correlation() {
        let mut r = rng();
        for policy in [
            SubstituteState::RandomComputational,
            SubstituteState::Zero,
            SubstituteState::RandomBb84,
        ] {
            let mut eve = ManInTheMiddleAttack::new(policy);
            let mut pair = EprPair::ideal();
            eve.on_transmit(&mut pair, &mut r);
            assert!(
                pair.fidelity_phi_plus() <= 0.5 + 1e-9,
                "substituted pair must be separable under {policy}"
            );
            assert!((pair.density().trace() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stolen_bits_are_uniform_regardless_of_encoding() {
        let mut r = rng();
        let mut eve = ManInTheMiddleAttack::zeros();
        let trials = 2000;
        for _ in 0..trials {
            let mut pair = EprPair::ideal();
            pair.apply_alice_pauli(qsim::pauli::Pauli::IY);
            eve.on_transmit(&mut pair, &mut r);
        }
        let ones = eve.stolen_bits().iter().filter(|&&b| b == 1).count();
        let frac = ones as f64 / trials as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "each half of a Bell pair is maximally mixed; Eve's bits must be uniform, got {frac}"
        );
    }

    #[test]
    fn bob_half_is_preserved_by_the_substitution() {
        // Eve's substitution must not touch the qubit already sitting with Bob.
        let mut r = rng();
        let mut eve = ManInTheMiddleAttack::zeros();
        let mut pair = EprPair::ideal();
        // Collapse Alice's half so Bob's half has a definite Z value.
        let alice_bit = pair.density_mut().measure(ALICE_QUBIT, &mut r);
        eve.on_transmit(&mut pair, &mut r);
        let bob_prob_one = pair.density().probability_one(BOB_QUBIT);
        assert!((bob_prob_one - f64::from(alice_bit)).abs() < 1e-9);
    }

    #[test]
    fn accessors_and_display() {
        let eve = ManInTheMiddleAttack::random_bb84();
        assert_eq!(eve.substitute(), SubstituteState::RandomBb84);
        assert_eq!(eve.stolen_qubits(), 0);
        assert!(eve.stolen_bits().is_empty());
        assert_eq!(eve.name(), "man-in-the-middle");
        assert!(eve.to_string().contains("man-in-the-middle"));
        assert_eq!(SubstituteState::Zero.to_string(), "|0⟩");
    }
}
