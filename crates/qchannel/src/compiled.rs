//! The quantum channel, compiled for the per-trial hot loop.
//!
//! [`QuantumChannel::transmit`](crate::quantum::QuantumChannel::transmit) is honest but wasteful when called once per
//! trial: it rebuilds the device's identity-gate channel (4 Kraus operators)
//! and idle channel from calibration numbers on **every call**, then pays
//! per-application validation and embedding for each of the η gates in the
//! chain. The emission path ([`EprPair::from_noisy_source`]) rebuilds the
//! 16-operator two-qubit gate channel and the state-prep channel the same
//! way.
//!
//! [`CompiledQuantumChannel`] does all of that once: it derives every noise
//! channel the spec can need, compiles each against its fixed qubit
//! placement (see [`noise::compiled`]), and exposes the same
//! emit/transmit/tap surface. Results are **bit-identical** to the one-shot
//! path — the compiled kernels replay the exact floating-point operation
//! sequence — so seeded runs are unaffected; only the per-trial cost drops.
//!
//! Compiled form is derived state: it is intentionally not serialisable and
//! is rebuilt from the (serialisable) [`ChannelSpec`] wherever needed.

use crate::epr::{EprPair, ALICE_QUBIT, BOB_QUBIT};
use crate::quantum::{ChannelSpec, ChannelTap};
use noise::compiled::CompiledChannel;
use noise::twirl::{PauliDistribution, TwirledChannel};
use rand::Rng;
use rand::RngCore;
use std::fmt;

/// The Pauli-twirled lowering of a compiled channel: everything the
/// stabilizer backend needs per trial, reduced to **two** Klein-group
/// distributions.
///
/// The emission distribution is the XOR-convolution of the twirls of the
/// source and both state-prep placements; the transmit distribution is the
/// per-slot gate⊛idle convolution raised to the chain length by repeated
/// squaring. One pair therefore costs at most one `f64` draw per leg,
/// independent of the chain length — the η-gate loop is folded away at
/// compile time.
#[derive(Debug, Clone, PartialEq)]
pub struct TwirledProgram {
    emission: PauliDistribution,
    transmit: PauliDistribution,
    /// The individual placement twirls, in compile order (source, prep A,
    /// prep B, gate, idle) — kept for reports and exactness audits.
    placements: Vec<TwirledChannel>,
    exact: bool,
}

impl TwirledProgram {
    // detlint: allow(hot-path-alloc): compile-time constructor; transmit paths never re-enter it
    fn new(channel: &CompiledQuantumChannel) -> Self {
        let mut placements = Vec::new();
        let mut emission = PauliDistribution::default();
        for compiled in [&channel.source, &channel.prep_alice, &channel.prep_bob]
            .into_iter()
            .flatten()
        {
            let twirled = compiled.twirl();
            emission = emission.convolve(&twirled.frame_distribution());
            placements.push(twirled);
        }
        let mut per_slot = PauliDistribution::default();
        for compiled in [&channel.gate_alice, &channel.idle_bob]
            .into_iter()
            .flatten()
        {
            let twirled = compiled.twirl();
            per_slot = per_slot.convolve(&twirled.frame_distribution());
            placements.push(twirled);
        }
        let transmit = per_slot.convolution_power(channel.spec.length());
        let exact = placements.iter().all(TwirledChannel::is_exact);
        Self {
            emission,
            transmit,
            placements,
            exact,
        }
    }

    /// The Klein-group distribution of one full emission (source + preps).
    pub fn emission(&self) -> &PauliDistribution {
        &self.emission
    }

    /// The Klein-group distribution of one full transmission (whole chain).
    pub fn transmit(&self) -> &PauliDistribution {
        &self.transmit
    }

    /// The individual placement twirls, in compile order.
    pub fn placements(&self) -> &[TwirledChannel] {
        &self.placements
    }

    /// `true` when every lowered placement was already Pauli-diagonal, so
    /// the twirled program simulates the exact channel rather than its
    /// twirled approximation.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// `true` when both legs are the identity point mass (ideal channel):
    /// the backend skips the RNG draws entirely.
    pub fn is_trivial(&self) -> bool {
        self.emission.is_trivial() && self.transmit.is_trivial()
    }
}

impl fmt::Display for TwirledProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TwirledProgram[{} placements, emission {}, transmit {}, {}]",
            self.placements.len(),
            self.emission,
            self.transmit,
            if self.exact { "exact" } else { "approximate" },
        )
    }
}

/// A [`QuantumChannel`](crate::quantum::QuantumChannel) with every noise placement precompiled.
///
/// Build with [`QuantumChannel::compile`](crate::quantum::QuantumChannel::compile). The compiled placements cover
/// both backends: exact density application (`apply`) and trajectory
/// sampling (`sample`/`sample_density`) share each placement.
#[derive(Debug, Clone)]
pub struct CompiledQuantumChannel {
    spec: ChannelSpec,
    /// Source noise: the device's two-qubit gate channel on the whole pair.
    /// Present iff the device is not ideal (matching the legacy gating).
    source: Option<CompiledChannel>,
    /// State-preparation error on Alice's / Bob's qubit. Present iff the
    /// device is not ideal.
    prep_alice: Option<CompiledChannel>,
    prep_bob: Option<CompiledChannel>,
    /// One noisy identity gate on the flying qubit. Present iff the device
    /// is not ideal (a zero-length chain simply never applies it).
    gate_alice: Option<CompiledChannel>,
    /// Thermal idling on Bob's stored qubit per gate slot. Present iff the
    /// device is not ideal **and** models partner idling.
    idle_bob: Option<CompiledChannel>,
    /// The Pauli-twirled lowering of the placements above, for the
    /// stabilizer backend. Always present (trivial for ideal channels).
    twirled: TwirledProgram,
}

impl CompiledQuantumChannel {
    // detlint: allow(hot-path-alloc): compile-time constructor; transmit paths never re-enter it
    pub(crate) fn new(spec: ChannelSpec) -> Self {
        let device = spec.device();
        let (source, prep_alice, prep_bob, gate_alice, idle_bob) = if device.is_ideal() {
            (None, None, None, None, None)
        } else {
            let prep = device.state_prep_channel();
            (
                Some(
                    device
                        .two_qubit_gate_channel()
                        .compile(&[ALICE_QUBIT, BOB_QUBIT], 2),
                ),
                Some(prep.compile(&[ALICE_QUBIT], 2)),
                Some(prep.compile(&[BOB_QUBIT], 2)),
                Some(device.identity_gate_channel().compile(&[ALICE_QUBIT], 2)),
                device.idle_partner_noise().then(|| {
                    device
                        .idle_channel(device.identity_gate_time_ns())
                        .compile(&[BOB_QUBIT], 2)
                }),
            )
        };
        let mut channel = Self {
            spec,
            source,
            prep_alice,
            prep_bob,
            gate_alice,
            idle_bob,
            twirled: TwirledProgram {
                emission: PauliDistribution::default(),
                transmit: PauliDistribution::default(),
                placements: Vec::new(),
                exact: true,
            },
        };
        channel.twirled = TwirledProgram::new(&channel);
        channel
    }

    /// The channel's spec.
    pub fn spec(&self) -> &ChannelSpec {
        &self.spec
    }

    /// Source noise (two-qubit gate channel on the pair), when the device
    /// is noisy.
    pub fn source(&self) -> Option<&CompiledChannel> {
        self.source.as_ref()
    }

    /// State-preparation error on Alice's qubit, when the device is noisy.
    pub fn prep_alice(&self) -> Option<&CompiledChannel> {
        self.prep_alice.as_ref()
    }

    /// State-preparation error on Bob's qubit, when the device is noisy.
    pub fn prep_bob(&self) -> Option<&CompiledChannel> {
        self.prep_bob.as_ref()
    }

    /// One noisy identity gate on the flying qubit, when the device is
    /// noisy.
    pub fn gate_alice(&self) -> Option<&CompiledChannel> {
        self.gate_alice.as_ref()
    }

    /// Thermal idling on Bob's stored qubit per gate slot, when the device
    /// is noisy and models partner idling.
    pub fn idle_bob(&self) -> Option<&CompiledChannel> {
        self.idle_bob.as_ref()
    }

    /// The Pauli-twirled lowering of this channel's placements.
    pub fn twirled(&self) -> &TwirledProgram {
        &self.twirled
    }

    /// Emits one pair in the **Pauli-frame representation**: the twirled
    /// backend's emission path. The pair is reset to a frame-tracked `|Φ+⟩`
    /// and kicked by one sample of the emission distribution — at most one
    /// `f64` draw, no density work, no allocation.
    pub fn emit_twirled_pair_into<R: Rng + ?Sized>(&self, pair: &mut EprPair, rng: &mut R) {
        pair.reset_frame_ideal();
        if !self.twirled.emission.is_trivial() {
            pair.apply_alice_pauli(self.twirled.emission.sample(rng));
        }
    }

    /// Transmits Alice's half under the twirled channel: one sample of the
    /// precomputed whole-chain distribution, whatever the chain length.
    /// Works on pairs in either representation (the frame kick and the
    /// density Pauli are the same logical map).
    pub fn transmit_twirled<R: Rng + ?Sized>(&self, pair: &mut EprPair, rng: &mut R) {
        if !self.twirled.transmit.is_trivial() {
            pair.apply_alice_pauli(self.twirled.transmit.sample(rng));
        }
    }

    /// Emits one pair from the (noisy) source — bit-identical to
    /// [`EprPair::from_noisy_source`] with this spec's device, without
    /// rebuilding the source channels per call.
    pub fn emit_noisy_pair(&self) -> EprPair {
        let mut pair = EprPair::ideal();
        self.apply_emission_noise(&mut pair);
        pair
    }

    /// Emits one pair into `pair`, reusing its buffers: the allocation-free
    /// form of [`CompiledQuantumChannel::emit_noisy_pair`] for pooled pairs.
    /// Whatever state `pair` held before is discarded.
    pub fn emit_noisy_pair_into(&self, pair: &mut EprPair) {
        pair.reset_ideal();
        self.apply_emission_noise(pair);
    }

    fn apply_emission_noise(&self, pair: &mut EprPair) {
        if let Some(source) = &self.source {
            source.apply(pair.density_mut());
        }
        if let Some(prep) = &self.prep_alice {
            prep.apply(pair.density_mut());
        }
        if let Some(prep) = &self.prep_bob {
            prep.apply(pair.density_mut());
        }
    }

    /// Transmits Alice's half of `pair` to Bob — bit-identical to
    /// [`QuantumChannel::transmit`](crate::quantum::QuantumChannel::transmit), without rebuilding the gate/idle
    /// channels per call.
    pub fn transmit<R: RngCore + ?Sized>(&self, pair: &mut EprPair, _rng: &mut R) {
        let Some(gate) = &self.gate_alice else {
            return;
        };
        if self.spec.length() == 0 {
            return;
        }
        for _ in 0..self.spec.length() {
            gate.apply(pair.density_mut());
            if let Some(idle) = &self.idle_bob {
                idle.apply(pair.density_mut());
            }
        }
    }

    /// Transmits with an eavesdropper tap attached: the tap's
    /// [`ChannelTap::on_transmit`] runs first, then the physical noise —
    /// the compiled form of [`QuantumChannel::transmit_tapped`](crate::quantum::QuantumChannel::transmit_tapped).
    pub fn transmit_tapped(
        &self,
        pair: &mut EprPair,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        tap.on_transmit(pair, rng);
        self.transmit(pair, rng);
    }

    /// Distributes a freshly emitted pair, letting the tap act first — the
    /// compiled form of [`QuantumChannel::distribute_tapped`](crate::quantum::QuantumChannel::distribute_tapped).
    pub fn distribute_tapped(
        &self,
        pair: &mut EprPair,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        tap.on_pair_emitted(pair, rng);
    }
}

impl From<ChannelSpec> for CompiledQuantumChannel {
    fn from(spec: ChannelSpec) -> Self {
        Self::new(spec)
    }
}

impl fmt::Display for CompiledQuantumChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompiledQuantumChannel[{}]", self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantum::QuantumChannel;
    use noise::DeviceModel;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    fn pair_bits(pair: &EprPair) -> Vec<(u64, u64)> {
        pair.density()
            .matrix()
            .as_slice()
            .iter()
            .map(|z| (z.re.to_bits(), z.im.to_bits()))
            .collect()
    }

    #[test]
    fn ideal_channel_compiles_to_no_placements() {
        let compiled = QuantumChannel::default().compile();
        assert!(compiled.source().is_none());
        assert!(compiled.gate_alice().is_none());
        assert!(compiled.idle_bob().is_none());
        let mut pair = EprPair::ideal();
        compiled.transmit(&mut pair, &mut rng());
        assert!((pair.fidelity_phi_plus() - 1.0).abs() < 1e-12);
        assert_eq!(
            pair_bits(&compiled.emit_noisy_pair()),
            pair_bits(&EprPair::ideal())
        );
    }

    #[test]
    fn compiled_transmit_is_bit_identical_to_one_shot() {
        let channel = QuantumChannel::new(ChannelSpec::noisy_identity_chain(
            25,
            DeviceModel::ibm_brisbane_like(),
        ));
        let compiled = channel.compile();
        let mut fast = EprPair::ideal();
        let mut slow = EprPair::ideal();
        compiled.transmit(&mut fast, &mut rng());
        channel.transmit(&mut slow, &mut rng());
        assert_eq!(pair_bits(&fast), pair_bits(&slow));
    }

    #[test]
    fn compiled_emission_is_bit_identical_to_one_shot() {
        let device = DeviceModel::ibm_brisbane_like();
        let channel = QuantumChannel::new(ChannelSpec::noisy_identity_chain(10, device.clone()));
        let compiled = channel.compile();
        assert_eq!(
            pair_bits(&compiled.emit_noisy_pair()),
            pair_bits(&EprPair::from_noisy_source(&device))
        );
    }

    #[test]
    fn ideal_channel_twirls_to_the_trivial_program() {
        let compiled = QuantumChannel::default().compile();
        let program = compiled.twirled();
        assert!(program.is_trivial());
        assert!(program.is_exact());
        assert!(program.placements().is_empty());
        // Emission still produces a frame-tracked Φ+ pair.
        let mut pair = EprPair::ideal();
        let mut r = rng();
        compiled.emit_twirled_pair_into(&mut pair, &mut r);
        compiled.transmit_twirled(&mut pair, &mut r);
        assert!(pair.is_frame_tracked());
        assert_eq!(
            pair.frame().unwrap().state(),
            qsim::bell::BellState::PhiPlus
        );
    }

    #[test]
    fn noisy_chain_twirls_to_a_nontrivial_program() {
        let compiled = QuantumChannel::new(ChannelSpec::noisy_identity_chain(
            25,
            DeviceModel::ibm_brisbane_like(),
        ))
        .compile();
        let program = compiled.twirled();
        assert!(!program.is_trivial());
        // Thermal relaxation (amplitude damping) is not Pauli-diagonal, so
        // the brisbane chain twirls approximately.
        assert!(!program.is_exact());
        // source + prep×2 + gate (+ idle when partner idling is modelled).
        let expected = if compiled.idle_bob().is_some() { 5 } else { 4 };
        assert_eq!(program.placements().len(), expected);
        assert!(program.to_string().contains("approximate"));
    }

    #[test]
    fn twirled_sampling_matches_the_analytic_convolution() {
        use qsim::pauli::Pauli;
        use qsim::pauli_frame::PauliFrame;
        let compiled = QuantumChannel::new(ChannelSpec::noisy_identity_chain(
            25,
            DeviceModel::ibm_brisbane_like(),
        ))
        .compile();
        let program = compiled.twirled();
        // Analytic label distribution: emission ⊛ transmit pushed onto the
        // Bell labels of a kicked Φ+.
        let full = program.emission().convolve(program.transmit());
        let mut expect = [0.0f64; 4];
        for (pauli, p) in Pauli::ALL.into_iter().zip(full.probabilities()) {
            let mut frame = PauliFrame::ideal();
            frame.apply_pauli(pauli);
            expect[frame.state().to_index()] += p;
        }
        let mut r = rng();
        let trials = 20_000;
        let mut counts = [0usize; 4];
        let mut pair = EprPair::ideal();
        for _ in 0..trials {
            compiled.emit_twirled_pair_into(&mut pair, &mut r);
            compiled.transmit_twirled(&mut pair, &mut r);
            counts[pair.frame().unwrap().state().to_index()] += 1;
        }
        for (label, (&count, want)) in counts.iter().zip(expect).enumerate() {
            let got = count as f64 / trials as f64;
            assert!(
                (got - want).abs() < 0.01,
                "label {label}: sampled {got} vs analytic {want}"
            );
        }
        // And for weak noise the twirled program stays close to the exact
        // channel's Bell diagonal.
        let mut dense = compiled.emit_noisy_pair();
        compiled.transmit(&mut dense, &mut r);
        let exact = qsim::bell::bell_diagonal_probabilities(dense.density());
        for (want, got) in exact.into_iter().zip(expect) {
            assert!(
                (got - want).abs() < 0.02,
                "twirl must stay near the exact Bell diagonal ({got} vs {want})"
            );
        }
    }

    #[test]
    fn tapped_paths_invoke_the_tap() {
        use qsim::pauli::Pauli;
        struct FlipTap(usize);
        impl ChannelTap for FlipTap {
            fn on_pair_emitted(&mut self, _pair: &mut EprPair, _rng: &mut dyn RngCore) {
                self.0 += 1;
            }
            fn on_transmit(&mut self, pair: &mut EprPair, _rng: &mut dyn RngCore) {
                self.0 += 1;
                pair.apply_alice_pauli(Pauli::Z);
            }
        }
        let compiled = QuantumChannel::default().compile();
        let mut tap = FlipTap(0);
        let mut pair = EprPair::ideal();
        let mut r = rng();
        compiled.distribute_tapped(&mut pair, &mut tap, &mut r);
        compiled.transmit_tapped(&mut pair, &mut tap, &mut r);
        assert_eq!(tap.0, 2);
        assert!((pair.fidelity_with(qsim::bell::BellState::PhiMinus) - 1.0).abs() < 1e-10);
    }
}
