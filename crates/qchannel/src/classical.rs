//! The authenticated public classical channel.
//!
//! The protocol assumes an *authenticated* classical channel: Eve can read every message but
//! cannot forge or alter them. [`ClassicalChannel`] is a shared, append-only [`Transcript`] of
//! typed [`ClassicalMessage`]s; the information-leakage analysis (Section III-E of the paper)
//! audits exactly this transcript to confirm that nothing message- or identity-correlated is
//! ever published.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Which protocol party sent a classical message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Party {
    /// The sender (Alice).
    Alice,
    /// The receiver (Bob).
    Bob,
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Party::Alice => write!(f, "Alice"),
            Party::Bob => write!(f, "Bob"),
        }
    }
}

/// A message on the public classical channel.
///
/// The variants mirror the announcements the paper's protocol makes. Crucially there is **no
/// variant carrying message bits, identity bits or the Bell results of the `C_A` (Alice
/// identity) pairs** — that is the information-leakage guarantee the audit checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClassicalMessage {
    /// Announcement of qubit positions selected for some purpose (DI check rounds,
    /// identity blocks, …).
    Positions {
        /// What the positions are for (e.g. `"di-check-1"`, `"DA"`, `"CA"`).
        purpose: String,
        /// The selected positions (indices into the shared sequence).
        positions: Vec<usize>,
    },
    /// Announcement of the measurement settings used on DI-check pairs.
    BasisChoices {
        /// Which DI-check round the settings belong to (1 or 2).
        round: u8,
        /// Per-pair `(alice_setting, bob_setting)` indices.
        settings: Vec<(usize, usize)>,
    },
    /// Announcement of the ±1 outcomes observed on DI-check pairs (as bits).
    CheckOutcomes {
        /// Which DI-check round the outcomes belong to (1 or 2).
        round: u8,
        /// Per-pair `(alice_bit, bob_bit)`.
        outcomes: Vec<(u8, u8)>,
    },
    /// Bob's announced Bell-state-measurement results for the `(D_A, D_B)` authentication
    /// pairs (these look uniformly random to Eve thanks to Alice's cover operations).
    BellResults {
        /// Which block the results belong to (e.g. `"DB-auth"`).
        block: String,
        /// Encoded Bell outcomes (2 bits each, as the index 0–3).
        results: Vec<u8>,
    },
    /// Reveal of the positions and values of the integrity check bits embedded in `m'`.
    CheckBitsReveal {
        /// Positions of the check bits within the padded message.
        positions: Vec<usize>,
        /// The check-bit values.
        values: Vec<bool>,
    },
    /// An abort notification with a human-readable reason.
    Abort {
        /// Why the protocol was aborted.
        reason: String,
    },
    /// Generic acknowledgement used to close phases.
    Ack {
        /// Which phase is acknowledged.
        phase: String,
    },
}

impl ClassicalMessage {
    /// A short tag naming the message kind (used in transcripts and reports).
    pub fn kind(&self) -> &'static str {
        match self {
            ClassicalMessage::Positions { .. } => "positions",
            ClassicalMessage::BasisChoices { .. } => "basis-choices",
            ClassicalMessage::CheckOutcomes { .. } => "check-outcomes",
            ClassicalMessage::BellResults { .. } => "bell-results",
            ClassicalMessage::CheckBitsReveal { .. } => "check-bits",
            ClassicalMessage::Abort { .. } => "abort",
            ClassicalMessage::Ack { .. } => "ack",
        }
    }

    /// Serialises the message into a length-prefixed frame (the wire format a real deployment
    /// would push through its authenticated classical link).
    pub fn to_frame(&self) -> Vec<u8> {
        let body = format!("{self:?}");
        let mut buf = Vec::with_capacity(4 + body.len());
        buf.extend_from_slice(&(body.len() as u32).to_be_bytes());
        buf.extend_from_slice(body.as_bytes());
        buf
    }
}

impl fmt::Display for ClassicalMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind())
    }
}

/// One transcript entry: who said what, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TranscriptEntry {
    /// Sequence number (0-based).
    pub index: usize,
    /// The sending party.
    pub sender: Party,
    /// The message.
    pub message: ClassicalMessage,
}

/// The append-only public record of everything said on the classical channel.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Transcript {
    entries: Vec<TranscriptEntry>,
}

impl Transcript {
    /// Creates an empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a message and returns its sequence number.
    pub fn push(&mut self, sender: Party, message: ClassicalMessage) -> usize {
        let index = self.entries.len();
        self.entries.push(TranscriptEntry {
            index,
            sender,
            message,
        });
        index
    }

    /// Number of messages exchanged.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing has been said yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over the entries in order.
    pub fn iter(&self) -> std::slice::Iter<'_, TranscriptEntry> {
        self.entries.iter()
    }

    /// All messages of a given kind tag.
    pub fn messages_of_kind(&self, kind: &str) -> Vec<&ClassicalMessage> {
        self.entries
            .iter()
            .filter(|e| e.message.kind() == kind)
            .map(|e| &e.message)
            .collect()
    }

    /// Returns `true` when an abort was announced.
    pub fn contains_abort(&self) -> bool {
        !self.messages_of_kind("abort").is_empty()
    }

    /// Total number of framed bytes that crossed the channel (classical communication cost).
    pub fn total_frame_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.message.to_frame().len())
            .sum()
    }
}

impl<'a> IntoIterator for &'a Transcript {
    type Item = &'a TranscriptEntry;
    type IntoIter = std::slice::Iter<'a, TranscriptEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A shared handle to the authenticated classical channel.
///
/// Both parties (and the eavesdropper's audit) hold clones of the handle; all of them observe
/// the same transcript.
///
/// # Examples
///
/// ```rust
/// use qchannel::classical::{ClassicalChannel, ClassicalMessage, Party};
///
/// let channel = ClassicalChannel::new();
/// channel.send(Party::Alice, ClassicalMessage::Ack { phase: "setup".into() });
/// assert_eq!(channel.snapshot().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClassicalChannel {
    transcript: Arc<Mutex<Transcript>>,
}

impl ClassicalChannel {
    /// Creates a channel with an empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sends (appends) a message; returns its sequence number.
    pub fn send(&self, sender: Party, message: ClassicalMessage) -> usize {
        self.transcript
            .lock()
            .expect("transcript lock poisoned")
            .push(sender, message)
    }

    /// Takes a snapshot of the transcript as seen by any party (or Eve).
    pub fn snapshot(&self) -> Transcript {
        self.transcript
            .lock()
            .expect("transcript lock poisoned")
            .clone()
    }

    /// Number of messages exchanged so far.
    pub fn len(&self) -> usize {
        self.transcript
            .lock()
            .expect("transcript lock poisoned")
            .len()
    }

    /// Returns `true` when nothing has been sent yet.
    pub fn is_empty(&self) -> bool {
        self.transcript
            .lock()
            .expect("transcript lock poisoned")
            .is_empty()
    }

    /// Returns `true` when an abort has been announced.
    pub fn aborted(&self) -> bool {
        self.transcript
            .lock()
            .expect("transcript lock poisoned")
            .contains_abort()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions_msg() -> ClassicalMessage {
        ClassicalMessage::Positions {
            purpose: "di-check-1".into(),
            positions: vec![1, 5, 9],
        }
    }

    #[test]
    fn transcript_appends_in_order() {
        let mut t = Transcript::new();
        assert!(t.is_empty());
        let i0 = t.push(Party::Alice, positions_msg());
        let i1 = t.push(
            Party::Bob,
            ClassicalMessage::Ack {
                phase: "setup".into(),
            },
        );
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        assert_eq!(t.iter().next().unwrap().sender, Party::Alice);
    }

    #[test]
    fn kind_tags_and_filtering() {
        let mut t = Transcript::new();
        t.push(Party::Alice, positions_msg());
        t.push(
            Party::Alice,
            ClassicalMessage::BasisChoices {
                round: 1,
                settings: vec![(1, 2)],
            },
        );
        t.push(
            Party::Bob,
            ClassicalMessage::CheckOutcomes {
                round: 1,
                outcomes: vec![(0, 1)],
            },
        );
        t.push(
            Party::Bob,
            ClassicalMessage::BellResults {
                block: "DB-auth".into(),
                results: vec![0, 3, 1],
            },
        );
        t.push(
            Party::Alice,
            ClassicalMessage::CheckBitsReveal {
                positions: vec![2],
                values: vec![true],
            },
        );
        t.push(
            Party::Alice,
            ClassicalMessage::Abort {
                reason: "CHSH too low".into(),
            },
        );
        assert_eq!(t.messages_of_kind("positions").len(), 1);
        assert_eq!(t.messages_of_kind("basis-choices").len(), 1);
        assert_eq!(t.messages_of_kind("check-outcomes").len(), 1);
        assert_eq!(t.messages_of_kind("bell-results").len(), 1);
        assert_eq!(t.messages_of_kind("check-bits").len(), 1);
        assert!(t.contains_abort());
        assert!(t.total_frame_bytes() > 0);
    }

    #[test]
    fn no_abort_when_none_sent() {
        let mut t = Transcript::new();
        t.push(Party::Alice, positions_msg());
        assert!(!t.contains_abort());
    }

    #[test]
    fn frames_are_length_prefixed() {
        let m = positions_msg();
        let frame = m.to_frame();
        let len = u32::from_be_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        assert_eq!(len + 4, frame.len());
        assert_eq!(m.kind(), "positions");
        assert_eq!(m.to_string(), "positions");
    }

    #[test]
    fn channel_handles_share_one_transcript() {
        let alice_handle = ClassicalChannel::new();
        let bob_handle = alice_handle.clone();
        assert!(alice_handle.is_empty());
        alice_handle.send(Party::Alice, positions_msg());
        bob_handle.send(
            Party::Bob,
            ClassicalMessage::Ack {
                phase: "di-check-1".into(),
            },
        );
        assert_eq!(alice_handle.len(), 2);
        assert_eq!(bob_handle.len(), 2);
        let snapshot = bob_handle.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert!(!alice_handle.aborted());
        alice_handle.send(
            Party::Alice,
            ClassicalMessage::Abort {
                reason: "identity mismatch".into(),
            },
        );
        assert!(bob_handle.aborted());
    }

    #[test]
    fn party_display() {
        assert_eq!(Party::Alice.to_string(), "Alice");
        assert_eq!(Party::Bob.to_string(), "Bob");
    }
}
