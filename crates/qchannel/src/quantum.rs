//! The quantum channel.
//!
//! The paper emulates the channel between Alice and Bob as a chain of η identity gates, each
//! 60 ns long and subject to the device's identity-gate error; Bob's half of the pair idles
//! (and decoheres) for the same duration. [`QuantumChannel`] implements exactly that, plus the
//! [`ChannelTap`] hook that lets eavesdropper models touch qubits in flight.

use crate::epr::{EprPair, ALICE_QUBIT, BOB_QUBIT};
use noise::DeviceModel;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Static description of a quantum channel: its length (in identity gates) and the device
/// noise model governing each gate.
///
/// # Examples
///
/// ```rust
/// use qchannel::quantum::ChannelSpec;
/// use noise::DeviceModel;
///
/// let spec = ChannelSpec::noisy_identity_chain(700, DeviceModel::ibm_brisbane_like());
/// assert_eq!(spec.length(), 700);
/// assert!((spec.duration_us() - 42.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    length: usize,
    device: DeviceModel,
}

impl ChannelSpec {
    /// A zero-length, noiseless channel.
    pub fn ideal() -> Self {
        Self {
            length: 0,
            device: DeviceModel::ideal(),
        }
    }

    /// A channel of `length` noisy identity gates under the given device model — the paper's
    /// emulation of a physical channel (Section IV).
    pub fn noisy_identity_chain(length: usize, device: DeviceModel) -> Self {
        Self { length, device }
    }

    /// Number of identity gates in the chain (the paper's η).
    pub fn length(&self) -> usize {
        self.length
    }

    /// The device model governing gate noise.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// Total channel duration in microseconds (η × identity-gate time).
    pub fn duration_us(&self) -> f64 {
        self.length as f64 * self.device.identity_gate_time_ns() / 1000.0
    }

    /// Replaces the channel length (builder-style), keeping the device model.
    #[must_use]
    pub fn with_length(mut self, length: usize) -> Self {
        self.length = length;
        self
    }
}

impl Default for ChannelSpec {
    fn default() -> Self {
        Self::ideal()
    }
}

impl fmt::Display for ChannelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel(η={}, {:.2} µs, device={})",
            self.length,
            self.duration_us(),
            self.device.name()
        )
    }
}

/// An eavesdropper's hook into the quantum channel.
///
/// Attack strategies implement this trait; the protocol invokes the tap at the two points an
/// eavesdropper can physically act:
///
/// - [`ChannelTap::on_pair_emitted`] — right after the (possibly Eve-controlled) source emits
///   a pair, before either party stores it;
/// - [`ChannelTap::on_transmit`] — while Alice's encoded qubit flies to Bob through the
///   channel.
///
/// Both default to doing nothing, so an attack only overrides the point(s) it uses.
pub trait ChannelTap {
    /// Called once per emitted EPR pair, before distribution.
    fn on_pair_emitted(&mut self, _pair: &mut EprPair, _rng: &mut dyn RngCore) {}

    /// Called once per pair while Alice's qubit is in flight to Bob.
    fn on_transmit(&mut self, _pair: &mut EprPair, _rng: &mut dyn RngCore) {}

    /// Whether [`ChannelTap::on_pair_emitted`] does anything. Defaults to
    /// `true` (conservative: an unknown tap is assumed active); taps that
    /// only act in flight override this so substrates with a cheaper state
    /// representation (the engine's Pauli-frame backend) can skip
    /// materialising the full density matrix at emission time.
    fn acts_on_emission(&self) -> bool {
        true
    }

    /// Whether [`ChannelTap::on_transmit`] does anything. Same contract as
    /// [`ChannelTap::acts_on_emission`], for the in-flight hook.
    fn acts_on_transmit(&self) -> bool {
        true
    }

    /// `true` when the tap never touches the quantum state at all — no
    /// hook does anything — so every tap invocation can be skipped.
    fn is_passive(&self) -> bool {
        !self.acts_on_emission() && !self.acts_on_transmit()
    }

    /// Human-readable name of the attack (for reports).
    fn name(&self) -> &str {
        "passive"
    }
}

/// A no-op tap: the honest channel with no eavesdropper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTap;

impl ChannelTap for NoTap {
    fn acts_on_emission(&self) -> bool {
        false
    }

    fn acts_on_transmit(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "none"
    }
}

/// The quantum channel between Alice and Bob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantumChannel {
    spec: ChannelSpec,
}

impl QuantumChannel {
    /// Creates a channel from its spec.
    pub fn new(spec: ChannelSpec) -> Self {
        Self { spec }
    }

    /// The channel's spec.
    pub fn spec(&self) -> &ChannelSpec {
        &self.spec
    }

    /// Compiles every noise placement this channel can apply — the fast
    /// path for per-trial use. Bit-identical to the one-shot methods on
    /// this type; see [`crate::compiled`].
    pub fn compile(&self) -> crate::compiled::CompiledQuantumChannel {
        crate::compiled::CompiledQuantumChannel::new(self.spec.clone())
    }

    /// Transmits Alice's half of `pair` to Bob: applies η noisy identity gates to the flying
    /// qubit and, when the device models it, thermal idling to Bob's stored qubit for the same
    /// duration.
    pub fn transmit<R: RngCore + ?Sized>(&self, pair: &mut EprPair, _rng: &mut R) {
        let device = self.spec.device();
        if device.is_ideal() || self.spec.length == 0 {
            return;
        }
        let gate_channel = device.identity_gate_channel();
        let idle_channel = device.idle_channel(device.identity_gate_time_ns());
        for _ in 0..self.spec.length {
            gate_channel.apply(pair.density_mut(), &[ALICE_QUBIT]);
            if device.idle_partner_noise() {
                idle_channel.apply(pair.density_mut(), &[BOB_QUBIT]);
            }
        }
    }

    /// Transmits the pair through the channel with an eavesdropper tap attached: the tap's
    /// [`ChannelTap::on_transmit`] runs first (Eve intercepts at the channel entrance), then
    /// the physical noise is applied.
    pub fn transmit_tapped(
        &self,
        pair: &mut EprPair,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        tap.on_transmit(pair, rng);
        self.transmit(pair, rng);
    }

    /// Distributes a freshly emitted pair to the two parties, letting the tap act first
    /// (Eve may control the source in the device-independent threat model).
    pub fn distribute_tapped(
        &self,
        pair: &mut EprPair,
        tap: &mut dyn ChannelTap,
        rng: &mut dyn RngCore,
    ) {
        tap.on_pair_emitted(pair, rng);
    }
}

impl Default for QuantumChannel {
    fn default() -> Self {
        Self::new(ChannelSpec::ideal())
    }
}

impl fmt::Display for QuantumChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QuantumChannel[{}]", self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::pauli::Pauli;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    #[test]
    fn spec_metadata() {
        let spec = ChannelSpec::noisy_identity_chain(700, DeviceModel::ibm_brisbane_like());
        assert_eq!(spec.length(), 700);
        assert!((spec.duration_us() - 42.0).abs() < 1e-9);
        assert_eq!(spec.device().name(), "ibm_brisbane_like");
        let shorter = spec.clone().with_length(10);
        assert_eq!(shorter.length(), 10);
        assert!((shorter.duration_us() - 0.6).abs() < 1e-9);
        assert_eq!(ChannelSpec::default(), ChannelSpec::ideal());
        assert!(spec.to_string().contains("η=700"));
    }

    #[test]
    fn ideal_channel_leaves_pairs_untouched() {
        let channel = QuantumChannel::new(ChannelSpec::ideal());
        let mut pair = EprPair::ideal();
        channel.transmit(&mut pair, &mut rng());
        assert!((pair.fidelity_phi_plus() - 1.0).abs() < 1e-10);
        assert_eq!(QuantumChannel::default(), channel);
    }

    #[test]
    fn short_noisy_channel_keeps_high_fidelity() {
        let channel = QuantumChannel::new(ChannelSpec::noisy_identity_chain(
            10,
            DeviceModel::ibm_brisbane_like(),
        ));
        let mut pair = EprPair::ideal();
        channel.transmit(&mut pair, &mut rng());
        let f = pair.fidelity_phi_plus();
        assert!(f > 0.99, "η=10 should barely degrade the pair, got {f}");
        assert!(f < 1.0);
    }

    #[test]
    fn long_noisy_channel_degrades_fidelity_substantially() {
        let device = DeviceModel::ibm_brisbane_like();
        let short = QuantumChannel::new(ChannelSpec::noisy_identity_chain(10, device.clone()));
        let long = QuantumChannel::new(ChannelSpec::noisy_identity_chain(700, device));
        let mut a = EprPair::ideal();
        let mut b = EprPair::ideal();
        short.transmit(&mut a, &mut rng());
        long.transmit(&mut b, &mut rng());
        assert!(b.fidelity_phi_plus() < a.fidelity_phi_plus() - 0.1);
        assert!(
            b.fidelity_phi_plus() > 0.3,
            "700 gates must not fully destroy the state"
        );
    }

    #[test]
    fn channel_noise_commutes_with_encoding_for_detection_purposes() {
        // Encoding then transmitting still decodes to the right Bell state most of the time
        // on a short channel.
        let channel = QuantumChannel::new(ChannelSpec::noisy_identity_chain(
            10,
            DeviceModel::ibm_brisbane_like(),
        ));
        let mut r = rng();
        let mut correct = 0;
        let trials = 200;
        for _ in 0..trials {
            let mut pair = EprPair::ideal();
            pair.apply_alice_pauli(Pauli::X);
            channel.transmit(&mut pair, &mut r);
            if pair.bell_measure(&mut r).state.encoding_pauli() == Pauli::X {
                correct += 1;
            }
        }
        assert!(correct as f64 / trials as f64 > 0.9);
    }

    #[test]
    fn taps_are_invoked() {
        struct CountingTap {
            emitted: usize,
            transmitted: usize,
        }
        impl ChannelTap for CountingTap {
            fn on_pair_emitted(&mut self, _pair: &mut EprPair, _rng: &mut dyn RngCore) {
                self.emitted += 1;
            }
            fn on_transmit(&mut self, pair: &mut EprPair, _rng: &mut dyn RngCore) {
                self.transmitted += 1;
                pair.apply_alice_pauli(Pauli::Z);
            }
            fn name(&self) -> &str {
                "counting"
            }
        }
        let channel = QuantumChannel::new(ChannelSpec::ideal());
        let mut tap = CountingTap {
            emitted: 0,
            transmitted: 0,
        };
        let mut pair = EprPair::ideal();
        let mut r = rng();
        channel.distribute_tapped(&mut pair, &mut tap, &mut r);
        channel.transmit_tapped(&mut pair, &mut tap, &mut r);
        assert_eq!(tap.emitted, 1);
        assert_eq!(tap.transmitted, 1);
        assert_eq!(tap.name(), "counting");
        // The tap's Z shows up in the decoded Bell state.
        assert!((pair.fidelity_with(qsim::bell::BellState::PhiMinus) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn no_tap_is_a_no_op() {
        let channel = QuantumChannel::new(ChannelSpec::ideal());
        let mut pair = EprPair::ideal();
        let mut tap = NoTap;
        channel.distribute_tapped(&mut pair, &mut tap, &mut rng());
        channel.transmit_tapped(&mut pair, &mut tap, &mut rng());
        assert!((pair.fidelity_phi_plus() - 1.0).abs() < 1e-10);
        assert_eq!(tap.name(), "none");
    }
}
