//! # qchannel — quantum and classical channels for the UA-DI-QSDC reproduction
//!
//! The protocol runs over two channels:
//!
//! - a **quantum channel** carrying Alice's qubits to Bob, which the paper emulates as a chain
//!   of η noisy identity gates (60 ns each on `ibm_brisbane`) — see [`quantum::QuantumChannel`]
//!   and [`quantum::ChannelSpec`];
//! - an **authenticated public classical channel** used for position/basis/outcome
//!   announcements, which an eavesdropper can read but not forge — see
//!   [`classical::ClassicalChannel`] and [`classical::Transcript`].
//!
//! The crate also defines [`epr::EprPair`], the two-qubit working unit the whole protocol is
//! built from, and [`quantum::ChannelTap`], the hook eavesdropper models implement to touch
//! qubits in flight. The standard tap library — intercept-and-resend,
//! man-in-the-middle, and entangle-and-measure — lives in [`taps`].
//!
//! ## Example
//!
//! ```rust
//! use qchannel::prelude::*;
//! use noise::DeviceModel;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let channel = QuantumChannel::new(ChannelSpec::noisy_identity_chain(10, DeviceModel::ibm_brisbane_like()));
//! let mut pair = EprPair::ideal();
//! channel.transmit(&mut pair, &mut rng);
//! assert!(pair.fidelity_phi_plus() > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classical;
pub mod compiled;
pub mod epr;
pub mod quantum;
pub mod taps;

pub use classical::{ClassicalChannel, ClassicalMessage, Transcript};
pub use compiled::{CompiledQuantumChannel, TwirledProgram};
pub use epr::EprPair;
pub use quantum::{ChannelSpec, ChannelTap, QuantumChannel};
pub use taps::{
    EntangleMeasureAttack, InterceptBasis, InterceptResendAttack, ManInTheMiddleAttack,
    SubstituteState,
};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::classical::{ClassicalChannel, ClassicalMessage, Transcript};
    pub use crate::compiled::{CompiledQuantumChannel, TwirledProgram};
    pub use crate::epr::EprPair;
    pub use crate::quantum::{ChannelSpec, ChannelTap, QuantumChannel};
    pub use crate::taps::{
        EntangleMeasureAttack, InterceptBasis, InterceptResendAttack, ManInTheMiddleAttack,
        SubstituteState,
    };
}
