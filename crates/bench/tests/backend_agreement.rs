//! Statistical agreement between the pauli-twirled and density-matrix
//! substrates on honest workloads.
//!
//! The twirled backend discards the χ off-diagonals of the thermal-
//! relaxation placements, so it is *not* trial-for-trial identical to the
//! exact substrate — the contract is statistical: over the honest η-sweep
//! workload the paper's curves integrate, its false-alarm rate must land
//! within overlapping Wilson score intervals of the density-matrix rate at
//! matched trial counts. Each case runs a full honest session sweep on both
//! substrates (hundreds of trials), so this is a property test with a
//! hand-rolled case loop: the workspace `proptest!` macro pins 64 cases,
//! two orders of magnitude more sessions than tier-1 CI can afford here.

use analysis::stats::wilson_interval;
use protocol::engine::{BackendKind, Parallelism, SessionEngine};
use rand::{Rng, SeedableRng};

/// Trials per substrate per case — enough for a Wilson interval a few
/// percentage points wide at honest false-alarm rates.
const TRIALS: usize = 400;

/// Three-sigma score: a false overlap failure needs both estimates to be
/// wrong by luck simultaneously, so flakes are negligible while a real
/// rate distortion (percentage points at η ≤ 12) still fails.
const Z: f64 = 3.0;

/// The honest false-alarm (abort) Wilson interval of one substrate, plus
/// the delivered count.
fn false_alarm_interval(eta: usize, seed: u64, backend: BackendKind) -> ((f64, f64), usize) {
    let engine = SessionEngine::new(seed).with_parallelism(Parallelism::Auto);
    let scenario = bench::sweep_scenario(eta, seed, backend);
    let summary = engine
        .run_trials(&scenario, TRIALS)
        .expect("honest sweep runs");
    let aborted = summary.trials - summary.delivered;
    (
        wilson_interval(aborted, summary.trials, Z),
        summary.delivered,
    )
}

#[test]
fn honest_false_alarm_rates_agree_within_wilson_intervals() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7717);
    // The η=0 boundary (emission noise only) plus random interior points of
    // the Fig. 3 channel-length range.
    let mut etas = vec![0usize];
    etas.extend((0..3).map(|_| rng.gen_range(1usize..=12)));
    for eta in etas {
        let seed = rng.gen::<u64>();
        let ((dm_lo, dm_hi), dm_delivered) =
            false_alarm_interval(eta, seed, BackendKind::DensityMatrix);
        let ((tw_lo, tw_hi), tw_delivered) =
            false_alarm_interval(eta, seed, BackendKind::PauliTwirled);
        assert!(
            dm_delivered > 0,
            "density-matrix delivered nothing at η={eta}"
        );
        assert!(
            tw_delivered > 0,
            "pauli-twirled delivered nothing at η={eta}"
        );
        assert!(
            tw_lo <= dm_hi && dm_lo <= tw_hi,
            "η={eta} (seed {seed}): twirled false-alarm interval [{tw_lo:.4}, {tw_hi:.4}] \
             does not overlap density-matrix [{dm_lo:.4}, {dm_hi:.4}]"
        );
    }
}
