//! Fault-injection suite for `shardctl merge` and `shardctl queue resume`,
//! driving the bin's library helpers ([`bench::shard_io`] and
//! [`protocol::engine::queue`]) directly: a truncated JSON result, a corrupt
//! result fingerprint, a duplicated shard file and a checkpoint from a
//! different plan must each fail with an error **naming the offending file**
//! and carrying a **distinct** [`MergeError`] — and must never panic.

use bench::shard_io::{self, MergeFileError};
use protocol::engine::{
    BackendKind, ClaimOutcome, MergeError, QueueError, Scenario, SessionEngine, ShardOutput,
    ShardQueue, ShardResult, SlotState,
};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ua-di-qsdc-faults-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).expect("scratch dir creates");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn scenario(seed: u64) -> Scenario {
    shard_io::demo_scenario("intercept", seed, BackendKind::DensityMatrix)
        .expect("demo scenario builds")
}

/// Executes a 4-trial run as 2 shard result files, exactly as
/// `shardctl run --index i > result-i.json` would write them.
fn write_result_files(dir: &TempDir, seed: u64) -> Vec<String> {
    let engine = SessionEngine::new(seed);
    let scenario = scenario(seed);
    engine
        .plan(&scenario, 4)
        .split_into(2)
        .iter()
        .enumerate()
        .map(|(i, plan)| {
            let result = engine
                .execute_shard(plan, ShardOutput::Summary)
                .expect("shard executes");
            let path = dir.path(&format!("result-{i}.json"));
            fs::write(&path, serde::json::to_string(&vec![result])).expect("result writes");
            path
        })
        .collect()
}

#[test]
fn truncated_result_json_names_the_file() {
    let dir = TempDir::new("truncated");
    let files = write_result_files(&dir, 1);
    // A worker died mid-write: the second file is cut in half.
    let bytes = fs::read(&files[1]).unwrap();
    fs::write(&files[1], &bytes[..bytes.len() / 2]).unwrap();

    let err = shard_io::merge_result_files(&files).unwrap_err();
    assert!(
        matches!(err, MergeFileError::Parse { ref file, .. } if file == &files[1]),
        "{err:?}"
    );
    assert!(err.to_string().contains("result-1.json"), "{err}");
    assert!(err.to_string().contains("invalid"), "{err}");
}

#[test]
fn corrupt_fingerprint_is_a_fingerprint_mismatch_naming_the_file() {
    let dir = TempDir::new("fingerprint");
    let files = write_result_files(&dir, 2);
    // Bit-flip the second shard's run fingerprint: it now claims to belong
    // to a different run.
    let mut results: Vec<ShardResult> =
        serde::json::from_str(&fs::read_to_string(&files[1]).unwrap()).unwrap();
    results[0].fingerprint ^= 1;
    fs::write(&files[1], serde::json::to_string(&results)).unwrap();

    let err = shard_io::merge_result_files(&files).unwrap_err();
    assert!(
        matches!(
            err,
            MergeFileError::Merge {
                ref file,
                error: MergeError::FingerprintMismatch { .. },
                ..
            } if file == &files[1]
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("result-1.json"), "{err}");
    assert!(err.to_string().contains("fingerprint"), "{err}");
}

#[test]
fn duplicate_shard_files_are_rejected_by_name() {
    let dir = TempDir::new("duplicate");
    let files = write_result_files(&dir, 3);

    // The same path listed twice is refused before anything is read…
    let listed_twice = vec![files[0].clone(), files[1].clone(), files[0].clone()];
    let err = shard_io::merge_result_files(&listed_twice).unwrap_err();
    assert!(
        matches!(err, MergeFileError::DuplicateFile { ref file } if file == &files[0]),
        "{err:?}"
    );
    assert!(err.to_string().contains("duplicate"), "{err}");
    assert!(err.to_string().contains("result-0.json"), "{err}");

    // …and a *copy* of a shard under another name is an overlap naming the
    // copy (a different, equally distinct error).
    let copy = dir.path("copy-of-0.json");
    fs::copy(&files[0], &copy).unwrap();
    let with_copy = vec![files[0].clone(), copy.clone(), files[1].clone()];
    let err = shard_io::merge_result_files(&with_copy).unwrap_err();
    assert!(
        matches!(
            err,
            MergeFileError::Merge {
                ref file,
                error: MergeError::Overlap { .. },
                ..
            } if file == &copy
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("copy-of-0.json"), "{err}");
}

#[test]
fn checkpoint_from_a_different_plan_is_rejected() {
    let queue_dir = TempDir::new("foreign-queue");
    let engine = SessionEngine::new(4);
    let queue = ShardQueue::init(
        queue_dir.0.join("q"),
        &engine.plan(&scenario(4), 4),
        2,
        ShardOutput::Summary,
    )
    .expect("queue initializes");

    // A worker submits a result executed from a *different* plan (other
    // scenario, other fingerprint): rejected with the precise MergeError.
    let alien_engine = SessionEngine::new(999);
    let alien_plan = alien_engine.plan(&scenario(99), 4).split_into(2)[0].clone();
    let alien = alien_engine
        .execute_shard(&alien_plan, ShardOutput::Summary)
        .expect("alien shard executes");
    let err = queue.submit(&alien).unwrap_err();
    assert!(
        matches!(
            err,
            QueueError::Merge {
                error: MergeError::FingerprintMismatch { .. },
                ..
            }
        ),
        "{err:?}"
    );

    // Now the nastier variant: the *results directory* holds a file from a
    // different plan whose checksum was made to look right in the
    // checkpoint. The merge must reject it naming the file.
    loop {
        match queue.claim("w", 60_000).expect("claim") {
            ClaimOutcome::Claimed(plan) => {
                let good = engine
                    .execute_shard(&plan, ShardOutput::Summary)
                    .expect("shard executes");
                queue.submit(&good).expect("good result records");
            }
            ClaimOutcome::Drained => break,
            ClaimOutcome::Wait { .. } => unreachable!(),
        }
    }

    let mut checkpoint = queue.checkpoint().expect("checkpoint loads");
    let done_index = checkpoint
        .shards
        .iter()
        .position(|s| matches!(s.state, SlotState::Done { .. }))
        .expect("one shard is done");
    let alien_bytes = serde::json::to_string(&alien).into_bytes();
    checkpoint.shards[done_index].state = SlotState::Done {
        result_fingerprint: protocol::engine::queue::content_fingerprint(&alien_bytes),
    };
    let result_path = queue.result_path(&checkpoint.shards[done_index]);
    fs::write(&result_path, &alien_bytes).unwrap();
    fs::write(queue.checkpoint_path(), serde::json::to_string(&checkpoint)).unwrap();

    let err = queue.merge().unwrap_err();
    assert!(
        matches!(
            err,
            QueueError::Merge {
                path: Some(ref path),
                error: MergeError::FingerprintMismatch { .. },
            } if *path == result_path
        ),
        "{err:?}"
    );
    assert!(
        err.to_string()
            .contains(&checkpoint.shards[done_index].result_file_name()),
        "{err}"
    );
}

#[test]
fn corrupt_and_truncated_queue_results_fail_resume_by_name() {
    let queue_dir = TempDir::new("resume-faults");
    let engine = SessionEngine::new(5);
    let scenario = scenario(5);
    let queue = ShardQueue::init(
        queue_dir.0.join("q"),
        &engine.plan(&scenario, 4),
        2,
        ShardOutput::Summary,
    )
    .expect("queue initializes");
    loop {
        match queue.claim("w", 60_000).expect("claim") {
            ClaimOutcome::Claimed(plan) => {
                let result = engine
                    .execute_shard(&plan, ShardOutput::Summary)
                    .expect("executes");
                queue.submit(&result).expect("submits");
            }
            ClaimOutcome::Drained => break,
            ClaimOutcome::Wait { .. } => unreachable!(),
        }
    }

    let checkpoint = queue.checkpoint().expect("checkpoint loads");
    let target = queue.result_path(&checkpoint.shards[1]);
    let original = fs::read(&target).unwrap();

    // Truncation (e.g. a worker killed mid-write, or bit rot) is caught by
    // the content fingerprint before the JSON is even parsed.
    fs::write(&target, &original[..original.len() / 3]).unwrap();
    let err = queue.recover().unwrap_err();
    assert!(matches!(err, QueueError::Corrupt { .. }), "{err:?}");
    assert!(
        err.to_string()
            .contains(&checkpoint.shards[1].result_file_name()),
        "{err}"
    );

    // A deleted result file is a distinct, equally named fault.
    fs::remove_file(&target).unwrap();
    let err = queue.recover().unwrap_err();
    assert!(matches!(err, QueueError::Missing { .. }), "{err:?}");
    assert!(
        err.to_string()
            .contains(&checkpoint.shards[1].result_file_name()),
        "{err}"
    );

    // Restoring the bytes heals the sweep: resume verifies, and the merge is
    // byte-identical to the uninterrupted run.
    fs::write(&target, &original).unwrap();
    assert!(queue.recover().expect("recovers").complete());
    let merged = queue.merge().expect("merges").into_summary().unwrap();
    let whole = engine.run_trials(&scenario, 4).expect("whole run");
    assert_eq!(
        serde::json::to_string(&merged),
        serde::json::to_string(&whole)
    );
}

#[test]
fn out_of_range_checkpoint_slots_are_rejected_not_panicked_on() {
    let queue_dir = TempDir::new("bad-slot");
    let engine = SessionEngine::new(7);
    let queue = ShardQueue::init(
        queue_dir.0.join("q"),
        &engine.plan(&scenario(7), 4),
        2,
        ShardOutput::Summary,
    )
    .expect("queue initializes");
    // Corrupt a slot's range so it escapes the plan: re-deriving its
    // sub-plan used to panic inside `claim`; now every load rejects the
    // manifest, naming the checkpoint.
    let mut checkpoint = queue.checkpoint().expect("checkpoint loads");
    checkpoint.shards[0].trial_start = 1_000;
    fs::write(queue.checkpoint_path(), serde::json::to_string(&checkpoint)).unwrap();
    let err = queue.claim("w", 60_000).unwrap_err();
    assert!(matches!(err, QueueError::InvalidSlot { .. }), "{err:?}");
    assert!(err.to_string().contains("checkpoint.json"), "{err}");
    assert!(err.to_string().contains("1000"), "{err}");
}

#[test]
fn truncated_checkpoint_json_names_the_checkpoint() {
    let queue_dir = TempDir::new("truncated-checkpoint");
    let engine = SessionEngine::new(6);
    let queue = ShardQueue::init(
        queue_dir.0.join("q"),
        &engine.plan(&scenario(6), 2),
        2,
        ShardOutput::Summary,
    )
    .expect("queue initializes");
    let bytes = fs::read(queue.checkpoint_path()).unwrap();
    fs::write(queue.checkpoint_path(), &bytes[..bytes.len() / 2]).unwrap();
    let err = ShardQueue::open(queue.dir()).unwrap_err();
    assert!(matches!(err, QueueError::Parse { .. }), "{err:?}");
    assert!(err.to_string().contains("checkpoint.json"), "{err}");
}
