//! Allocation-regression tests for the compiled-kernel hot path.
//!
//! This binary installs the workspace's [`alloc_counter::CountingAllocator`]
//! as the global allocator (one binary, one allocator — which is why these
//! tests live in their own integration-test file) and asserts two levels of
//! the tentpole contract:
//!
//! 1. the compiled emit/transmit/measure kernel loop is **allocation-free**
//!    in steady state — exactly zero heap allocations per pair once the
//!    thread-local pools and scratch buffers are warm;
//! 2. a whole engine trial stays under a per-trial allocation budget, so
//!    bookkeeping growth (records, outcomes, summaries) cannot silently
//!    regress back toward the pre-pool ~200 allocations/trial.
//!
//! The global counters are process-wide, so the tests serialise on a mutex.

use protocol::engine::{BackendKind, Parallelism, SessionEngine};
use qchannel::epr::EprPair;
use qchannel::quantum::QuantumChannel;
use rand::SeedableRng;
use std::sync::Mutex;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator::new();

/// Serialises the tests: the allocation counters are global, so concurrent
/// tests would attribute each other's allocations.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn compiled_kernel_loop_is_allocation_free_in_steady_state() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let scenario = bench::shard_io::demo_scenario("intercept", 7, BackendKind::default())
        .expect("demo scenario");
    let compiled = QuantumChannel::new(scenario.config.channel().clone()).compile();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut pair = EprPair::ideal();
    let angles = [
        0.0,
        std::f64::consts::FRAC_PI_4,
        std::f64::consts::FRAC_PI_2,
    ];

    let step = |pair: &mut EprPair, rng: &mut rand::rngs::StdRng| {
        compiled.emit_noisy_pair_into(pair);
        compiled.transmit(pair, rng);
        for theta_a in angles {
            for theta_b in angles {
                compiled.emit_noisy_pair_into(pair);
                pair.measure_both_in_bases(theta_a, theta_b, rng);
            }
        }
    };

    // Warm the thread-local scratch buffers and the pair's own storage.
    for _ in 0..8 {
        step(&mut pair, &mut rng);
    }

    let before = alloc_counter::CountingAllocator::allocations();
    for _ in 0..64 {
        step(&mut pair, &mut rng);
    }
    let allocations = alloc_counter::CountingAllocator::allocations() - before;
    assert_eq!(
        allocations, 0,
        "steady-state kernel loop allocated {allocations} times over 64 iterations"
    );
}

#[test]
fn twirled_trial_loop_is_allocation_free_once_warm() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    // The η-sweep workload: 50 noisy identity gates on a brisbane-like
    // device, so both the emission and the convolved transmit distributions
    // are non-trivial — every emit and transmit below really samples a Pauli
    // and XORs it into the frame.
    let scenario = bench::sweep_scenario(50, 7, BackendKind::PauliTwirled);
    let compiled = QuantumChannel::new(scenario.config.channel().clone()).compile();
    assert!(!compiled.twirled().is_trivial(), "sweep noise must twirl");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut pair = EprPair::ideal();
    let angles = [
        0.0,
        std::f64::consts::FRAC_PI_4,
        std::f64::consts::FRAC_PI_2,
    ];

    let step = |pair: &mut EprPair, rng: &mut rand::rngs::StdRng| {
        for theta_a in angles {
            for theta_b in angles {
                compiled.emit_twirled_pair_into(pair, rng);
                compiled.transmit_twirled(pair, rng);
                pair.measure_both_in_bases(theta_a, theta_b, rng);
            }
        }
    };

    // One warm-up pass allocates the pair's frame storage; after that the
    // loop is pure integer/bitmask work and may not allocate at all.
    step(&mut pair, &mut rng);

    let before = alloc_counter::CountingAllocator::allocations();
    for _ in 0..256 {
        step(&mut pair, &mut rng);
    }
    let allocations = alloc_counter::CountingAllocator::allocations() - before;
    assert_eq!(
        allocations, 0,
        "warm twirled trial loop allocated {allocations} times over 256 iterations"
    );
}

#[test]
fn steady_state_trial_allocations_stay_bounded() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let scenario = bench::shard_io::demo_scenario("intercept", 7, BackendKind::default())
        .expect("demo scenario");
    let engine = SessionEngine::new(7).with_parallelism(Parallelism::Serial);

    // Warm the thread-local pair pool, basis cache, and kernel scratch.
    engine.run_trials(&scenario, 16).expect("warm-up trials");

    const TRIALS: usize = 64;
    // Measured steady state is ~66 allocations/trial (session records and
    // outcome bookkeeping); the pre-pool kernels sat at ~207. The budget
    // leaves headroom for summary growth without letting the pools regress.
    const BUDGET_PER_TRIAL: u64 = 120;
    let before = alloc_counter::CountingAllocator::allocations();
    engine
        .run_trials(&scenario, TRIALS)
        .expect("measured trials");
    let allocations = alloc_counter::CountingAllocator::allocations() - before;
    let per_trial = allocations / TRIALS as u64;
    assert!(
        per_trial <= BUDGET_PER_TRIAL,
        "steady-state trials allocate {per_trial}/trial ({allocations} over {TRIALS}), \
         budget is {BUDGET_PER_TRIAL}/trial"
    );
}
