//! File-level plumbing for sharded sweeps: the helpers behind `shardctl`'s
//! `merge` and `queue` subcommands, exposed as a library so tests (notably
//! the fault-injection suite) can drive them directly.
//!
//! Everything here is strict by design: a truncated JSON file, a duplicated
//! result, or a shard from a different run each fails with an error that
//! **names the offending file** and carries the precise underlying
//! [`MergeError`] — never a panic, and never a silent skip.

use protocol::engine::{
    Adversary, BackendKind, MergeError, MergedRun, Scenario, ShardMerger, ShardResult,
};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use qchannel::taps::{InterceptBasis, SubstituteState};
use rand::SeedableRng;
use std::fmt;

/// Why reading or merging shard result files failed. Each fault class is a
/// distinct variant so callers (and tests) can tell a truncated file from a
/// duplicated one from a cross-run shard.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeFileError {
    /// The same file was listed twice — merging it twice would double-count
    /// its trials.
    DuplicateFile {
        /// The repeated path.
        file: String,
    },
    /// A file could not be read.
    Read {
        /// The unreadable path.
        file: String,
        /// The I/O error rendering.
        message: String,
    },
    /// A file held syntactically or structurally invalid JSON (e.g.
    /// truncated by a dying worker).
    Parse {
        /// The unparseable path.
        file: String,
        /// The parser's diagnosis.
        message: String,
    },
    /// A shard was rejected by the merger; `file` names its source.
    Merge {
        /// The offending shard's source file.
        file: String,
        /// The rejected shard's trial range, for the error message.
        trial_range: (u64, u64),
        /// The precise merge failure.
        error: MergeError,
    },
    /// The final fold failed (empty or incomplete coverage) — no single file
    /// is at fault.
    Finish {
        /// The precise merge failure.
        error: MergeError,
    },
}

impl fmt::Display for MergeFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeFileError::DuplicateFile { file } => write!(
                f,
                "duplicate shard result file `{file}`: each result may be merged only once"
            ),
            MergeFileError::Read { file, message } => {
                write!(f, "cannot read {file}: {message}")
            }
            MergeFileError::Parse { file, message } => {
                write!(f, "invalid shard result JSON in {file}: {message}")
            }
            MergeFileError::Merge {
                file,
                trial_range: (start, end),
                error,
            } => write!(f, "cannot merge {file} (trials {start}..{end}): {error}"),
            MergeFileError::Finish { error } => write!(f, "merge failed: {error}"),
        }
    }
}

impl std::error::Error for MergeFileError {}

/// The first file that appears twice in the list, if any. Merging the same
/// result file twice would double-count its trials (surfacing, at best, as an
/// opaque overlap error), so it is rejected up front by name.
pub fn find_duplicate_file(files: &[String]) -> Option<&String> {
    files
        .iter()
        .enumerate()
        .find(|(i, file)| files[..*i].contains(file))
        .map(|(_, file)| file)
}

/// Reads one shard result file (a JSON array of [`ShardResult`]s, as
/// `shardctl run` writes it).
///
/// # Errors
///
/// [`MergeFileError::Read`] or [`MergeFileError::Parse`], naming the file.
pub fn read_result_file(file: &str) -> Result<Vec<ShardResult>, MergeFileError> {
    let text = std::fs::read_to_string(file).map_err(|e| MergeFileError::Read {
        file: file.to_string(),
        message: e.to_string(),
    })?;
    serde::json::from_str(&text).map_err(|e| MergeFileError::Parse {
        file: file.to_string(),
        message: e.to_string(),
    })
}

/// Merges shard results with per-shard provenance: the same trial-order fold
/// as [`protocol::engine::merge_shard_results`], but a failure names the
/// source (file) whose shard was rejected.
///
/// # Errors
///
/// [`MergeFileError::Merge`] naming the rejected shard's source, or
/// [`MergeFileError::Finish`] when coverage is empty/incomplete.
pub fn merge_sources(mut sources: Vec<(String, ShardResult)>) -> Result<MergedRun, MergeFileError> {
    // Sort exactly as `merge_shard_results` does (empty shards share their
    // start with the following shard; the count key orders them first).
    sources.sort_by(|(_, a), (_, b)| {
        (a.trial_start, a.trial_count).cmp(&(b.trial_start, b.trial_count))
    });
    let mut merger = ShardMerger::new();
    for (source, result) in sources {
        let trial_range = (result.trial_start, result.trial_end());
        merger.push(result).map_err(|error| MergeFileError::Merge {
            file: source,
            trial_range,
            error,
        })?;
    }
    merger
        .finish()
        .map_err(|error| MergeFileError::Finish { error })
}

/// The whole `shardctl merge FILES` pipeline as a function: reject duplicate
/// paths, read and parse every file, fold all shards in trial order.
///
/// # Errors
///
/// Any [`MergeFileError`]; every file-shaped fault names its file.
pub fn merge_result_files(files: &[String]) -> Result<MergedRun, MergeFileError> {
    if let Some(duplicate) = find_duplicate_file(files) {
        return Err(MergeFileError::DuplicateFile {
            file: duplicate.clone(),
        });
    }
    let mut sources: Vec<(String, ShardResult)> = Vec::new();
    for file in files {
        let batch = read_result_file(file)?;
        sources.extend(batch.into_iter().map(|r| (file.clone(), r)));
    }
    merge_sources(sources)
}

/// Serializes a merged run exactly as `shardctl merge` (and `shardctl queue
/// resume`) print it — one JSON line, so the two paths stay byte-comparable.
pub fn merged_run_to_json(merged: &MergedRun) -> String {
    match merged {
        MergedRun::Summary(summary) => serde::json::to_string(summary),
        MergedRun::Outcomes(outcomes) => serde::json::to_string(outcomes),
    }
}

/// The adversary preset names `shardctl scenario --preset` accepts.
pub const SCENARIO_PRESETS: [&str; 6] = [
    "honest",
    "impersonate-alice",
    "impersonate-bob",
    "intercept",
    "mitm",
    "entangle",
];

/// Builds the deterministic demo scenario behind `shardctl scenario`: a
/// small-message config with a generous DI budget, identities from `seed`,
/// and the preset's adversary, on `backend`.
///
/// # Errors
///
/// A human-readable message for an unknown preset.
pub fn demo_scenario(preset: &str, seed: u64, backend: BackendKind) -> Result<Scenario, String> {
    let adversary = match preset {
        "honest" => Adversary::Honest,
        "impersonate-alice" => Adversary::ImpersonateAlice,
        "impersonate-bob" => Adversary::ImpersonateBob,
        "intercept" => Adversary::InterceptResend(InterceptBasis::Computational),
        "mitm" => Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
        "entangle" => Adversary::EntangleMeasure { strength: 1.0 },
        other => return Err(format!("unknown preset `{other}`")),
    };
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(64)
        .build()
        .map_err(|e| e.to_string())?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    Ok(Scenario::new(config, identities)
        .with_label(format!("shardctl-{preset}"))
        .with_adversary(adversary)
        .with_backend(backend))
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::engine::{SessionEngine, ShardOutput};

    fn results(backend: BackendKind) -> Vec<ShardResult> {
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(24)
            .build()
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let identities = IdentityPair::generate(2, &mut rng);
        let scenario = Scenario::new(config, identities).with_backend(backend);
        let engine = SessionEngine::new(5);
        engine
            .plan(&scenario, 4)
            .split_into(2)
            .iter()
            .map(|p| engine.execute_shard(p, ShardOutput::Summary).unwrap())
            .collect()
    }

    #[test]
    fn duplicate_files_are_found_by_name() {
        let files = vec!["a.json".to_string(), "b.json".to_string()];
        assert_eq!(find_duplicate_file(&files), None);
        let twice = vec![
            "a.json".to_string(),
            "b.json".to_string(),
            "a.json".to_string(),
        ];
        assert_eq!(find_duplicate_file(&twice), Some(&"a.json".to_string()));
        assert!(matches!(
            merge_result_files(&twice),
            Err(MergeFileError::DuplicateFile { file }) if file == "a.json"
        ));
    }

    #[test]
    fn merge_sources_names_the_offending_file() {
        let shards = results(BackendKind::DensityMatrix);
        // Clean merge works out of order.
        let ok = merge_sources(vec![
            ("b.json".into(), shards[1].clone()),
            ("a.json".into(), shards[0].clone()),
        ]);
        assert!(ok.is_ok());
        // Duplicate shard *content* (same range from two files) is an
        // overlap naming the second file.
        let err = merge_sources(vec![
            ("a.json".into(), shards[0].clone()),
            ("copy-of-a.json".into(), shards[0].clone()),
            ("b.json".into(), shards[1].clone()),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("copy-of-a.json"), "{err}");
        assert!(err.to_string().contains("overlap"), "{err}");
        assert!(matches!(
            err,
            MergeFileError::Merge {
                error: MergeError::Overlap { .. },
                ..
            }
        ));
        // A cross-backend shard is rejected naming its file and substrate.
        let alien = results(BackendKind::Statevector);
        let err = merge_sources(vec![
            ("a.json".into(), shards[0].clone()),
            ("sv.json".into(), alien[1].clone()),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("sv.json"), "{err}");
        assert!(err.to_string().contains("statevector"), "{err}");
    }

    #[test]
    fn demo_scenarios_cover_every_preset_and_reject_unknown_ones() {
        for preset in SCENARIO_PRESETS {
            let scenario = demo_scenario(preset, 7, BackendKind::DensityMatrix).unwrap();
            assert_eq!(scenario.label, format!("shardctl-{preset}"));
        }
        let statevector = demo_scenario("honest", 7, BackendKind::Statevector).unwrap();
        assert_eq!(statevector.backend, BackendKind::Statevector);
        assert!(demo_scenario("quantum-cat", 7, BackendKind::DensityMatrix).is_err());
    }
}
