//! # bench — experiment harness regenerating every table and figure of the paper
//!
//! Each experiment of the evaluation section has one function here, one `cargo run -p bench
//! --bin …` binary that prints its rows, and one Criterion bench target. The functions are
//! deliberately deterministic (seeded RNG) so the printed tables are reproducible.
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Table I | [`table1_rows`] | `table1` |
//! | Fig. 2 (a–d) | [`fig2_experiment`] | `fig2` |
//! | Fig. 3 | [`fig3_experiment`] | `fig3` |
//! | Impersonation sim (Sec. III-A/IV) | [`impersonation_experiment`] | `attack_impersonation` |
//! | Intercept-resend sim (Sec. III-B/IV) | [`channel_attack_experiment`] | `attack_intercept` |
//! | MITM sim (Sec. III-C/IV) | [`channel_attack_experiment`] | `attack_mitm` |
//! | Entangle-measure sim (Sec. III-D/IV) | [`channel_attack_experiment`] | `attack_entangle` |
//! | Info-leakage audit (Sec. III-E) | [`leakage_experiment`] | `attack_leakage` |
//! | CHSH behaviour (Sec. II) | [`chsh_baseline_experiment`] | `chsh_baseline` |
//! | Backend ablation (Sec. IV emulation vs trajectories) | [`backend_ablation_experiment`] | `ablation_backend` |
//! | Engine throughput trajectory | — | `bench_throughput` |
//!
//! The engine-driven attack binaries additionally accept `--backend KIND`
//! (any [`BackendKind`] name or alias) to re-run their sweep on another
//! simulation substrate ([`backend_and_legacy_from_args`]); `shardctl` takes
//! the same flag on its `scenario` and `plan` subcommands.
//!
//! The `fig2`, `fig3`, `ablation_backend`, `table1` and
//! `attack_intercept`/`attack_mitm`/`attack_entangle` binaries are
//! formatters over **stored campaign definitions** (see [`campaigns`]): each
//! drives the checked-in `crates/bench/campaigns/*.json` declaration through
//! the campaign engine and prints the same table the legacy loop printed —
//! the loops remain behind `--legacy` and CI byte-diffs the two outputs. The
//! `shardctl campaign` subcommands run the same definitions resumably on a
//! queue fleet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaigns;
pub mod shard_io;

use analysis::histogram::counts_to_row;
use analysis::rows::{AccuracyPoint, AttackRow, DetectionPoint, HistogramRow, Table1Row};
use analysis::stats::mean;
use attacks::impersonation::run_impersonation_trials;
use attacks::leakage::LeakageAudit;
use noise::{DeviceModel, NoisyExecutor};
use protocol::config::SessionConfig;
use protocol::descriptor::ProtocolDescriptor;
use protocol::di_check::{run_di_check, DiCheckRound};
use protocol::engine::parallel::scatter;
use protocol::engine::{
    Adversary, BackendKind, Parallelism, Scenario, SessionEngine, TrialSummary,
};
use protocol::identity::IdentityPair;
use protocol::session::Impersonation;
use qchannel::epr::EprPair;
use qchannel::quantum::ChannelSpec;
use qchannel::taps::{InterceptBasis, SubstituteState};
use qsim::circuit::{Circuit, CircuitBuilder};
use qsim::counts::Counts;
use qsim::pauli::Pauli;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The four 2-bit messages of Fig. 2 in panel order.
pub const FIG2_MESSAGES: [&str; 4] = ["00", "01", "10", "11"];

/// The execution policy every experiment in this crate runs under: the
/// [`Parallelism::ENV_VAR`] environment variable when set (`serial`, `auto`,
/// `threads:N`), all available cores otherwise.
///
/// Every experiment is deterministic *per point* — engine trials by the
/// per-trial RNG stream contract, sweep points by [`derive_seed`] — so for a
/// given seed the policy changes wall time only, never a number in a table.
///
/// Note that introducing the per-point streams was itself a one-time break:
/// `fig2_experiment`, `fig3_experiment` and `chsh_baseline_experiment`
/// previously threaded one sequential RNG through the whole sweep, so their
/// outputs for a given seed differ from pre-parallel releases (the shapes the
/// paper cares about are unchanged and remain covered by tests).
pub fn engine_parallelism() -> Parallelism {
    Parallelism::from_env().unwrap_or(Parallelism::Auto)
}

/// [`engine_parallelism`] plus the standard stderr banner every binary in
/// this crate prints: the selected policy, the resolved worker count, and the
/// environment variable that overrides it.
pub fn announce_parallelism() -> Parallelism {
    let parallelism = engine_parallelism();
    eprintln!(
        "engine parallelism: {parallelism} ({} worker threads; override via {})",
        parallelism.worker_count(),
        Parallelism::ENV_VAR
    );
    parallelism
}

/// Parses the optional `--backend KIND` (or `--backend=KIND`) and `--legacy`
/// flags from the process arguments — the shared CLI of the engine-driven
/// attack binaries. Defaults to the density-matrix substrate and the stored
/// campaign path; exits with a usage error on an unknown kind or any
/// unrecognised argument, so a typo can never silently fall back to the
/// default substrate.
pub fn backend_and_legacy_from_args() -> (BackendKind, bool) {
    fn parse_kind(raw: &str) -> BackendKind {
        raw.parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2)
        })
    }
    let mut backend = BackendKind::default();
    let mut legacy = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--backend" {
            let raw = args.next().unwrap_or_else(|| {
                let kinds: Vec<&str> = BackendKind::ALL.iter().map(|k| k.as_str()).collect();
                eprintln!("--backend requires a value ({})", kinds.join(" | "));
                std::process::exit(2)
            });
            backend = parse_kind(&raw);
        } else if let Some(raw) = flag.strip_prefix("--backend=") {
            backend = parse_kind(raw);
        } else if flag == "--legacy" {
            legacy = true;
        } else {
            eprintln!("unknown option `{flag}` (supported: --backend KIND, --legacy)");
            std::process::exit(2);
        }
    }
    (backend, legacy)
}

/// Derives an independent RNG seed for sweep point `index` of an experiment
/// seeded with `seed` (one [`rand::splitmix64`] step — the same finalizer the
/// engine derives trial streams with), so sweep points can execute on any
/// worker in any order and still reproduce bit-for-bit. This is the same
/// derivation campaign expansion applies
/// ([`protocol::engine::derive_point_seed`]), which is why a stored campaign
/// reproduces the legacy sweep loops bit-for-bit.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    protocol::engine::derive_point_seed(seed, index)
}

/// Builds the single-EPR-pair message-transfer circuit the paper runs on `ibm_brisbane`:
/// prepare `|Φ+⟩`, apply the encoding Pauli for `message` on Alice's qubit, push it through
/// `eta` identity gates, and Bell-measure.
///
/// # Panics
///
/// Panics if `message` is not one of `00`, `01`, `10`, `11`.
pub fn message_transfer_circuit(message: &str, eta: usize) -> Circuit {
    let pauli = match message {
        "00" => Pauli::I,
        "01" => Pauli::Z,
        "10" => Pauli::X,
        "11" => Pauli::IY,
        other => panic!("{other:?} is not a 2-bit message"),
    };
    let mut builder = CircuitBuilder::new(2, 2).h(0).cnot(0, 1).barrier();
    builder = builder.unitary(pauli.symbol(), pauli.matrix(), &[0]);
    builder = builder.identity_chain(0, eta).barrier();
    // Bell-state measurement: disentangle and read out.
    builder.cnot(0, 1).h(0).measure(0, 0).measure(1, 1).build()
}

/// Decodes the raw Bell-measurement readout histogram into a histogram over decoded 2-bit
/// messages: readout `m_a m_b` identifies the Bell state (`00→Φ+`, `10→Φ−`, `01→Ψ+`,
/// `11→Ψ−`), which decodes to the message via the paper's encoding rule.
pub fn decode_readout_counts(raw: &Counts) -> Counts {
    let mut decoded = Counts::new();
    for (label, count) in raw.iter() {
        let message = match label {
            "00" => "00",
            "10" => "01",
            "01" => "10",
            "11" => "11",
            other => other,
        };
        decoded.record_many(message, count);
    }
    decoded
}

/// Runs the Fig. 2 experiment: for each of the four messages, transmit it over a channel of
/// `eta` identity gates on the given device and histogram Bob's decoded outcomes. The four
/// panels run in parallel (see [`engine_parallelism`]), each on its own derived seed.
pub fn fig2_experiment(
    device: &DeviceModel,
    eta: usize,
    shots: usize,
    seed: u64,
) -> Vec<HistogramRow> {
    let executor = NoisyExecutor::new(device.clone());
    let (rows, _stats) = scatter(engine_parallelism(), FIG2_MESSAGES.len(), |index| {
        let message = FIG2_MESSAGES[index];
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, index as u64));
        let circuit = message_transfer_circuit(message, eta);
        let raw = executor
            .sample(&circuit, shots, &mut rng)
            .expect("fig2 circuit is well-formed");
        let decoded = decode_readout_counts(&raw);
        counts_to_row(message, &decoded)
    });
    rows
}

/// Runs the Fig. 3 experiment: sweep the channel length `eta` over `eta_values` and measure
/// the decoding accuracy (averaged over the four messages) at each point. Sweep points run in
/// parallel (see [`engine_parallelism`]), each on its own derived seed.
pub fn fig3_experiment(
    device: &DeviceModel,
    eta_values: &[usize],
    shots_per_message: usize,
    seed: u64,
) -> Vec<AccuracyPoint> {
    let executor = NoisyExecutor::new(device.clone());
    let (points, _stats) = scatter(engine_parallelism(), eta_values.len(), |index| {
        let eta = eta_values[index];
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, index as u64));
        let mut correct = 0u64;
        let mut total = 0u64;
        for message in FIG2_MESSAGES {
            let circuit = message_transfer_circuit(message, eta);
            let raw = executor
                .sample(&circuit, shots_per_message, &mut rng)
                .expect("fig3 circuit is well-formed");
            let decoded = decode_readout_counts(&raw);
            correct += decoded.get(message);
            total += decoded.total();
        }
        AccuracyPoint {
            eta,
            duration_us: eta as f64 * device.identity_gate_time_ns() / 1000.0,
            accuracy: if total == 0 {
                0.0
            } else {
                correct as f64 / total as f64
            },
            shots: total,
        }
    });
    points
}

/// The η values of the paper's Fig. 3 sweep: 10 to 700 in steps of 10 (0.6 µs to 42 µs).
pub fn fig3_eta_values() -> Vec<usize> {
    (1..=70).map(|i| i * 10).collect()
}

/// Renders Table I from the protocol descriptors.
pub fn table1_rows() -> Vec<Table1Row> {
    ProtocolDescriptor::table1()
        .into_iter()
        .map(|d| Table1Row {
            protocol: d.name.clone(),
            resource: d.resource.to_string(),
            measurement: d.measurement.to_string(),
            qubits_per_bit: d.qubits_per_message_bit,
            user_authentication: d.user_authentication,
        })
        .collect()
}

/// The honest verification scenario behind the `table1` binary's engine
/// cross-check. The stored `table1` campaign runs this exact physical
/// scenario (configuration, identities, seed discipline), so the campaign
/// and `--legacy` paths print identical bytes.
pub fn table1_verification_scenario(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    let config = SessionConfig::builder()
        .message_bits(16)
        .check_bits(4)
        .di_check_pairs(64)
        .build()
        .expect("table1 verification config is valid");
    Scenario::new(config, identities).with_label("table1-verification")
}

/// The legacy (pre-campaign) verification loop of the `table1` binary: a
/// direct engine run of [`table1_verification_scenario`].
pub fn table1_verification_summary(trials: usize, seed: u64) -> TrialSummary {
    SessionEngine::new(seed)
        .with_parallelism(engine_parallelism())
        .run_trials(&table1_verification_scenario(seed), trials)
        .expect("table1 verification sessions run")
}

/// Default session configuration used by the attack experiments (small message, generous
/// DI-check budget so honest aborts are negligible, strict authentication).
pub fn attack_session_config() -> SessionConfig {
    SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(220)
        .auth_error_tolerance(0.0)
        .build()
        .expect("attack session config is valid")
}

/// Runs the impersonation experiment for each identity length in `l_values`, measuring the
/// detection rate against the analytic `1 − (1/4)^l`. The per-`l` trial loops fan out across
/// cores inside [`run_impersonation_trials`]; the sweep itself stays sequential because each
/// point consumes the shared RNG stream (keeping historic outputs bit-identical).
pub fn impersonation_experiment(
    l_values: &[usize],
    target: Impersonation,
    trials: usize,
    seed: u64,
) -> Vec<DetectionPoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = attack_session_config();
    l_values
        .iter()
        .map(|&l| {
            let identities = IdentityPair::generate(l, &mut rng);
            let summary = run_impersonation_trials(&config, &identities, target, trials, &mut rng)
                .expect("impersonation trials run");
            DetectionPoint {
                identity_qubits: l,
                trials,
                measured: summary.detection_rate,
                analytic: summary.analytic_probability,
            }
        })
        .collect()
}

/// The channel-attack strategies of Sections III-B/C/D.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelAttackKind {
    /// Intercept-and-resend in the computational basis.
    InterceptResend,
    /// Man-in-the-middle source substitution.
    ManInTheMiddle,
    /// Entangle-and-measure with a full CNOT ancilla.
    EntangleMeasure,
}

/// Runs `trials` protocol sessions against the given channel attack and also reports the
/// honest (no-attack) control with the same configuration, on the default
/// density-matrix substrate.
pub fn channel_attack_experiment(
    kind: ChannelAttackKind,
    trials: usize,
    seed: u64,
) -> (AttackRow, AttackRow) {
    channel_attack_experiment_on(kind, BackendKind::DensityMatrix, trials, seed)
}

/// [`channel_attack_experiment`] on an explicit simulation substrate (the
/// `--backend` flag of the attack binaries). Scenarios on different backends
/// carry different fingerprints, so the two substrates draw independent trial
/// streams by construction.
pub fn channel_attack_experiment_on(
    kind: ChannelAttackKind,
    backend: BackendKind,
    trials: usize,
    seed: u64,
) -> (AttackRow, AttackRow) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Relax the authentication tolerance so the channel attacks are detected by the mechanism
    // the paper highlights — the second CHSH round dropping to the classical bound — rather
    // than by the (equally fatal) authentication mismatch that would fire first with a strict
    // tolerance.
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(220)
        .auth_error_tolerance(1.0)
        .build()
        .expect("channel attack config is valid");
    let identities = IdentityPair::generate(4, &mut rng);
    let adversary = match kind {
        ChannelAttackKind::InterceptResend => {
            Adversary::InterceptResend(InterceptBasis::Computational)
        }
        ChannelAttackKind::ManInTheMiddle => {
            Adversary::ManInTheMiddle(SubstituteState::RandomComputational)
        }
        ChannelAttackKind::EntangleMeasure => Adversary::EntangleMeasure { strength: 1.0 },
    };
    let scenarios = [
        Scenario::new(config.clone(), identities.clone())
            .with_label("attacked")
            .with_adversary(adversary)
            .with_backend(backend),
        Scenario::new(config, identities)
            .with_label("honest control")
            .with_backend(backend),
    ];
    let summaries = SessionEngine::new(seed)
        .with_parallelism(engine_parallelism())
        .run_batch(&scenarios, trials)
        .expect("attack trials run");
    let mut rows = summaries.into_iter().map(summary_to_row);
    let attacked = rows.next().expect("attacked row");
    let honest = rows.next().expect("honest row");
    (attacked, honest)
}

pub(crate) fn summary_to_row(summary: TrialSummary) -> AttackRow {
    let detection_rate = summary.detection_rate();
    AttackRow {
        attack: if summary.adversary.is_empty() || summary.adversary == "honest" {
            "honest (no attack)".into()
        } else {
            summary.adversary
        },
        trials: summary.trials,
        delivered: summary.delivered,
        detection_rate,
        mean_chsh_round1: summary.mean_chsh_round1,
        mean_chsh_round2: summary.mean_chsh_round2,
    }
}

/// Builds the η-sweep workload behind the `bench_throughput` sweep lanes: an
/// honest session over `eta` noisy identity gates of an `ibm_brisbane`-like
/// channel — the regime the paper's detection-rate curves integrate over,
/// where per-trial channel simulation (not protocol bookkeeping) dominates
/// the cost and the substrates separate.
pub fn sweep_scenario(eta: usize, seed: u64, backend: BackendKind) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(220)
        .auth_error_tolerance(1.0)
        .channel(ChannelSpec::noisy_identity_chain(
            eta,
            DeviceModel::ibm_brisbane_like(),
        ))
        .build()
        .expect("sweep config is valid");
    Scenario::new(config, identities)
        .with_label(format!("sweep-honest-eta{eta}"))
        .with_backend(backend)
}

/// One grid point of the backend-ablation sweep: one adversary, one channel
/// length, one simulation substrate.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendAblationRow {
    /// Adversary display name (`honest`, `intercept-resend`, `mitm`).
    pub adversary: &'static str,
    /// Channel length in identity gates (the paper's η, the Fig. 3 axis).
    pub eta: usize,
    /// The substrate the sessions ran on.
    pub backend: BackendKind,
    /// Sessions executed.
    pub trials: usize,
    /// Sessions in which the message was delivered.
    pub delivered: usize,
    /// Fraction of sessions that aborted (the adversary was detected).
    pub detection_rate: f64,
    /// Mean CHSH value of the second check, where it was estimated.
    pub mean_chsh_round2: Option<f64>,
}

/// The adversaries the backend ablation sweeps, in row order: the honest
/// control plus the two channel attacks whose detection-rate curves the paper
/// plots (intercept-resend and MITM).
pub const ABLATION_ADVERSARIES: [&str; 3] = ["honest", "intercept-resend", "mitm"];

/// Runs the backend ablation: the Fig. 2/3 channel-length grid (`etas`
/// identity gates on an `ibm_brisbane`-like device) for the honest control,
/// intercept-resend and MITM adversaries, on **every** production substrate
/// ([`BackendKind::ALL`]). Rows come back grid-major (η, then adversary, then
/// backend), so consecutive row pairs compare the exact density-matrix
/// emulation against the sampled statevector trajectories on an otherwise
/// identical scenario — the divergence the `ablation_backend` binary reports.
pub fn backend_ablation_experiment(
    etas: &[usize],
    trials: usize,
    seed: u64,
) -> Vec<BackendAblationRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    let adversary_for = |name: &str| match name {
        "honest" => Adversary::Honest,
        "intercept-resend" => Adversary::InterceptResend(InterceptBasis::Computational),
        "mitm" => Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
        other => unreachable!("unknown ablation adversary `{other}`"),
    };
    let mut grid: Vec<(usize, &'static str, BackendKind)> = Vec::new();
    let mut scenarios: Vec<Scenario> = Vec::new();
    for &eta in etas {
        // As in `channel_attack_experiment`: a generous DI budget keeps honest
        // aborts negligible, and the relaxed authentication tolerance lets the
        // CHSH mechanism (not the auth mismatch) do the detecting.
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(220)
            .auth_error_tolerance(1.0)
            .channel(ChannelSpec::noisy_identity_chain(
                eta,
                DeviceModel::ibm_brisbane_like(),
            ))
            .build()
            .expect("ablation config is valid");
        for adversary in ABLATION_ADVERSARIES {
            for backend in BackendKind::ALL {
                grid.push((eta, adversary, backend));
                scenarios.push(
                    Scenario::new(config.clone(), identities.clone())
                        .with_label(format!("{adversary} η={eta} on {backend}"))
                        .with_adversary(adversary_for(adversary))
                        .with_backend(backend),
                );
            }
        }
    }
    let summaries = SessionEngine::new(seed)
        .with_parallelism(engine_parallelism())
        .run_batch(&scenarios, trials)
        .expect("ablation sessions run");
    grid.into_iter()
        .zip(summaries)
        .map(|((eta, adversary, backend), summary)| BackendAblationRow {
            adversary,
            eta,
            backend,
            trials: summary.trials,
            delivered: summary.delivered,
            detection_rate: summary.detection_rate(),
            mean_chsh_round2: summary.mean_chsh_round2,
        })
        .collect()
}

/// Runs the information-leakage audit (Section III-E): executes `sessions` honest sessions
/// with a fixed identity pair and audits the accumulated public transcripts.
pub fn leakage_experiment(sessions: usize, seed: u64) -> LeakageAudit {
    let mut rng = StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    let scenario =
        Scenario::new(attack_session_config(), identities.clone()).with_label("leakage-audit");
    let transcripts: Vec<_> = SessionEngine::new(seed)
        .with_parallelism(engine_parallelism())
        .run_outcomes(&scenario, sessions)
        .expect("honest session runs")
        .into_iter()
        .map(|outcome| outcome.transcript)
        .collect();
    LeakageAudit::with_identity(&transcripts, &identities.bob)
}

/// One row of the CHSH-estimation experiment: check-pair budget `d`, mean estimated `S` over
/// repetitions, and its spread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChshPoint {
    /// Number of check pairs per round.
    pub check_pairs: usize,
    /// Depolarizing noise applied to each pair before the check.
    pub depolarizing: f64,
    /// Mean estimated CHSH value.
    pub mean_chsh: f64,
    /// Standard deviation of the estimate across repetitions.
    pub std_dev: f64,
}

/// Estimates how the CHSH statistic behaves as a function of the check-pair budget `d` and the
/// pair noise level — the supporting experiment behind the choice of `d` ("several hundred to
/// a few thousand pairs", paper Section II step 1). Grid points run in parallel (see
/// [`engine_parallelism`]), each on its own derived seed.
pub fn chsh_baseline_experiment(
    d_values: &[usize],
    depolarizing_levels: &[f64],
    repetitions: usize,
    seed: u64,
) -> Vec<ChshPoint> {
    let grid: Vec<(f64, usize)> = depolarizing_levels
        .iter()
        .flat_map(|&p| d_values.iter().map(move |&d| (p, d)))
        .collect();
    let (points, _stats) = scatter(engine_parallelism(), grid.len(), |index| {
        let (p, d) = grid[index];
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, index as u64));
        let mut estimates = Vec::with_capacity(repetitions);
        for _ in 0..repetitions {
            let mut pairs: Vec<EprPair> = (0..d)
                .map(|_| {
                    let mut pair = EprPair::ideal();
                    if p > 0.0 {
                        noise::KrausChannel::depolarizing(p).apply(pair.density_mut(), &[0]);
                    }
                    pair
                })
                .collect();
            let (report, _) = run_di_check(DiCheckRound::First, &mut pairs, 2.0, &mut rng);
            if let Some(s) = report.chsh {
                estimates.push(s);
            }
        }
        let mean_chsh = mean(&estimates).unwrap_or(0.0);
        let std_dev = analysis::stats::population_std_dev(&estimates).unwrap_or(0.0);
        ChshPoint {
            check_pairs: d,
            depolarizing: p,
            mean_chsh,
            std_dev,
        }
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_transfer_circuit_shape() {
        let c = message_transfer_circuit("10", 10);
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_clbits(), 2);
        // 2 prep + 1 encode + 10 channel + 2 BSM gates
        assert_eq!(c.gate_count(), 15);
    }

    #[test]
    #[should_panic(expected = "not a 2-bit message")]
    fn bad_message_panics() {
        let _ = message_transfer_circuit("0", 1);
    }

    #[test]
    fn decode_readout_maps_bell_states_to_messages() {
        let mut raw = Counts::new();
        raw.record_many("10", 5); // Φ− → message 01
        raw.record_many("01", 3); // Ψ+ → message 10
        let decoded = decode_readout_counts(&raw);
        assert_eq!(decoded.get("01"), 5);
        assert_eq!(decoded.get("10"), 3);
    }

    #[test]
    fn fig2_on_ideal_device_is_perfect() {
        let rows = fig2_experiment(&DeviceModel::ideal(), 10, 64, 1);
        assert_eq!(rows.len(), 4);
        for row in rows {
            assert_eq!(
                row.accuracy(),
                1.0,
                "ideal device decodes {} perfectly",
                row.encoded
            );
            assert!((row.fidelity - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fig2_on_noisy_device_keeps_high_fidelity_at_eta_10() {
        let rows = fig2_experiment(&DeviceModel::ibm_brisbane_like(), 10, 256, 2);
        for row in &rows {
            assert!(
                row.accuracy() > 0.85,
                "η=10 accuracy for {} should be ≥0.85, got {}",
                row.encoded,
                row.accuracy()
            );
        }
    }

    #[test]
    fn fig3_accuracy_decreases_with_channel_length() {
        let points = fig3_experiment(&DeviceModel::ibm_brisbane_like(), &[10, 700], 128, 3);
        assert_eq!(points.len(), 2);
        assert!(points[0].accuracy > points[1].accuracy + 0.1);
        assert!((points[1].duration_us - 42.0).abs() < 1e-9);
    }

    #[test]
    fn fig3_eta_values_match_paper_sweep() {
        let etas = fig3_eta_values();
        assert_eq!(etas.len(), 70);
        assert_eq!(etas[0], 10);
        assert_eq!(*etas.last().unwrap(), 700);
    }

    #[test]
    fn table1_has_five_rows_and_one_ua_protocol() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.iter().filter(|r| r.user_authentication).count(), 1);
    }

    #[test]
    fn impersonation_experiment_tracks_analytic_curve() {
        let points = impersonation_experiment(&[1, 4], Impersonation::OfBob, 40, 4);
        assert_eq!(points.len(), 2);
        assert!(points[0].analytic < points[1].analytic);
        for p in points {
            assert!(p.deviation() < 0.2);
        }
    }

    #[test]
    fn channel_attacks_are_detected_and_honest_control_delivers() {
        for kind in [
            ChannelAttackKind::InterceptResend,
            ChannelAttackKind::ManInTheMiddle,
            ChannelAttackKind::EntangleMeasure,
        ] {
            let (attacked, honest) = channel_attack_experiment(kind, 3, 5);
            assert_eq!(attacked.delivered, 0, "{kind:?} must never deliver");
            assert!(attacked.detection_rate > 0.99);
            assert_eq!(honest.delivered, 3);
        }
    }

    #[test]
    fn channel_attack_experiment_runs_on_both_backends() {
        for backend in BackendKind::ALL {
            let (attacked, honest) =
                channel_attack_experiment_on(ChannelAttackKind::InterceptResend, backend, 3, 8);
            assert_eq!(attacked.delivered, 0, "{backend} must detect the attack");
            assert!(attacked.detection_rate > 0.99, "{backend}");
            assert_eq!(honest.delivered, 3, "{backend} honest control delivers");
        }
    }

    #[test]
    fn backend_ablation_covers_the_full_grid() {
        let rows = backend_ablation_experiment(&[0], 3, 9);
        // One η × three adversaries × every backend.
        assert_eq!(
            rows.len(),
            ABLATION_ADVERSARIES.len() * BackendKind::ALL.len()
        );
        for group in rows.chunks(BackendKind::ALL.len()) {
            for (row, kind) in group.iter().zip(BackendKind::ALL) {
                assert_eq!(row.adversary, group[0].adversary);
                assert_eq!(row.eta, group[0].eta);
                assert_eq!(row.backend, kind);
            }
        }
        for row in &rows {
            assert_eq!(row.trials, 3);
            match row.adversary {
                "honest" => assert_eq!(
                    row.delivered, 3,
                    "honest control must deliver on {}",
                    row.backend
                ),
                _ => assert!(
                    row.detection_rate > 0.99,
                    "{} on {} must be detected",
                    row.adversary,
                    row.backend
                ),
            }
        }
    }

    #[test]
    fn leakage_experiment_is_clean() {
        // Few sessions keep the test fast; the finite-sample bias of the plug-in mutual
        // information estimator with 12×4 samples is ≈ 0.14 bits, so the bound is loose here
        // (the attack_leakage binary runs 40 sessions and lands near zero).
        let audit = leakage_experiment(12, 6);
        assert!(audit.structurally_clean());
        assert!(audit.bell_distribution_bias() < 0.25);
        assert!(audit.mutual_information_with_id_b.unwrap() < 0.45);
    }

    #[test]
    fn chsh_baseline_mean_tracks_noise_level() {
        let points = chsh_baseline_experiment(&[200], &[0.0, 0.3], 3, 7);
        assert_eq!(points.len(), 2);
        assert!(points[0].mean_chsh > points[1].mean_chsh);
        assert!(points[0].mean_chsh > 2.4);
        assert!(points[0].std_dev >= 0.0);
    }
}
