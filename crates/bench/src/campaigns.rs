//! Stored [`Campaign`] definitions behind the figure binaries, and the
//! [`Sampler`] that executes their circuit-level points.
//!
//! Each figure is now "a checked-in campaign plus a report formatter": the
//! builders here construct the exact campaigns stored under
//! `crates/bench/campaigns/*.json` (a test locks the bytes), the
//! [`figure_sampler`] executes the sampled kinds (`fig2-histogram`,
//! `fig3-accuracy`), and the `*_rows` helpers recover each figure's row type
//! from a [`CampaignReport`]. Driving the stored campaign reproduces the
//! legacy hand-rolled loop bit-for-bit: sampled points seed their RNG with
//! [`derive_seed`](crate::derive_seed) of the point index, exactly as the
//! loops always have, and session campaigns plan under the master seed like
//! [`SessionEngine::run_batch`](protocol::engine::SessionEngine::run_batch).

use crate::{
    decode_readout_counts, message_transfer_circuit, BackendAblationRow, ChannelAttackKind,
    FIG2_MESSAGES,
};
use analysis::histogram::counts_to_row;
use analysis::rows::{AccuracyPoint, AttackRow, HistogramRow};
use noise::{DeviceModel, NoisyExecutor};
use protocol::config::SessionConfig;
use protocol::engine::{
    Adversary, Axis, AxisValue, BackendKind, Campaign, CampaignPoint, CampaignReport,
    CampaignSpace, CampaignWorkload, Sampler, Scenario, TrialSummary,
};
use protocol::identity::IdentityPair;
use qchannel::quantum::ChannelSpec;
use qchannel::taps::{InterceptBasis, SubstituteState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize, Value};

/// Sampler kind of the Fig. 2 decoded-counts histogram.
pub const FIG2_KIND: &str = "fig2-histogram";

/// Sampler kind of the Fig. 3 accuracy-vs-η sweep.
pub const FIG3_KIND: &str = "fig3-accuracy";

/// Resolves a device model stored by name in campaign parameters.
///
/// # Errors
///
/// Returns an error naming the unknown device.
pub fn device_by_name(name: &str) -> Result<DeviceModel, String> {
    match name {
        "ideal" => Ok(DeviceModel::ideal()),
        "ibm_brisbane_like" => Ok(DeviceModel::ibm_brisbane_like()),
        other => Err(format!("unknown device model `{other}`")),
    }
}

/// The Fig. 2 campaign: one sampled point per 2-bit message panel,
/// transmitting over `eta` identity gates on `device` with `shots` shots.
pub fn fig2_campaign(device: &DeviceModel, eta: usize, shots: usize, seed: u64) -> Campaign {
    Campaign {
        label: "fig2".into(),
        master_seed: seed,
        trials: shots,
        workload: CampaignWorkload::Sampled {
            kind: FIG2_KIND.into(),
            params: Value::Map(vec![
                ("device".into(), Value::Str(device.name().into())),
                // Int, not UInt: JSON parsing yields Int, and the stored
                // definition must round-trip to an equal value.
                ("eta".into(), Value::Int(eta as i64)),
            ]),
        },
        space: CampaignSpace::Grid(vec![Axis::Message(
            FIG2_MESSAGES.iter().map(|m| (*m).to_string()).collect(),
        )]),
    }
}

/// The Fig. 3 campaign: one sampled point per channel length, measuring the
/// four-message decoding accuracy with `shots_per_message` shots each.
pub fn fig3_campaign(
    device: &DeviceModel,
    eta_values: &[usize],
    shots_per_message: usize,
    seed: u64,
) -> Campaign {
    Campaign {
        label: "fig3".into(),
        master_seed: seed,
        trials: shots_per_message,
        workload: CampaignWorkload::Sampled {
            kind: FIG3_KIND.into(),
            params: Value::Map(vec![("device".into(), Value::Str(device.name().into()))]),
        },
        space: CampaignSpace::Grid(vec![Axis::Eta(eta_values.to_vec())]),
    }
}

/// The adversaries of the backend-ablation campaign, in axis order — the
/// engine values behind [`crate::ABLATION_ADVERSARIES`].
fn ablation_adversaries() -> Vec<Adversary> {
    vec![
        Adversary::Honest,
        Adversary::InterceptResend(InterceptBasis::Computational),
        Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
    ]
}

/// The backend-ablation campaign: the session grid of
/// [`backend_ablation_experiment`](crate::backend_ablation_experiment) —
/// η × adversary × backend, last axis fastest — as a declarative sweep. Same
/// identities, configuration, seed discipline and therefore the same bytes.
pub fn ablation_campaign(etas: &[usize], trials: usize, seed: u64) -> Campaign {
    let mut rng = StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    // The base carries η = 0; the Eta axis rebuilds the channel per point.
    // Everything else matches `backend_ablation_experiment`'s config.
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(220)
        .auth_error_tolerance(1.0)
        .channel(ChannelSpec::noisy_identity_chain(
            0,
            DeviceModel::ibm_brisbane_like(),
        ))
        .build()
        .expect("ablation config is valid");
    Campaign {
        label: "ablation-backend".into(),
        master_seed: seed,
        trials,
        workload: CampaignWorkload::Session {
            base: Scenario::new(config, identities),
        },
        space: CampaignSpace::Grid(vec![
            Axis::Eta(etas.to_vec()),
            Axis::Adversary(ablation_adversaries()),
            Axis::Backend(BackendKind::ALL.to_vec()),
        ]),
    }
}

/// A small two-axis session campaign (η × adversary on the `shardctl` demo
/// configuration) for CI chaos drills and quick-start examples.
pub fn demo_campaign(trials: usize, seed: u64) -> Campaign {
    let mut rng = StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(64)
        .channel(ChannelSpec::noisy_identity_chain(
            0,
            DeviceModel::ibm_brisbane_like(),
        ))
        .build()
        .expect("demo config is valid");
    Campaign {
        label: "demo".into(),
        master_seed: seed,
        trials,
        workload: CampaignWorkload::Session {
            base: Scenario::new(config, identities),
        },
        space: CampaignSpace::Grid(vec![
            Axis::Eta(vec![0, 10]),
            Axis::Adversary(vec![
                Adversary::Honest,
                Adversary::InterceptResend(InterceptBasis::Computational),
            ]),
        ]),
    }
}

/// The engine adversary of one channel-attack kind — the same lowering
/// [`channel_attack_experiment_on`](crate::channel_attack_experiment_on)
/// applies.
fn attack_adversary(kind: ChannelAttackKind) -> Adversary {
    match kind {
        ChannelAttackKind::InterceptResend => {
            Adversary::InterceptResend(InterceptBasis::Computational)
        }
        ChannelAttackKind::ManInTheMiddle => {
            Adversary::ManInTheMiddle(SubstituteState::RandomComputational)
        }
        ChannelAttackKind::EntangleMeasure => Adversary::EntangleMeasure { strength: 1.0 },
    }
}

/// The stored-campaign stem of one channel-attack kind (`attack_intercept`,
/// `attack_mitm`, `attack_entangle`).
pub fn attack_campaign_name(kind: ChannelAttackKind) -> &'static str {
    match kind {
        ChannelAttackKind::InterceptResend => "attack_intercept",
        ChannelAttackKind::ManInTheMiddle => "attack_mitm",
        ChannelAttackKind::EntangleMeasure => "attack_entangle",
    }
}

/// One channel-attack campaign: the attacked scenario and its honest
/// control, in the row order of
/// [`channel_attack_experiment_on`](crate::channel_attack_experiment_on) —
/// same identities, configuration and seed discipline, and therefore the
/// same bytes.
pub fn attack_campaign(
    kind: ChannelAttackKind,
    backend: BackendKind,
    trials: usize,
    seed: u64,
) -> Campaign {
    let mut rng = StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    // As in `channel_attack_experiment_on`: the relaxed authentication
    // tolerance lets the second CHSH round (the paper's mechanism) do the
    // detecting instead of the equally fatal auth mismatch.
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(220)
        .auth_error_tolerance(1.0)
        .build()
        .expect("channel attack config is valid");
    Campaign {
        label: attack_campaign_name(kind).replace('_', "-"),
        master_seed: seed,
        trials,
        workload: CampaignWorkload::Session {
            base: Scenario::new(config, identities).with_backend(backend),
        },
        space: CampaignSpace::Grid(vec![Axis::Adversary(vec![
            attack_adversary(kind),
            Adversary::Honest,
        ])]),
    }
}

/// The single-point verification campaign behind the `table1` binary: the
/// honest [`table1_verification_scenario`](crate::table1_verification_scenario)
/// run under its historic seed.
pub fn table1_campaign(trials: usize, seed: u64) -> Campaign {
    let mut rng = StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    let config = SessionConfig::builder()
        .message_bits(16)
        .check_bits(4)
        .di_check_pairs(64)
        .build()
        .expect("table1 verification config is valid");
    Campaign {
        label: "table1".into(),
        master_seed: seed,
        trials,
        workload: CampaignWorkload::Session {
            base: Scenario::new(config, identities),
        },
        // One explicit coordinate-free point: the base scenario itself.
        space: CampaignSpace::Points(vec![vec![]]),
    }
}

/// The [`Sampler`] executing this crate's sampled campaign kinds
/// ([`FIG2_KIND`], [`FIG3_KIND`]). Pure per point: device and η come from
/// the campaign parameters, the message/η coordinate from the point, and all
/// randomness from the point's derived seed.
pub fn figure_sampler() -> impl Sampler {
    |kind: &str, params: &Value, point: &CampaignPoint| match kind {
        FIG2_KIND => sample_fig2(params, point),
        FIG3_KIND => sample_fig3(params, point),
        other => Err(format!("unknown sampler kind `{other}`")),
    }
}

fn sample_fig2(params: &Value, point: &CampaignPoint) -> Result<Value, String> {
    let device = device_by_name(
        params
            .get_field("device")
            .and_then(|v| v.as_str())
            .map_err(|e| e.to_string())?,
    )?;
    let eta = params
        .get_field("eta")
        .and_then(|v| v.as_u64())
        .map_err(|e| e.to_string())? as usize;
    let message = point
        .coords
        .iter()
        .find_map(|coord| match coord {
            AxisValue::Message(message) => Some(message.as_str()),
            _ => None,
        })
        .ok_or_else(|| "fig2 points need a message coordinate".to_string())?;
    let mut rng = StdRng::seed_from_u64(point.seed);
    let circuit = message_transfer_circuit(message, eta);
    let raw = NoisyExecutor::new(device)
        .sample(&circuit, point.trials, &mut rng)
        .map_err(|e| e.to_string())?;
    let decoded = decode_readout_counts(&raw);
    Ok(counts_to_row(message, &decoded).to_value())
}

fn sample_fig3(params: &Value, point: &CampaignPoint) -> Result<Value, String> {
    let device = device_by_name(
        params
            .get_field("device")
            .and_then(|v| v.as_str())
            .map_err(|e| e.to_string())?,
    )?;
    let eta = point
        .coords
        .iter()
        .find_map(|coord| match coord {
            AxisValue::Eta(eta) => Some(*eta),
            _ => None,
        })
        .ok_or_else(|| "fig3 points need an η coordinate".to_string())?;
    let mut rng = StdRng::seed_from_u64(point.seed);
    let executor = NoisyExecutor::new(device.clone());
    let mut correct = 0u64;
    let mut total = 0u64;
    for message in FIG2_MESSAGES {
        let circuit = message_transfer_circuit(message, eta);
        let raw = executor
            .sample(&circuit, point.trials, &mut rng)
            .map_err(|e| e.to_string())?;
        let decoded = decode_readout_counts(&raw);
        correct += decoded.get(message);
        total += decoded.total();
    }
    Ok(AccuracyPoint {
        eta,
        duration_us: eta as f64 * device.identity_gate_time_ns() / 1000.0,
        accuracy: if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        },
        shots: total,
    }
    .to_value())
}

/// Recovers the Fig. 2 histogram rows from a campaign report, in panel
/// order.
///
/// # Errors
///
/// Returns an error when a point carries no sampled payload or the payload
/// is not a [`HistogramRow`].
pub fn fig2_rows(report: &CampaignReport) -> Result<Vec<HistogramRow>, String> {
    report
        .points
        .iter()
        .map(|point| {
            let value = point
                .sampled
                .as_ref()
                .ok_or_else(|| format!("point {} carries no sampled payload", point.index))?;
            HistogramRow::from_value(value).map_err(|e| e.to_string())
        })
        .collect()
}

/// Recovers the Fig. 3 accuracy points from a campaign report, in sweep
/// order.
///
/// # Errors
///
/// Returns an error when a point carries no sampled payload or the payload
/// is not an [`AccuracyPoint`].
pub fn fig3_points(report: &CampaignReport) -> Result<Vec<AccuracyPoint>, String> {
    report
        .points
        .iter()
        .map(|point| {
            let value = point
                .sampled
                .as_ref()
                .ok_or_else(|| format!("point {} carries no sampled payload", point.index))?;
            AccuracyPoint::from_value(value).map_err(|e| e.to_string())
        })
        .collect()
}

/// Loads one of the checked-in campaign definitions shipped under
/// `crates/bench/campaigns/` by stem (`fig2`, `fig3`, `ablation_backend`,
/// `demo`, `table1`, `attack_intercept`, `attack_mitm`, `attack_entangle`).
///
/// # Errors
///
/// Returns an error for an unknown stem. The stored bytes are locked to the
/// builders by tests, so a successful load always parses.
pub fn stored_campaign(name: &str) -> Result<Campaign, String> {
    let text = match name {
        "fig2" => include_str!("../campaigns/fig2.json"),
        "fig3" => include_str!("../campaigns/fig3.json"),
        "ablation_backend" => include_str!("../campaigns/ablation_backend.json"),
        "demo" => include_str!("../campaigns/demo.json"),
        "table1" => include_str!("../campaigns/table1.json"),
        "attack_intercept" => include_str!("../campaigns/attack_intercept.json"),
        "attack_mitm" => include_str!("../campaigns/attack_mitm.json"),
        "attack_entangle" => include_str!("../campaigns/attack_entangle.json"),
        other => return Err(format!("no stored campaign named `{other}`")),
    };
    serde::json::from_str(text).map_err(|e| format!("stored campaign `{name}` is corrupt: {e}"))
}

/// Recovers the `(attacked, honest control)` row pair of a channel-attack
/// campaign report, in the order
/// [`channel_attack_experiment_on`](crate::channel_attack_experiment_on)
/// returns them.
///
/// # Errors
///
/// Returns an error when the report does not hold exactly the two expected
/// points or a point lacks a merged summary.
pub fn attack_rows(report: &CampaignReport) -> Result<(AttackRow, AttackRow), String> {
    if report.points.len() != 2 {
        return Err(format!(
            "a channel-attack campaign holds exactly two points (attacked, honest control), \
             got {}",
            report.points.len()
        ));
    }
    let mut rows = Vec::with_capacity(2);
    for point in &report.points {
        let summary = point
            .summary
            .clone()
            .ok_or_else(|| format!("point {} carries no merged summary", point.index))?;
        rows.push(crate::summary_to_row(summary));
    }
    let honest = rows.pop().expect("two rows");
    let attacked = rows.pop().expect("two rows");
    Ok((attacked, honest))
}

/// The row pair printed by one channel-attack binary: the stored campaign
/// when the arguments match its checked-in defaults, a rebuilt campaign of
/// the same shape otherwise, or — with `legacy` — the pre-campaign
/// [`channel_attack_experiment_on`](crate::channel_attack_experiment_on)
/// loop (CI byte-diffs the two paths).
///
/// # Errors
///
/// Returns an error when the campaign fails to load, expand or execute.
pub fn attack_experiment_rows(
    kind: ChannelAttackKind,
    backend: BackendKind,
    trials: usize,
    seed: u64,
    legacy: bool,
) -> Result<(AttackRow, AttackRow), String> {
    if legacy {
        return Ok(crate::channel_attack_experiment_on(
            kind, backend, trials, seed,
        ));
    }
    let stored_defaults = match kind {
        ChannelAttackKind::InterceptResend => (20, 11),
        ChannelAttackKind::ManInTheMiddle => (20, 13),
        ChannelAttackKind::EntangleMeasure => (20, 17),
    };
    let campaign = if backend == BackendKind::default() && (trials, seed) == stored_defaults {
        stored_campaign(attack_campaign_name(kind))?
    } else {
        attack_campaign(kind, backend, trials, seed)
    };
    let report = campaign
        .run_direct(crate::engine_parallelism(), &protocol::engine::NoSampler)
        .map_err(|e| format!("campaign failed: {e}"))?;
    attack_rows(&report)
}

/// Recovers the single verification summary of the `table1` campaign.
///
/// # Errors
///
/// Returns an error when the report does not hold exactly one summarised
/// point.
pub fn table1_summary(report: &CampaignReport) -> Result<TrialSummary, String> {
    match report.points.as_slice() {
        [point] => point
            .summary
            .clone()
            .ok_or_else(|| format!("point {} carries no merged summary", point.index)),
        other => Err(format!(
            "the table1 campaign holds exactly one point, got {}",
            other.len()
        )),
    }
}

/// Recovers the backend-ablation rows from a campaign report, grid-major as
/// [`backend_ablation_experiment`](crate::backend_ablation_experiment)
/// returns them.
///
/// # Errors
///
/// Returns an error when a point lacks a merged summary or the expected
/// η/adversary/backend coordinates.
pub fn ablation_rows(report: &CampaignReport) -> Result<Vec<BackendAblationRow>, String> {
    report
        .points
        .iter()
        .map(|point| {
            let summary = point
                .summary
                .as_ref()
                .ok_or_else(|| format!("point {} carries no merged summary", point.index))?;
            let mut eta = None;
            let mut backend = None;
            let mut adversary = None;
            for coord in &point.coords {
                match coord {
                    AxisValue::Eta(e) => eta = Some(*e),
                    AxisValue::Backend(b) => backend = Some(*b),
                    AxisValue::Adversary(a) => {
                        adversary = Some(match a {
                            Adversary::Honest => "honest",
                            Adversary::InterceptResend(_) => "intercept-resend",
                            Adversary::ManInTheMiddle(_) => "mitm",
                            other => {
                                return Err(format!(
                                    "unexpected ablation adversary `{}`",
                                    other.name()
                                ))
                            }
                        })
                    }
                    _ => {}
                }
            }
            Ok(BackendAblationRow {
                adversary: adversary.ok_or_else(|| {
                    format!("point {} lacks an adversary coordinate", point.index)
                })?,
                eta: eta.ok_or_else(|| format!("point {} lacks an η coordinate", point.index))?,
                backend: backend
                    .ok_or_else(|| format!("point {} lacks a backend coordinate", point.index))?,
                trials: summary.trials,
                delivered: summary.delivered,
                detection_rate: summary.detection_rate(),
                mean_chsh_round2: summary.mean_chsh_round2,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        backend_ablation_experiment, engine_parallelism, fig2_experiment, fig3_experiment,
    };
    use protocol::engine::{CampaignRun, CampaignRunOptions};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// The builders behind the checked-in definitions, with the default
    /// arguments of their binaries.
    fn stored_definitions() -> Vec<(&'static str, Campaign)> {
        let brisbane = DeviceModel::ibm_brisbane_like();
        vec![
            ("fig2", fig2_campaign(&brisbane, 10, 1024, 20240916)),
            (
                "fig3",
                fig3_campaign(&brisbane, &crate::fig3_eta_values(), 256, 424242),
            ),
            ("ablation_backend", ablation_campaign(&[0, 10, 50], 20, 11)),
            ("demo", demo_campaign(3, 7)),
            ("table1", table1_campaign(4, 20240916)),
            (
                "attack_intercept",
                attack_campaign(
                    ChannelAttackKind::InterceptResend,
                    BackendKind::default(),
                    20,
                    11,
                ),
            ),
            (
                "attack_mitm",
                attack_campaign(
                    ChannelAttackKind::ManInTheMiddle,
                    BackendKind::default(),
                    20,
                    13,
                ),
            ),
            (
                "attack_entangle",
                attack_campaign(
                    ChannelAttackKind::EntangleMeasure,
                    BackendKind::default(),
                    20,
                    17,
                ),
            ),
        ]
    }

    #[test]
    fn stored_campaigns_match_their_builders() {
        let update = std::env::var_os(protocol::env_keys::UPDATE_FIXTURES).is_some();
        for (name, campaign) in stored_definitions() {
            let generated = serde::json::to_string(&campaign);
            if update {
                let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                    .join("campaigns")
                    .join(format!("{name}.json"));
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &generated).unwrap();
                continue;
            }
            let stored = stored_campaign(name).expect("stored campaign parses");
            assert_eq!(
                campaign,
                stored,
                "campaigns/{name}.json has drifted from its builder \
                 (rerun with {}=1 to regenerate)",
                protocol::env_keys::UPDATE_FIXTURES
            );
            assert_eq!(
                generated,
                serde::json::to_string(&stored),
                "campaigns/{name}.json serialization drifted"
            );
        }
    }

    #[test]
    fn stored_campaign_rejects_unknown_names() {
        assert!(stored_campaign("fig9").is_err());
    }

    #[test]
    fn fig2_campaign_reproduces_the_legacy_loop() {
        let device = DeviceModel::ibm_brisbane_like();
        let (eta, shots, seed) = (10, 64, 20240916);
        let legacy = fig2_experiment(&device, eta, shots, seed);
        let report = fig2_campaign(&device, eta, shots, seed)
            .run_direct(engine_parallelism(), &figure_sampler())
            .expect("fig2 campaign runs");
        let rows = fig2_rows(&report).expect("fig2 rows recover");
        assert_eq!(
            serde::json::to_string(&rows),
            serde::json::to_string(&legacy),
            "campaign-driven fig2 must be byte-identical to the legacy loop"
        );
    }

    #[test]
    fn fig3_campaign_reproduces_the_legacy_loop() {
        let device = DeviceModel::ibm_brisbane_like();
        let (etas, shots, seed) = (vec![10, 50], 64, 424242);
        let legacy = fig3_experiment(&device, &etas, shots, seed);
        let report = fig3_campaign(&device, &etas, shots, seed)
            .run_direct(engine_parallelism(), &figure_sampler())
            .expect("fig3 campaign runs");
        let points = fig3_points(&report).expect("fig3 points recover");
        assert_eq!(
            serde::json::to_string(&points),
            serde::json::to_string(&legacy),
            "campaign-driven fig3 must be byte-identical to the legacy loop"
        );
    }

    #[test]
    fn ablation_campaign_reproduces_the_legacy_grid() {
        let (etas, trials, seed) = (vec![0], 3, 11);
        let legacy = backend_ablation_experiment(&etas, trials, seed);
        let report = ablation_campaign(&etas, trials, seed)
            .run_direct(engine_parallelism(), &protocol::engine::NoSampler)
            .expect("ablation campaign runs");
        let rows = ablation_rows(&report).expect("ablation rows recover");
        assert_eq!(rows, legacy);
        for (campaign_row, legacy_row) in rows.iter().zip(&legacy) {
            assert_eq!(
                campaign_row.detection_rate.to_bits(),
                legacy_row.detection_rate.to_bits()
            );
            assert_eq!(
                campaign_row.mean_chsh_round2.map(f64::to_bits),
                legacy_row.mean_chsh_round2.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn attack_campaigns_reproduce_the_legacy_loop() {
        let trials = 5;
        for (kind, seed) in [
            (ChannelAttackKind::InterceptResend, 11),
            (ChannelAttackKind::ManInTheMiddle, 13),
            (ChannelAttackKind::EntangleMeasure, 17),
        ] {
            let (legacy_attacked, legacy_honest) =
                crate::channel_attack_experiment_on(kind, BackendKind::default(), trials, seed);
            let report = attack_campaign(kind, BackendKind::default(), trials, seed)
                .run_direct(engine_parallelism(), &protocol::engine::NoSampler)
                .expect("attack campaign runs");
            let (attacked, honest) = attack_rows(&report).expect("attack rows recover");
            assert_eq!(attacked, legacy_attacked, "{kind:?} attacked row diverged");
            assert_eq!(honest, legacy_honest, "{kind:?} honest row diverged");
            assert_eq!(
                attacked.detection_rate.to_bits(),
                legacy_attacked.detection_rate.to_bits()
            );
            assert_eq!(
                attacked.mean_chsh_round2.map(f64::to_bits),
                legacy_attacked.mean_chsh_round2.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn attack_campaign_respects_a_non_default_backend() {
        let (kind, trials, seed) = (ChannelAttackKind::InterceptResend, 4, 11);
        let legacy =
            crate::channel_attack_experiment_on(kind, BackendKind::PauliTwirled, trials, seed);
        let report = attack_campaign(kind, BackendKind::PauliTwirled, trials, seed)
            .run_direct(engine_parallelism(), &protocol::engine::NoSampler)
            .expect("attack campaign runs");
        let rows = attack_rows(&report).expect("attack rows recover");
        assert_eq!((rows.0, rows.1), legacy);
    }

    #[test]
    fn table1_campaign_reproduces_the_legacy_run() {
        let (trials, seed) = (2, 20240916);
        let legacy = crate::table1_verification_summary(trials, seed);
        let report = table1_campaign(trials, seed)
            .run_direct(engine_parallelism(), &protocol::engine::NoSampler)
            .expect("table1 campaign runs");
        let summary = table1_summary(&report).expect("table1 summary recovers");
        // Labels are display-only (the campaign names its point, the legacy
        // scenario keeps its historic name); the physics must be identical.
        let relabelled = TrialSummary {
            label: legacy.label.clone(),
            ..summary
        };
        assert_eq!(relabelled, legacy);
    }

    /// A scratch directory under the system temp dir, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "ua-di-qsdc-bench-{tag}-{}-{unique}",
                std::process::id()
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn sampled_campaign_through_a_run_directory_matches_run_direct() {
        let device = DeviceModel::ibm_brisbane_like();
        let campaign = fig2_campaign(&device, 10, 32, 20240916);
        let direct = campaign
            .run_direct(engine_parallelism(), &figure_sampler())
            .expect("direct run succeeds");
        let dir = TempDir::new("fig2-run");
        let run = CampaignRun::init(&dir.0, &campaign, 8).expect("run initialises");
        let report = run
            .run(&CampaignRunOptions::default(), &figure_sampler())
            .expect("run drains");
        assert_eq!(
            serde::json::to_string(&report),
            serde::json::to_string(&direct),
            "persisted sampled campaign must match the in-process run byte-for-byte"
        );
    }
}
