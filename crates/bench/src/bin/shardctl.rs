//! `shardctl` — ship the engine's plan / execute / merge stages between
//! processes (and machines) as JSON.
//!
//! The per-trial RNG stream contract makes every trial location-independent,
//! so a sweep split into shards, executed by separate `shardctl run`
//! processes, and merged reproduces the single-process results byte for byte.
//!
//! ```text
//! # One process, one pipe:
//! shardctl scenario --preset intercept --seed 7 \
//!   | shardctl plan --trials 1000 --seed 42 --shards 4 \
//!   | shardctl run \
//!   | shardctl merge
//!
//! # Or one process per shard (e.g. one per machine):
//! shardctl scenario --preset intercept --seed 7 > scenario.json
//! shardctl plan --scenario scenario.json --trials 1000 --seed 42 --shards 4 > plans.json
//! for i in 0 1 2 3; do shardctl run --plans plans.json --index $i > result-$i.json; done
//! shardctl merge result-*.json
//! ```
//!
//! `run` honours the `UA_DI_QSDC_PARALLELISM` environment variable, so each
//! worker process additionally fans its shard's trials across its own cores.

use protocol::engine::{
    Adversary, BackendKind, MergedRun, Scenario, SessionEngine, ShardMerger, ShardOutput,
    ShardPlan, ShardResult,
};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use qchannel::taps::{InterceptBasis, SubstituteState};
use rand::SeedableRng;
use std::process::ExitCode;

const USAGE: &str = "\
shardctl — plan / run / merge sharded UA-DI-QSDC sweeps as JSON

USAGE:
    shardctl scenario [--preset NAME] [--seed N] [--backend KIND]
        Write a deterministic demo scenario to stdout.
        Presets: honest, impersonate-alice, impersonate-bob, intercept,
        mitm, entangle (default: honest).
        Backends: density-matrix (default), statevector.

    shardctl plan --trials N [--seed N] [--shards K | --shard-trials M]
                  [--scenario FILE] [--backend KIND]
        Read a scenario (FILE or stdin), split a run of N trials under
        master seed N into shards, write a JSON array of shard plans.
        --backend overrides the scenario's simulation substrate before
        planning (the substrate is part of the run's fingerprint).
        Default: --seed 0, --shards 1.

    shardctl run [--plans FILE] [--index I] [--output summary|outcomes]
        Read a JSON array of shard plans (FILE or stdin), execute them (or
        only plan I) on the substrate each plan declares, write a JSON
        array of shard results. Trials fan out per the
        UA_DI_QSDC_PARALLELISM environment variable.
        Default: --output summary.

    shardctl merge [FILE...]
        Read one or more JSON arrays of shard results (FILEs or stdin),
        merge them in trial order, write the merged run: a TrialSummary
        for summary payloads, an outcome array for outcome payloads.
        Results from different backends never merge, a merge failure
        names the offending file, and listing the same file twice is a
        duplicate-shard error.
";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("shardctl: {message}");
    std::process::exit(2)
}

fn read_input(path: Option<&str>) -> String {
    match path {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}"))),
        None => std::io::read_to_string(std::io::stdin())
            .unwrap_or_else(|e| fail(format_args!("cannot read stdin: {e}"))),
    }
}

/// One `--flag value` pair puller over the raw argument list.
struct Args {
    args: Vec<String>,
}

impl Args {
    fn take_flag(&mut self, flag: &str) -> Option<String> {
        let position = self.args.iter().position(|a| a == flag)?;
        if position + 1 >= self.args.len() {
            fail(format_args!("{flag} requires a value"));
        }
        self.args.remove(position);
        Some(self.args.remove(position))
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Option<T> {
        self.take_flag(flag).map(|raw| {
            raw.parse()
                .unwrap_or_else(|_| fail(format_args!("invalid value `{raw}` for {flag}")))
        })
    }

    fn finish_positional(self) -> Vec<String> {
        if let Some(stray) = self.args.iter().find(|a| a.starts_with("--")) {
            fail(format_args!("unknown option `{stray}`"));
        }
        self.args
    }

    fn finish(self) {
        if let Some(stray) = self.args.first() {
            fail(format_args!("unexpected argument `{stray}`"));
        }
    }
}

fn scenario_cmd(mut args: Args) {
    let preset = args
        .take_flag("--preset")
        .unwrap_or_else(|| "honest".into());
    let seed: u64 = args.take_parsed("--seed").unwrap_or(7);
    let backend: BackendKind = args.take_parsed("--backend").unwrap_or_default();
    args.finish();
    let adversary = match preset.as_str() {
        "honest" => Adversary::Honest,
        "impersonate-alice" => Adversary::ImpersonateAlice,
        "impersonate-bob" => Adversary::ImpersonateBob,
        "intercept" => Adversary::InterceptResend(InterceptBasis::Computational),
        "mitm" => Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
        "entangle" => Adversary::EntangleMeasure { strength: 1.0 },
        other => fail(format_args!("unknown preset `{other}`")),
    };
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(64)
        .build()
        .unwrap_or_else(|e| fail(e));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    let scenario = Scenario::new(config, identities)
        .with_label(format!("shardctl-{preset}"))
        .with_adversary(adversary)
        .with_backend(backend);
    println!("{}", serde::json::to_string(&scenario));
}

fn plan_cmd(mut args: Args) {
    let trials: usize = args
        .take_parsed("--trials")
        .unwrap_or_else(|| fail("plan requires --trials"));
    let seed: u64 = args.take_parsed("--seed").unwrap_or(0);
    let shards: Option<usize> = args.take_parsed("--shards");
    let shard_trials: Option<usize> = args.take_parsed("--shard-trials");
    let scenario_path = args.take_flag("--scenario");
    let backend: Option<BackendKind> = args.take_parsed("--backend");
    args.finish();
    let mut scenario: Scenario = serde::json::from_str(&read_input(scenario_path.as_deref()))
        .unwrap_or_else(|e| fail(format_args!("invalid scenario JSON: {e}")));
    if let Some(backend) = backend {
        // Before planning: the substrate is part of the fingerprint the plan
        // pins, so every derived shard carries (and reproduces on) it.
        scenario.backend = backend;
    }
    let whole = SessionEngine::new(seed).plan(&scenario, trials);
    let plans = match (shards, shard_trials) {
        (Some(_), Some(_)) => fail("--shards and --shard-trials are mutually exclusive"),
        (_, Some(0)) => fail("--shard-trials must be at least 1"),
        (Some(0), _) => fail("--shards must be at least 1"),
        (None, Some(per_shard)) => whole.split_max(per_shard),
        (count, None) => whole.split_into(count.unwrap_or(1)),
    };
    eprintln!(
        "planned {} trials of `{}` (seed {seed}, backend {}) into {} shard(s)",
        trials,
        scenario.label,
        scenario.backend,
        plans.len()
    );
    println!("{}", serde::json::to_string(&plans));
}

fn run_cmd(mut args: Args) {
    let plans_path = args.take_flag("--plans");
    let index: Option<usize> = args.take_parsed("--index");
    let output = match args
        .take_flag("--output")
        .unwrap_or_else(|| "summary".into())
        .as_str()
    {
        "summary" => ShardOutput::Summary,
        "outcomes" => ShardOutput::Outcomes,
        other => fail(format_args!(
            "invalid --output `{other}` (expected `summary` or `outcomes`)"
        )),
    };
    args.finish();
    let plans: Vec<ShardPlan> = serde::json::from_str(&read_input(plans_path.as_deref()))
        .unwrap_or_else(|e| fail(format_args!("invalid shard plan JSON: {e}")));
    let selected: Vec<&ShardPlan> = match index {
        Some(index) => vec![plans.get(index).unwrap_or_else(|| {
            fail(format_args!(
                "--index {index} out of range (plans: {})",
                plans.len()
            ))
        })],
        None => plans.iter().collect(),
    };
    let parallelism = bench::announce_parallelism();
    // The engine's own seed is irrelevant: each plan carries the run's seed.
    let engine = SessionEngine::new(0).with_parallelism(parallelism);
    let results: Vec<ShardResult> = selected
        .into_iter()
        .map(|plan| {
            let (result, stats) = engine
                .execute_shard_with_stats(plan, output)
                .unwrap_or_else(|e| fail(format_args!("shard execution failed: {e}")));
            eprintln!(
                "executed trials {}..{} on the {} backend: {stats} ({:.1} trials/s)",
                plan.trial_start,
                plan.trial_end(),
                plan.backend(),
                stats.throughput()
            );
            result
        })
        .collect();
    println!("{}", serde::json::to_string(&results));
}

/// The first file that appears twice in the list, if any. Merging the same
/// result file twice would double-count its trials (surfacing, at best, as an
/// opaque overlap error), so it is rejected up front by name.
fn find_duplicate_file(files: &[String]) -> Option<&String> {
    files
        .iter()
        .enumerate()
        .find(|(i, file)| files[..*i].contains(file))
        .map(|(_, file)| file)
}

/// Merges shard results with per-shard provenance: the same trial-order fold
/// as `protocol::engine::merge_shard_results`, but a failure names the source
/// (file) whose shard was rejected.
fn merge_sources(mut sources: Vec<(String, ShardResult)>) -> Result<MergedRun, String> {
    // Sort exactly as `merge_shard_results` does (empty shards share their
    // start with the following shard; the count key orders them first).
    sources.sort_by(|(_, a), (_, b)| {
        (a.trial_start, a.trial_count).cmp(&(b.trial_start, b.trial_count))
    });
    let mut merger = ShardMerger::new();
    for (source, result) in sources {
        let range = format!("trials {}..{}", result.trial_start, result.trial_end());
        merger
            .push(result)
            .map_err(|e| format!("cannot merge {source} ({range}): {e}"))?;
    }
    merger.finish().map_err(|e| format!("merge failed: {e}"))
}

fn merge_cmd(args: Args) {
    let files = args.finish_positional();
    if let Some(duplicate) = find_duplicate_file(&files) {
        fail(format_args!(
            "duplicate shard result file `{duplicate}`: each result may be merged only once"
        ));
    }
    let mut sources: Vec<(String, ShardResult)> = Vec::new();
    if files.is_empty() {
        let results: Vec<ShardResult> = serde::json::from_str(&read_input(None))
            .unwrap_or_else(|e| fail(format_args!("invalid shard result JSON on stdin: {e}")));
        sources.extend(results.into_iter().map(|r| ("<stdin>".to_string(), r)));
    } else {
        for file in &files {
            let batch: Vec<ShardResult> = serde::json::from_str(&read_input(Some(file)))
                .unwrap_or_else(|e| fail(format_args!("invalid shard result JSON in {file}: {e}")));
            sources.extend(batch.into_iter().map(|r| (file.clone(), r)));
        }
    }
    let shard_count = sources.len();
    let merged = merge_sources(sources).unwrap_or_else(|e| fail(e));
    match merged {
        MergedRun::Summary(summary) => {
            eprintln!("merged {shard_count} shard(s): {summary}");
            println!("{}", serde::json::to_string(&summary));
        }
        MergedRun::Outcomes(outcomes) => {
            eprintln!("merged {shard_count} shard(s): {} outcomes", outcomes.len());
            println!("{}", serde::json::to_string(&outcomes));
        }
    }
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if raw.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let command = raw.remove(0);
    let args = Args { args: raw };
    match command.as_str() {
        "scenario" => scenario_cmd(args),
        "plan" => plan_cmd(args),
        "run" => run_cmd(args),
        "merge" => merge_cmd(args),
        other => fail(format_args!("unknown subcommand `{other}`; see --help")),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocol::SessionConfig;

    fn results(backend: BackendKind) -> Vec<ShardResult> {
        let config = SessionConfig::builder()
            .message_bits(8)
            .check_bits(2)
            .di_check_pairs(24)
            .build()
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let identities = IdentityPair::generate(2, &mut rng);
        let scenario = Scenario::new(config, identities).with_backend(backend);
        let engine = SessionEngine::new(5);
        engine
            .plan(&scenario, 4)
            .split_into(2)
            .iter()
            .map(|p| engine.execute_shard(p, ShardOutput::Summary).unwrap())
            .collect()
    }

    #[test]
    fn duplicate_files_are_found_by_name() {
        let files = vec!["a.json".to_string(), "b.json".to_string()];
        assert_eq!(find_duplicate_file(&files), None);
        let twice = vec![
            "a.json".to_string(),
            "b.json".to_string(),
            "a.json".to_string(),
        ];
        assert_eq!(find_duplicate_file(&twice), Some(&"a.json".to_string()));
    }

    #[test]
    fn merge_sources_names_the_offending_file() {
        let shards = results(BackendKind::DensityMatrix);
        // Clean merge works out of order.
        let ok = merge_sources(vec![
            ("b.json".into(), shards[1].clone()),
            ("a.json".into(), shards[0].clone()),
        ]);
        assert!(ok.is_ok());
        // Duplicate shard *content* (same range from two files) is an
        // overlap naming the second file.
        let err = merge_sources(vec![
            ("a.json".into(), shards[0].clone()),
            ("copy-of-a.json".into(), shards[0].clone()),
            ("b.json".into(), shards[1].clone()),
        ])
        .unwrap_err();
        assert!(err.contains("copy-of-a.json"), "{err}");
        assert!(err.contains("overlap"), "{err}");
        // A cross-backend shard is rejected naming its file and substrate.
        let alien = results(BackendKind::Statevector);
        let err = merge_sources(vec![
            ("a.json".into(), shards[0].clone()),
            ("sv.json".into(), alien[1].clone()),
        ])
        .unwrap_err();
        assert!(err.contains("sv.json"), "{err}");
        assert!(err.contains("statevector"), "{err}");
    }
}
