//! `shardctl` — ship the engine's plan / execute / merge stages between
//! processes (and machines) as JSON.
//!
//! The per-trial RNG stream contract makes every trial location-independent,
//! so a sweep split into shards, executed by separate `shardctl run`
//! processes, and merged reproduces the single-process results byte for byte.
//!
//! ```text
//! # One process, one pipe:
//! shardctl scenario --preset intercept --seed 7 \
//!   | shardctl plan --trials 1000 --seed 42 --shards 4 \
//!   | shardctl run \
//!   | shardctl merge
//!
//! # Or one process per shard (e.g. one per machine):
//! shardctl scenario --preset intercept --seed 7 > scenario.json
//! shardctl plan --scenario scenario.json --trials 1000 --seed 42 --shards 4 > plans.json
//! for i in 0 1 2 3; do shardctl run --plans plans.json --index $i > result-$i.json; done
//! shardctl merge result-*.json
//! ```
//!
//! `run` honours the `UA_DI_QSDC_PARALLELISM` environment variable, so each
//! worker process additionally fans its shard's trials across its own cores.

use protocol::engine::{
    merge_shard_results, Adversary, MergedRun, Scenario, SessionEngine, ShardOutput, ShardPlan,
    ShardResult,
};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use qchannel::taps::{InterceptBasis, SubstituteState};
use rand::SeedableRng;
use std::process::ExitCode;

const USAGE: &str = "\
shardctl — plan / run / merge sharded UA-DI-QSDC sweeps as JSON

USAGE:
    shardctl scenario [--preset NAME] [--seed N]
        Write a deterministic demo scenario to stdout.
        Presets: honest, impersonate-alice, impersonate-bob, intercept,
        mitm, entangle (default: honest).

    shardctl plan --trials N [--seed N] [--shards K | --shard-trials M]
                  [--scenario FILE]
        Read a scenario (FILE or stdin), split a run of N trials under
        master seed N into shards, write a JSON array of shard plans.
        Default: --seed 0, --shards 1.

    shardctl run [--plans FILE] [--index I] [--output summary|outcomes]
        Read a JSON array of shard plans (FILE or stdin), execute them (or
        only plan I), write a JSON array of shard results. Trials fan out
        per the UA_DI_QSDC_PARALLELISM environment variable.
        Default: --output summary.

    shardctl merge [FILE...]
        Read one or more JSON arrays of shard results (FILEs or stdin),
        merge them in trial order, write the merged run: a TrialSummary
        for summary payloads, an outcome array for outcome payloads.
";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("shardctl: {message}");
    std::process::exit(2)
}

fn read_input(path: Option<&str>) -> String {
    match path {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}"))),
        None => std::io::read_to_string(std::io::stdin())
            .unwrap_or_else(|e| fail(format_args!("cannot read stdin: {e}"))),
    }
}

/// One `--flag value` pair puller over the raw argument list.
struct Args {
    args: Vec<String>,
}

impl Args {
    fn take_flag(&mut self, flag: &str) -> Option<String> {
        let position = self.args.iter().position(|a| a == flag)?;
        if position + 1 >= self.args.len() {
            fail(format_args!("{flag} requires a value"));
        }
        self.args.remove(position);
        Some(self.args.remove(position))
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Option<T> {
        self.take_flag(flag).map(|raw| {
            raw.parse()
                .unwrap_or_else(|_| fail(format_args!("invalid value `{raw}` for {flag}")))
        })
    }

    fn finish_positional(self) -> Vec<String> {
        if let Some(stray) = self.args.iter().find(|a| a.starts_with("--")) {
            fail(format_args!("unknown option `{stray}`"));
        }
        self.args
    }

    fn finish(self) {
        if let Some(stray) = self.args.first() {
            fail(format_args!("unexpected argument `{stray}`"));
        }
    }
}

fn scenario_cmd(mut args: Args) {
    let preset = args
        .take_flag("--preset")
        .unwrap_or_else(|| "honest".into());
    let seed: u64 = args.take_parsed("--seed").unwrap_or(7);
    args.finish();
    let adversary = match preset.as_str() {
        "honest" => Adversary::Honest,
        "impersonate-alice" => Adversary::ImpersonateAlice,
        "impersonate-bob" => Adversary::ImpersonateBob,
        "intercept" => Adversary::InterceptResend(InterceptBasis::Computational),
        "mitm" => Adversary::ManInTheMiddle(SubstituteState::RandomComputational),
        "entangle" => Adversary::EntangleMeasure { strength: 1.0 },
        other => fail(format_args!("unknown preset `{other}`")),
    };
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(64)
        .build()
        .unwrap_or_else(|e| fail(e));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(4, &mut rng);
    let scenario = Scenario::new(config, identities)
        .with_label(format!("shardctl-{preset}"))
        .with_adversary(adversary);
    println!("{}", serde::json::to_string(&scenario));
}

fn plan_cmd(mut args: Args) {
    let trials: usize = args
        .take_parsed("--trials")
        .unwrap_or_else(|| fail("plan requires --trials"));
    let seed: u64 = args.take_parsed("--seed").unwrap_or(0);
    let shards: Option<usize> = args.take_parsed("--shards");
    let shard_trials: Option<usize> = args.take_parsed("--shard-trials");
    let scenario_path = args.take_flag("--scenario");
    args.finish();
    let scenario: Scenario = serde::json::from_str(&read_input(scenario_path.as_deref()))
        .unwrap_or_else(|e| fail(format_args!("invalid scenario JSON: {e}")));
    let whole = SessionEngine::new(seed).plan(&scenario, trials);
    let plans = match (shards, shard_trials) {
        (Some(_), Some(_)) => fail("--shards and --shard-trials are mutually exclusive"),
        (_, Some(0)) => fail("--shard-trials must be at least 1"),
        (Some(0), _) => fail("--shards must be at least 1"),
        (None, Some(per_shard)) => whole.split_max(per_shard),
        (count, None) => whole.split_into(count.unwrap_or(1)),
    };
    eprintln!(
        "planned {} trials of `{}` (seed {seed}) into {} shard(s)",
        trials,
        scenario.label,
        plans.len()
    );
    println!("{}", serde::json::to_string(&plans));
}

fn run_cmd(mut args: Args) {
    let plans_path = args.take_flag("--plans");
    let index: Option<usize> = args.take_parsed("--index");
    let output = match args
        .take_flag("--output")
        .unwrap_or_else(|| "summary".into())
        .as_str()
    {
        "summary" => ShardOutput::Summary,
        "outcomes" => ShardOutput::Outcomes,
        other => fail(format_args!(
            "invalid --output `{other}` (expected `summary` or `outcomes`)"
        )),
    };
    args.finish();
    let plans: Vec<ShardPlan> = serde::json::from_str(&read_input(plans_path.as_deref()))
        .unwrap_or_else(|e| fail(format_args!("invalid shard plan JSON: {e}")));
    let selected: Vec<&ShardPlan> = match index {
        Some(index) => vec![plans.get(index).unwrap_or_else(|| {
            fail(format_args!(
                "--index {index} out of range (plans: {})",
                plans.len()
            ))
        })],
        None => plans.iter().collect(),
    };
    let parallelism = bench::announce_parallelism();
    // The engine's own seed is irrelevant: each plan carries the run's seed.
    let engine = SessionEngine::new(0).with_parallelism(parallelism);
    let results: Vec<ShardResult> = selected
        .into_iter()
        .map(|plan| {
            let (result, stats) = engine
                .execute_shard_with_stats(plan, output)
                .unwrap_or_else(|e| fail(format_args!("shard execution failed: {e}")));
            eprintln!(
                "executed trials {}..{}: {stats} ({:.1} trials/s)",
                plan.trial_start,
                plan.trial_end(),
                stats.throughput()
            );
            result
        })
        .collect();
    println!("{}", serde::json::to_string(&results));
}

fn merge_cmd(args: Args) {
    let files = args.finish_positional();
    let mut results: Vec<ShardResult> = Vec::new();
    if files.is_empty() {
        results = serde::json::from_str(&read_input(None))
            .unwrap_or_else(|e| fail(format_args!("invalid shard result JSON: {e}")));
    } else {
        for file in &files {
            let mut batch: Vec<ShardResult> = serde::json::from_str(&read_input(Some(file)))
                .unwrap_or_else(|e| fail(format_args!("invalid shard result JSON in {file}: {e}")));
            results.append(&mut batch);
        }
    }
    let shard_count = results.len();
    let merged =
        merge_shard_results(results).unwrap_or_else(|e| fail(format_args!("merge failed: {e}")));
    match merged {
        MergedRun::Summary(summary) => {
            eprintln!("merged {shard_count} shard(s): {summary}");
            println!("{}", serde::json::to_string(&summary));
        }
        MergedRun::Outcomes(outcomes) => {
            eprintln!("merged {shard_count} shard(s): {} outcomes", outcomes.len());
            println!("{}", serde::json::to_string(&outcomes));
        }
    }
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if raw.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let command = raw.remove(0);
    let args = Args { args: raw };
    match command.as_str() {
        "scenario" => scenario_cmd(args),
        "plan" => plan_cmd(args),
        "run" => run_cmd(args),
        "merge" => merge_cmd(args),
        other => fail(format_args!("unknown subcommand `{other}`; see --help")),
    }
    ExitCode::SUCCESS
}
