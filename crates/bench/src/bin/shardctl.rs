//! `shardctl` — ship the engine's plan / execute / merge stages between
//! processes (and machines) as JSON, and drive a whole fleet through a
//! resumable work queue.
//!
//! The per-trial RNG stream contract makes every trial location-independent,
//! so a sweep split into shards, executed by separate `shardctl run`
//! processes, and merged reproduces the single-process results byte for byte.
//!
//! ```text
//! # One process, one pipe:
//! shardctl scenario --preset intercept --seed 7 \
//!   | shardctl plan --trials 1000 --seed 42 --shards 4 \
//!   | shardctl run \
//!   | shardctl merge
//!
//! # Or one process per shard (e.g. one per machine):
//! shardctl scenario --preset intercept --seed 7 > scenario.json
//! shardctl plan --scenario scenario.json --trials 1000 --seed 42 --shards 4 > plans.json
//! for i in 0 1 2 3; do shardctl run --plans plans.json --index $i > result-$i.json; done
//! shardctl merge result-*.json
//!
//! # Or a self-balancing fleet on a shared directory (survives SIGKILL):
//! shardctl scenario --preset intercept --seed 7 > scenario.json
//! shardctl queue init --dir sweep/ --scenario scenario.json --trials 1000 --seed 42
//! shardctl queue work --dir sweep/ --worker alpha &    # any number of workers,
//! shardctl queue work --dir sweep/ --worker beta  &    # on any machines sharing
//! wait                                                 # the filesystem
//! shardctl queue resume --dir sweep/                   # merge (or resume a killed sweep)
//! ```
//!
//! `run` and `queue work` honour the `UA_DI_QSDC_PARALLELISM` environment
//! variable, so each worker process additionally fans its shard's trials
//! across its own cores.

use bench::campaigns::{figure_sampler, stored_campaign};
use bench::shard_io::{self, MergeFileError};
use protocol::engine::{
    BackendKind, Campaign, CampaignRun, CampaignRunOptions, ClaimOutcome, MergedRun, Scenario,
    SessionEngine, ShardOutput, ShardPlan, ShardQueue, ShardResult, SubmitOutcome,
};
use std::process::ExitCode;

const USAGE: &str = "\
shardctl — plan / run / merge / queue sharded UA-DI-QSDC sweeps as JSON

USAGE:
    shardctl scenario [--preset NAME] [--seed N] [--backend KIND]
        Write a deterministic demo scenario to stdout.
        Presets: honest, impersonate-alice, impersonate-bob, intercept,
        mitm, entangle (default: honest).
        Backends: density-matrix (default), statevector.

    shardctl plan --trials N [--seed N] [--shards K | --shard-trials M]
                  [--scenario FILE] [--backend KIND]
        Read a scenario (FILE or stdin), split a run of N trials under
        master seed N into shards, write a JSON array of shard plans.
        --backend overrides the scenario's simulation substrate before
        planning (the substrate is part of the run's fingerprint).
        Default: --seed 0, --shards 1.

    shardctl run [--plans FILE] [--index I] [--output summary|outcomes]
        Read a JSON array of shard plans (FILE or stdin), execute them (or
        only plan I) on the substrate each plan declares, write a JSON
        array of shard results. Trials fan out per the
        UA_DI_QSDC_PARALLELISM environment variable.
        Default: --output summary.

    shardctl merge [FILE...]
        Read one or more JSON arrays of shard results (FILEs or stdin),
        merge them in trial order, write the merged run: a TrialSummary
        for summary payloads, an outcome array for outcome payloads.
        Results from different backends never merge, a merge failure
        names the offending file, and listing the same file twice is a
        duplicate-shard error.

    shardctl queue init --dir DIR --trials N [--seed N] [--scenario FILE]
                        [--shard-trials M] [--backend KIND]
                        [--output summary|outcomes]
        Create a resumable work queue in DIR (checkpoint + results
        directory) for a run of N trials, decomposed into claimable
        shards of at most M trials (default 8). Workers on any machines
        sharing DIR drain it cooperatively.

    shardctl queue claim --dir DIR --worker NAME [--lease-ms N]
        Lease the next claimable shard to NAME and print its plan JSON.
        Exit 3 when everything claimable is leased elsewhere (poll
        again), exit 4 when the queue is drained. Default lease: 60000.

    shardctl queue submit --dir DIR [--result FILE]
        Read one executed shard result (FILE or stdin; a JSON object or
        a 1-element array as `run` writes it) and record it. A result
        for a shard another worker already completed is discarded
        harmlessly.

    shardctl queue status --dir DIR
        Print the queue's progress as JSON (and human-readable, to
        stderr).

    shardctl queue work --dir DIR --worker NAME [--lease-ms N] [--poll-ms N]
        Run a fleet worker: claim, execute, submit, repeat, until the
        queue is drained. Faster workers naturally claim more shards;
        if this process is killed its leases expire and other workers
        re-execute the shards. Default: --lease-ms 60000, --poll-ms 500.
        Chaos-testing hook: UA_DI_QSDC_QUEUE_THROTTLE_MS=N stalls the
        worker for N ms between claiming and executing each shard, so a
        test can SIGKILL it while it provably holds a lease.

    shardctl queue resume --dir DIR
        Resume a (possibly killed) sweep: verify every completed result
        file against its checkpointed fingerprint, return expired leases
        to the pending state, and — when every shard is done — print the
        merged run, byte-identical to `shardctl merge` on an
        uninterrupted run. Exit 3 while shards remain (start workers).

    shardctl campaign plan --dir DIR (--campaign FILE | --stored NAME)
                           [--shard-trials M]
        Expand a declarative campaign (a parameter-space sweep; a JSON
        file, or one of the checked-in definitions: fig2, fig3,
        ablation_backend, demo) into a resumable run directory: one
        shard queue per session point, one sample slot per circuit
        point. Default shard size: 8 trials.

    shardctl campaign run --dir DIR [--campaign FILE | --stored NAME]
                          [--worker NAME] [--lease-ms N] [--poll-ms N]
                          [--shard-trials M]
        Drain a campaign run directory (initialising it first when a
        campaign is given and DIR is untouched) and print the campaign
        report JSON — byte-identical to an in-process run of the same
        campaign. Workers on any machines sharing DIR cooperate; the
        UA_DI_QSDC_QUEUE_THROTTLE_MS chaos hook stalls each shard
        between claim and execute, as in `queue work`.

    shardctl campaign resume --dir DIR [--worker NAME] [--lease-ms N]
                             [--poll-ms N]
        Resume a (possibly killed) campaign: verify completed shards,
        recover expired leases on every point queue, drain the rest,
        and print the report — byte-identical to an uninterrupted run.

    shardctl campaign status --dir DIR
        Print the campaign's progress as JSON (and human-readable, to
        stderr).

    shardctl campaign report --dir DIR
        Print the report of a fully drained campaign without executing
        anything. Fails while points remain outstanding.
";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("shardctl: {message}");
    std::process::exit(2)
}

fn read_input(path: Option<&str>) -> String {
    match path {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}"))),
        None => std::io::read_to_string(std::io::stdin())
            .unwrap_or_else(|e| fail(format_args!("cannot read stdin: {e}"))),
    }
}

/// One `--flag value` pair puller over the raw argument list.
struct Args {
    args: Vec<String>,
}

impl Args {
    fn take_flag(&mut self, flag: &str) -> Option<String> {
        let position = self.args.iter().position(|a| a == flag)?;
        if position + 1 >= self.args.len() {
            fail(format_args!("{flag} requires a value"));
        }
        self.args.remove(position);
        Some(self.args.remove(position))
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Option<T> {
        self.take_flag(flag).map(|raw| {
            raw.parse()
                .unwrap_or_else(|_| fail(format_args!("invalid value `{raw}` for {flag}")))
        })
    }

    fn finish_positional(self) -> Vec<String> {
        if let Some(stray) = self.args.iter().find(|a| a.starts_with("--")) {
            fail(format_args!("unknown option `{stray}`"));
        }
        self.args
    }

    fn finish(self) {
        if let Some(stray) = self.args.first() {
            fail(format_args!("unexpected argument `{stray}`"));
        }
    }
}

fn scenario_cmd(mut args: Args) {
    let preset = args
        .take_flag("--preset")
        .unwrap_or_else(|| "honest".into());
    let seed: u64 = args.take_parsed("--seed").unwrap_or(7);
    let backend: BackendKind = args.take_parsed("--backend").unwrap_or_default();
    args.finish();
    let scenario = shard_io::demo_scenario(&preset, seed, backend).unwrap_or_else(|e| fail(e));
    println!("{}", serde::json::to_string(&scenario));
}

fn plan_cmd(mut args: Args) {
    let trials: usize = args
        .take_parsed("--trials")
        .unwrap_or_else(|| fail("plan requires --trials"));
    let seed: u64 = args.take_parsed("--seed").unwrap_or(0);
    let shards: Option<usize> = args.take_parsed("--shards");
    let shard_trials: Option<usize> = args.take_parsed("--shard-trials");
    let scenario_path = args.take_flag("--scenario");
    let backend: Option<BackendKind> = args.take_parsed("--backend");
    args.finish();
    let mut scenario: Scenario = serde::json::from_str(&read_input(scenario_path.as_deref()))
        .unwrap_or_else(|e| fail(format_args!("invalid scenario JSON: {e}")));
    if let Some(backend) = backend {
        // Before planning: the substrate is part of the fingerprint the plan
        // pins, so every derived shard carries (and reproduces on) it.
        scenario.backend = backend;
    }
    let whole = SessionEngine::new(seed).plan(&scenario, trials);
    let plans = match (shards, shard_trials) {
        (Some(_), Some(_)) => fail("--shards and --shard-trials are mutually exclusive"),
        (_, Some(0)) => fail("--shard-trials must be at least 1"),
        (Some(0), _) => fail("--shards must be at least 1"),
        (None, Some(per_shard)) => whole.split_max(per_shard),
        (count, None) => whole.split_into(count.unwrap_or(1)),
    };
    eprintln!(
        "planned {} trials of `{}` (seed {seed}, backend {}) into {} shard(s)",
        trials,
        scenario.label,
        scenario.backend,
        plans.len()
    );
    println!("{}", serde::json::to_string(&plans));
}

fn parse_output(args: &mut Args) -> ShardOutput {
    args.take_flag("--output")
        .map(|raw| raw.parse().unwrap_or_else(|e| fail(e)))
        .unwrap_or(ShardOutput::Summary)
}

fn run_cmd(mut args: Args) {
    let plans_path = args.take_flag("--plans");
    let index: Option<usize> = args.take_parsed("--index");
    let output = parse_output(&mut args);
    args.finish();
    let plans: Vec<ShardPlan> = serde::json::from_str(&read_input(plans_path.as_deref()))
        .unwrap_or_else(|e| fail(format_args!("invalid shard plan JSON: {e}")));
    let selected: Vec<&ShardPlan> = match index {
        Some(index) => vec![plans.get(index).unwrap_or_else(|| {
            fail(format_args!(
                "--index {index} out of range (plans: {})",
                plans.len()
            ))
        })],
        None => plans.iter().collect(),
    };
    let parallelism = bench::announce_parallelism();
    // The engine's own seed is irrelevant: each plan carries the run's seed.
    let engine = SessionEngine::new(0).with_parallelism(parallelism);
    let results: Vec<ShardResult> = selected
        .into_iter()
        .map(|plan| execute_plan(&engine, plan, output))
        .collect();
    println!("{}", serde::json::to_string(&results));
}

fn execute_plan(engine: &SessionEngine, plan: &ShardPlan, output: ShardOutput) -> ShardResult {
    let (result, stats) = engine
        .execute_shard_with_stats(plan, output)
        .unwrap_or_else(|e| fail(format_args!("shard execution failed: {e}")));
    eprintln!(
        "executed trials {}..{} on the {} backend: {stats} ({:.1} trials/s)",
        plan.trial_start,
        plan.trial_end(),
        plan.backend(),
        stats.throughput()
    );
    result
}

fn merge_cmd(args: Args) {
    let files = args.finish_positional();
    let merged = if files.is_empty() {
        let results: Vec<ShardResult> = serde::json::from_str(&read_input(None))
            .unwrap_or_else(|e| fail(format_args!("invalid shard result JSON on stdin: {e}")));
        let sources = results
            .into_iter()
            .map(|r| ("<stdin>".to_string(), r))
            .collect();
        shard_io::merge_sources(sources).unwrap_or_else(|e| fail(e))
    } else {
        shard_io::merge_result_files(&files).unwrap_or_else(|e: MergeFileError| fail(e))
    };
    print_merged(&merged);
}

fn print_merged(merged: &MergedRun) {
    match merged {
        MergedRun::Summary(summary) => eprintln!("merged run: {summary}"),
        MergedRun::Outcomes(outcomes) => eprintln!("merged run: {} outcomes", outcomes.len()),
    }
    println!("{}", shard_io::merged_run_to_json(merged));
}

// -------------------------------------------------------------------- queue --

fn open_queue(args: &mut Args) -> ShardQueue {
    let dir = args
        .take_flag("--dir")
        .unwrap_or_else(|| fail("queue commands require --dir"));
    ShardQueue::open(&dir).unwrap_or_else(|e| fail(e))
}

fn queue_init_cmd(mut args: Args) {
    let dir = args
        .take_flag("--dir")
        .unwrap_or_else(|| fail("queue init requires --dir"));
    let trials: usize = args
        .take_parsed("--trials")
        .unwrap_or_else(|| fail("queue init requires --trials"));
    let seed: u64 = args.take_parsed("--seed").unwrap_or(0);
    let shard_trials: usize = args.take_parsed("--shard-trials").unwrap_or(8);
    if shard_trials == 0 {
        fail("--shard-trials must be at least 1");
    }
    let scenario_path = args.take_flag("--scenario");
    let backend: Option<BackendKind> = args.take_parsed("--backend");
    let output = parse_output(&mut args);
    args.finish();
    let mut scenario: Scenario = serde::json::from_str(&read_input(scenario_path.as_deref()))
        .unwrap_or_else(|e| fail(format_args!("invalid scenario JSON: {e}")));
    if let Some(backend) = backend {
        scenario.backend = backend;
    }
    let plan = SessionEngine::new(seed).plan(&scenario, trials);
    let queue = ShardQueue::init(&dir, &plan, shard_trials, output).unwrap_or_else(|e| fail(e));
    let status = queue.status().unwrap_or_else(|e| fail(e));
    eprintln!(
        "initialized queue in {dir}: {} trials of `{}` (seed {seed}, backend {}, {} payload) \
         as {} claimable shard(s)",
        trials, scenario.label, scenario.backend, output, status.total_shards
    );
}

fn queue_claim_cmd(mut args: Args) -> ExitCode {
    let worker = args
        .take_flag("--worker")
        .unwrap_or_else(|| fail("queue claim requires --worker"));
    let lease_ms: u64 = args.take_parsed("--lease-ms").unwrap_or(60_000);
    let queue = open_queue(&mut args);
    args.finish();
    match queue.claim(&worker, lease_ms).unwrap_or_else(|e| fail(e)) {
        ClaimOutcome::Claimed(plan) => {
            eprintln!("claimed {plan}");
            println!("{}", serde::json::to_string(&plan));
            ExitCode::SUCCESS
        }
        ClaimOutcome::Wait { leased } => {
            eprintln!("nothing claimable: {leased} shard(s) leased elsewhere; poll again");
            ExitCode::from(3)
        }
        ClaimOutcome::Drained => {
            eprintln!("queue drained: every shard is done");
            ExitCode::from(4)
        }
    }
}

fn queue_submit_cmd(mut args: Args) {
    let result_path = args.take_flag("--result");
    let queue = open_queue(&mut args);
    args.finish();
    let text = read_input(result_path.as_deref());
    // Accept both one result object and the 1-element array `run` writes.
    let result: ShardResult = serde::json::from_str(&text)
        .or_else(|_| {
            serde::json::from_str::<Vec<ShardResult>>(&text).and_then(|mut batch| {
                if batch.len() == 1 {
                    Ok(batch.remove(0))
                } else {
                    Err(serde::Error::new(format!(
                        "expected exactly one shard result, got {}",
                        batch.len()
                    )))
                }
            })
        })
        .unwrap_or_else(|e| fail(format_args!("invalid shard result JSON: {e}")));
    match queue.submit(&result).unwrap_or_else(|e| fail(e)) {
        SubmitOutcome::Recorded => eprintln!(
            "recorded trials {}..{}",
            result.trial_start,
            result.trial_end()
        ),
        SubmitOutcome::AlreadyDone => eprintln!(
            "trials {}..{} were already completed by another worker; discarded",
            result.trial_start,
            result.trial_end()
        ),
    }
}

fn queue_status_cmd(mut args: Args) {
    let queue = open_queue(&mut args);
    args.finish();
    let status = queue.status().unwrap_or_else(|e| fail(e));
    eprintln!("{status}");
    println!("{}", serde::json::to_string(&status));
}

fn queue_work_cmd(mut args: Args) {
    let worker = args
        .take_flag("--worker")
        .unwrap_or_else(|| fail("queue work requires --worker"));
    let lease_ms: u64 = args.take_parsed("--lease-ms").unwrap_or(60_000);
    let poll_ms: u64 = args.take_parsed("--poll-ms").unwrap_or(500);
    let queue = open_queue(&mut args);
    args.finish();
    let parallelism = bench::announce_parallelism();
    let engine = SessionEngine::new(0).with_parallelism(parallelism);
    let output = queue.checkpoint().unwrap_or_else(|e| fail(e)).output;
    let throttle_ms: u64 = std::env::var(protocol::env_keys::QUEUE_THROTTLE_MS)
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(0);
    let mut executed = 0usize;
    loop {
        match queue.claim(&worker, lease_ms).unwrap_or_else(|e| fail(e)) {
            ClaimOutcome::Claimed(plan) => {
                // Heartbeat for the whole claim→submit window: a shard whose
                // execution outlives the lease is extended, not stolen.
                let _beat = queue.heartbeat(&worker, &plan, lease_ms);
                if throttle_ms > 0 {
                    // Chaos hook: hold the lease without submitting, so a
                    // test can SIGKILL this worker in the claim→submit window.
                    eprintln!("[{worker}] throttling {throttle_ms} ms before {plan}");
                    std::thread::sleep(std::time::Duration::from_millis(throttle_ms));
                }
                let result = execute_plan(&engine, &plan, output);
                match queue.submit(&result).unwrap_or_else(|e| fail(e)) {
                    SubmitOutcome::Recorded => executed += 1,
                    SubmitOutcome::AlreadyDone => eprintln!(
                        "[{worker}] trials {}..{} were stolen and completed elsewhere",
                        result.trial_start,
                        result.trial_end()
                    ),
                }
            }
            ClaimOutcome::Wait { leased } => {
                eprintln!("[{worker}] waiting: {leased} shard(s) leased elsewhere");
                std::thread::sleep(std::time::Duration::from_millis(poll_ms));
            }
            ClaimOutcome::Drained => {
                eprintln!("[{worker}] queue drained after {executed} shard(s); exiting");
                return;
            }
        }
    }
}

fn queue_resume_cmd(mut args: Args) -> ExitCode {
    let queue = open_queue(&mut args);
    args.finish();
    // One pass over the results directory: verify, recover expired leases,
    // and (when complete) merge the already-verified results.
    let (status, merged) = queue.resume().unwrap_or_else(|e| fail(e));
    eprintln!("recovered checkpoint: {status}");
    let Some(merged) = merged else {
        eprintln!(
            "{} shard(s) still outstanding — start `shardctl queue work` workers to drain them",
            status.total_shards - status.done
        );
        return ExitCode::from(3);
    };
    print_merged(&merged);
    ExitCode::SUCCESS
}

// ----------------------------------------------------------------- campaign --

/// Reads the campaign definition named by `--campaign FILE` or
/// `--stored NAME`, if either flag is present.
fn take_campaign(args: &mut Args) -> Option<Campaign> {
    let file = args.take_flag("--campaign");
    let stored = args.take_flag("--stored");
    match (file, stored) {
        (Some(_), Some(_)) => fail("--campaign and --stored are mutually exclusive"),
        (Some(path), None) => Some(
            serde::json::from_str(&read_input(Some(&path)))
                .unwrap_or_else(|e| fail(format_args!("invalid campaign JSON: {e}"))),
        ),
        (None, Some(name)) => Some(stored_campaign(&name).unwrap_or_else(|e| fail(e))),
        (None, None) => None,
    }
}

fn campaign_dir(args: &mut Args) -> String {
    args.take_flag("--dir")
        .unwrap_or_else(|| fail("campaign commands require --dir"))
}

fn campaign_options(args: &mut Args) -> CampaignRunOptions {
    let mut options = CampaignRunOptions {
        parallelism: bench::announce_parallelism(),
        ..CampaignRunOptions::default()
    };
    if let Some(worker) = args.take_flag("--worker") {
        options.worker = worker;
    }
    if let Some(lease_ms) = args.take_parsed("--lease-ms") {
        options.lease_ms = lease_ms;
    }
    if let Some(poll_ms) = args.take_parsed("--poll-ms") {
        options.poll_ms = poll_ms;
    }
    // The same chaos hook as `queue work`: stall between claim and execute so
    // a test can SIGKILL this process while it provably holds work.
    options.throttle_ms = std::env::var(protocol::env_keys::QUEUE_THROTTLE_MS)
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(0);
    options
}

fn campaign_init(dir: &str, campaign: &Campaign, shard_trials: usize) -> CampaignRun {
    if shard_trials == 0 {
        fail("--shard-trials must be at least 1");
    }
    let run = CampaignRun::init(dir, campaign, shard_trials).unwrap_or_else(|e| fail(e));
    let status = run.status().unwrap_or_else(|e| fail(e));
    eprintln!(
        "initialized campaign `{}` in {dir}: {status}",
        campaign.label
    );
    run
}

fn campaign_plan_cmd(mut args: Args) {
    let dir = campaign_dir(&mut args);
    let campaign = take_campaign(&mut args)
        .unwrap_or_else(|| fail("campaign plan requires --campaign FILE or --stored NAME"));
    let shard_trials: usize = args.take_parsed("--shard-trials").unwrap_or(8);
    args.finish();
    campaign_init(&dir, &campaign, shard_trials);
}

fn campaign_run_cmd(mut args: Args) {
    let dir = campaign_dir(&mut args);
    let campaign = take_campaign(&mut args);
    let shard_trials: usize = args.take_parsed("--shard-trials").unwrap_or(8);
    let options = campaign_options(&mut args);
    args.finish();
    let run = match campaign {
        // A campaign was given: initialise the directory unless it already is.
        Some(campaign) => match CampaignRun::open(&dir) {
            Ok(run) => {
                if run.campaign().fingerprint() != campaign.fingerprint() {
                    fail(format_args!(
                        "{dir} holds a different campaign (`{}`)",
                        run.campaign().label
                    ));
                }
                run
            }
            Err(_) => campaign_init(&dir, &campaign, shard_trials),
        },
        None => CampaignRun::open(&dir).unwrap_or_else(|e| fail(e)),
    };
    let report = run
        .run(&options, &figure_sampler())
        .unwrap_or_else(|e| fail(e));
    eprintln!(
        "campaign `{}` drained: {} point(s)",
        report.label,
        report.points.len()
    );
    println!("{}", serde::json::to_string(&report));
}

fn campaign_resume_cmd(mut args: Args) {
    let dir = campaign_dir(&mut args);
    let options = campaign_options(&mut args);
    args.finish();
    let run = CampaignRun::open(&dir).unwrap_or_else(|e| fail(e));
    let report = run
        .resume(&options, &figure_sampler())
        .unwrap_or_else(|e| fail(e));
    eprintln!(
        "campaign `{}` resumed and drained: {} point(s)",
        report.label,
        report.points.len()
    );
    println!("{}", serde::json::to_string(&report));
}

fn campaign_status_cmd(mut args: Args) {
    let dir = campaign_dir(&mut args);
    args.finish();
    let run = CampaignRun::open(&dir).unwrap_or_else(|e| fail(e));
    let status = run.status().unwrap_or_else(|e| fail(e));
    eprintln!("{status}");
    println!("{}", serde::json::to_string(&status));
}

fn campaign_report_cmd(mut args: Args) {
    let dir = campaign_dir(&mut args);
    args.finish();
    let run = CampaignRun::open(&dir).unwrap_or_else(|e| fail(e));
    let report = run.report().unwrap_or_else(|e| fail(e));
    eprintln!(
        "campaign `{}`: {} point(s)",
        report.label,
        report.points.len()
    );
    println!("{}", serde::json::to_string(&report));
}

fn campaign_cmd(mut raw: Vec<String>) {
    if raw.is_empty() {
        fail("campaign requires a subcommand: plan, run, resume, status or report");
    }
    let sub = raw.remove(0);
    let args = Args { args: raw };
    match sub.as_str() {
        "plan" => campaign_plan_cmd(args),
        "run" => campaign_run_cmd(args),
        "resume" => campaign_resume_cmd(args),
        "status" => campaign_status_cmd(args),
        "report" => campaign_report_cmd(args),
        other => fail(format_args!(
            "unknown campaign subcommand `{other}`; see --help"
        )),
    }
}

fn queue_cmd(mut raw: Vec<String>) -> ExitCode {
    if raw.is_empty() {
        fail("queue requires a subcommand: init, claim, submit, status, work or resume");
    }
    let sub = raw.remove(0);
    let args = Args { args: raw };
    match sub.as_str() {
        "init" => queue_init_cmd(args),
        "claim" => return queue_claim_cmd(args),
        "submit" => queue_submit_cmd(args),
        "status" => queue_status_cmd(args),
        "work" => queue_work_cmd(args),
        "resume" => return queue_resume_cmd(args),
        other => fail(format_args!(
            "unknown queue subcommand `{other}`; see --help"
        )),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if raw.is_empty() {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let command = raw.remove(0);
    if command == "queue" {
        return queue_cmd(raw);
    }
    if command == "campaign" {
        campaign_cmd(raw);
        return ExitCode::SUCCESS;
    }
    let args = Args { args: raw };
    match command.as_str() {
        "scenario" => scenario_cmd(args),
        "plan" => plan_cmd(args),
        "run" => run_cmd(args),
        "merge" => merge_cmd(args),
        other => fail(format_args!("unknown subcommand `{other}`; see --help")),
    }
    ExitCode::SUCCESS
}
