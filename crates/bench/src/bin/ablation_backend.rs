//! Backend ablation: detection-rate curves on the exact density-matrix
//! emulation vs the sampled statevector-trajectory substrate.
//!
//! Sweeps the Fig. 2/3 channel-length grid (η identity gates on an
//! `ibm_brisbane`-like device) for the honest control, intercept-resend and
//! MITM adversaries on **both** production backends, then reports where the
//! sampled substrate's curves diverge from the paper's emulation.
//!
//! The sweep is the checked-in `campaigns/ablation_backend.json` definition (rebuilt via
//! [`bench::campaigns::ablation_campaign`] when any flag overrides the stored defaults);
//! pass `--legacy` to run the pre-campaign hand-rolled grid instead (CI byte-diffs the two).
//!
//! ```text
//! cargo run --release -p bench --bin ablation_backend -- \
//!     [--trials N] [--seed N] [--etas CSV] [--legacy]
//! ```

use analysis::report::render_markdown_table;
use bench::campaigns::{ablation_campaign, ablation_rows, stored_campaign};
use bench::{BackendAblationRow, ABLATION_ADVERSARIES};
use protocol::engine::{BackendKind, NoSampler};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("ablation_backend: {message}");
    std::process::exit(2)
}

fn parse_args() -> (usize, u64, Vec<usize>, bool) {
    let mut trials = 20usize;
    let mut seed = 11u64;
    let mut etas = vec![0usize, 10, 50];
    let mut legacy = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(format_args!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--trials" => {
                trials = value("--trials")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --trials: {e}")));
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --seed: {e}")));
            }
            "--etas" => {
                etas = value("--etas")
                    .split(',')
                    .map(|raw| {
                        raw.trim().parse().unwrap_or_else(|e| {
                            fail(format_args!("invalid --etas entry `{raw}`: {e}"))
                        })
                    })
                    .collect();
                if etas.is_empty() {
                    fail("--etas needs at least one channel length");
                }
            }
            "--legacy" => legacy = true,
            other => fail(format_args!("unknown option `{other}`")),
        }
    }
    (trials, seed, etas, legacy)
}

fn rows_from_campaign(etas: &[usize], trials: usize, seed: u64) -> Vec<BackendAblationRow> {
    // The stored definition covers the default arguments; any override
    // rebuilds the same campaign shape over the requested grid.
    let campaign = if (trials, seed, etas) == (20, 11, &[0usize, 10, 50][..]) {
        stored_campaign("ablation_backend").expect("ablation campaign is checked in")
    } else {
        ablation_campaign(etas, trials, seed)
    };
    let report = campaign
        .run_direct(bench::engine_parallelism(), &NoSampler)
        .unwrap_or_else(|e| fail(format_args!("campaign failed: {e}")));
    ablation_rows(&report).unwrap_or_else(|e| fail(e))
}

fn fmt_chsh(value: Option<f64>) -> String {
    value.map_or_else(|| "—".into(), |s| format!("{s:.3}"))
}

fn main() {
    let (trials, seed, etas, legacy) = parse_args();
    bench::announce_parallelism();
    eprintln!(
        "sweeping η ∈ {etas:?} × {:?} × {:?} at {trials} trials (seed {seed})",
        ABLATION_ADVERSARIES,
        BackendKind::ALL.map(BackendKind::as_str),
    );
    let rows = if legacy {
        bench::backend_ablation_experiment(&etas, trials, seed)
    } else {
        rows_from_campaign(&etas, trials, seed)
    };

    println!("# Backend ablation: density-matrix emulation vs sampled statevector trajectories\n");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.adversary.to_string(),
                r.eta.to_string(),
                r.backend.to_string(),
                r.trials.to_string(),
                r.delivered.to_string(),
                format!("{:.3}", r.detection_rate),
                fmt_chsh(r.mean_chsh_round2),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &[
                "scenario",
                "eta",
                "backend",
                "trials",
                "delivered",
                "detection rate",
                "mean S2",
            ],
            &cells
        )
    );

    // Rows come back grid-major, so consecutive pairs are the same scenario on
    // the two substrates: the divergence table is their pointwise difference.
    println!("## Divergence (statevector − density-matrix)\n");
    let mut worst: Option<(&BackendAblationRow, f64)> = None;
    let divergence: Vec<Vec<String>> = rows
        .chunks(2)
        .map(|pair| {
            let (density, statevector) = (&pair[0], &pair[1]);
            let delta = statevector.detection_rate - density.detection_rate;
            if worst.is_none_or(|(_, w)| delta.abs() > w.abs()) {
                worst = Some((density, delta));
            }
            vec![
                density.adversary.to_string(),
                density.eta.to_string(),
                format!("{:.3}", density.detection_rate),
                format!("{:.3}", statevector.detection_rate),
                format!("{delta:+.3}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &[
                "scenario",
                "eta",
                "density-matrix",
                "statevector",
                "Δ detection",
            ],
            &divergence
        )
    );
    if let Some((row, delta)) = worst {
        println!(
            "largest divergence: {:+.3} detection rate for `{}` at η={} — the sampled \
             substrate tracks the emulation elsewhere.",
            delta, row.adversary, row.eta
        );
    }
}
