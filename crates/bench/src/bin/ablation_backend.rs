//! Backend ablation: detection-rate curves on the exact density-matrix
//! emulation vs the sampled statevector-trajectory and pauli-twirled
//! stabilizer substrates — an accuracy-vs-throughput Pareto report.
//!
//! Sweeps the Fig. 2/3 channel-length grid (η identity gates on an
//! `ibm_brisbane`-like device) for the honest control, intercept-resend and
//! MITM adversaries on **every** production backend, then reports where each
//! cheaper substrate's curves diverge from the paper's emulation, how much
//! faster it runs the same workload, and the distortion bought per unit of
//! speedup.
//!
//! The sweep is the checked-in `campaigns/ablation_backend.json` definition (rebuilt via
//! [`bench::campaigns::ablation_campaign`] when any flag overrides the stored defaults);
//! pass `--legacy` to run the pre-campaign hand-rolled grid instead (CI byte-diffs the two).
//!
//! ```text
//! cargo run --release -p bench --bin ablation_backend -- \
//!     [--trials N] [--seed N] [--etas CSV] [--legacy]
//! ```

use analysis::report::render_markdown_table;
use bench::campaigns::{ablation_campaign, ablation_rows, stored_campaign};
use bench::{BackendAblationRow, ABLATION_ADVERSARIES};
use protocol::engine::{BackendKind, NoSampler, Parallelism, SessionEngine};

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("ablation_backend: {message}");
    std::process::exit(2)
}

fn parse_args() -> (usize, u64, Vec<usize>, bool) {
    let mut trials = 20usize;
    let mut seed = 11u64;
    let mut etas = vec![0usize, 10, 50];
    let mut legacy = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(format_args!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--trials" => {
                trials = value("--trials")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --trials: {e}")));
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --seed: {e}")));
            }
            "--etas" => {
                etas = value("--etas")
                    .split(',')
                    .map(|raw| {
                        raw.trim().parse().unwrap_or_else(|e| {
                            fail(format_args!("invalid --etas entry `{raw}`: {e}"))
                        })
                    })
                    .collect();
                if etas.is_empty() {
                    fail("--etas needs at least one channel length");
                }
            }
            "--legacy" => legacy = true,
            other => fail(format_args!("unknown option `{other}`")),
        }
    }
    (trials, seed, etas, legacy)
}

fn rows_from_campaign(etas: &[usize], trials: usize, seed: u64) -> Vec<BackendAblationRow> {
    // The stored definition covers the default arguments; any override
    // rebuilds the same campaign shape over the requested grid.
    let campaign = if (trials, seed, etas) == (20, 11, &[0usize, 10, 50][..]) {
        stored_campaign("ablation_backend").expect("ablation campaign is checked in")
    } else {
        ablation_campaign(etas, trials, seed)
    };
    let report = campaign
        .run_direct(bench::engine_parallelism(), &NoSampler)
        .unwrap_or_else(|e| fail(format_args!("campaign failed: {e}")));
    ablation_rows(&report).unwrap_or_else(|e| fail(e))
}

fn fmt_chsh(value: Option<f64>) -> String {
    value.map_or_else(|| "—".into(), |s| format!("{s:.3}"))
}

/// Measures serial honest-sweep throughput (trials/sec) of one substrate at
/// the grid's largest η — the workload where the substrates separate.
fn sweep_throughput(eta: usize, seed: u64, backend: BackendKind) -> f64 {
    const WARMUP: usize = 8;
    const TRIALS: usize = 96;
    let engine = SessionEngine::new(seed).with_parallelism(Parallelism::Serial);
    let scenario = bench::sweep_scenario(eta, seed, backend);
    engine
        .run_trials(&scenario, WARMUP)
        .unwrap_or_else(|e| fail(format_args!("throughput warm-up failed: {e}")));
    let start = std::time::Instant::now();
    engine
        .run_trials(&scenario, TRIALS)
        .unwrap_or_else(|e| fail(format_args!("throughput trials failed: {e}")));
    TRIALS as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let (trials, seed, etas, legacy) = parse_args();
    bench::announce_parallelism();
    eprintln!(
        "sweeping η ∈ {etas:?} × {:?} × {:?} at {trials} trials (seed {seed})",
        ABLATION_ADVERSARIES,
        BackendKind::ALL.map(BackendKind::as_str),
    );
    let rows = if legacy {
        bench::backend_ablation_experiment(&etas, trials, seed)
    } else {
        rows_from_campaign(&etas, trials, seed)
    };

    println!("# Backend ablation: exact emulation vs sampled trajectories vs pauli twirling\n");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.adversary.to_string(),
                r.eta.to_string(),
                r.backend.to_string(),
                r.trials.to_string(),
                r.delivered.to_string(),
                format!("{:.3}", r.detection_rate),
                fmt_chsh(r.mean_chsh_round2),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &[
                "scenario",
                "eta",
                "backend",
                "trials",
                "delivered",
                "detection rate",
                "mean S2",
            ],
            &cells
        )
    );

    // Rows come back grid-major (η, adversary, then backend), so each chunk
    // is one scenario on every substrate, density-matrix first: the
    // divergence table is each cheaper substrate's pointwise difference from
    // that exact reference.
    let alternates: Vec<BackendKind> = BackendKind::ALL[1..].to_vec();
    println!("## Divergence from the density-matrix emulation\n");
    // Per alternate substrate: the scenario with the largest |Δ detection|.
    let mut worst: Vec<Option<(&BackendAblationRow, f64)>> = vec![None; alternates.len()];
    let divergence: Vec<Vec<String>> = rows
        .chunks(BackendKind::ALL.len())
        .map(|group| {
            let density = &group[0];
            let mut cells = vec![
                density.adversary.to_string(),
                density.eta.to_string(),
                format!("{:.3}", density.detection_rate),
            ];
            for (slot, row) in worst.iter_mut().zip(&group[1..]) {
                let delta = row.detection_rate - density.detection_rate;
                if slot.is_none_or(|(_, w)| delta.abs() > w.abs()) {
                    *slot = Some((density, delta));
                }
                cells.push(format!("{:.3}", row.detection_rate));
                cells.push(format!("{delta:+.3}"));
            }
            cells
        })
        .collect();
    let mut headers = vec![
        "scenario".to_string(),
        "eta".to_string(),
        "density-matrix".to_string(),
    ];
    for backend in &alternates {
        headers.push(backend.to_string());
        headers.push(format!("Δ {backend}"));
    }
    let headers: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", render_markdown_table(&headers, &divergence));
    for (backend, slot) in alternates.iter().zip(&worst) {
        if let Some((row, delta)) = slot {
            println!(
                "largest `{backend}` divergence: {:+.3} detection rate for `{}` at η={}.",
                delta, row.adversary, row.eta
            );
        }
    }

    // The Pareto view: what each substrate pays in curve fidelity per unit
    // of honest-sweep speedup. Throughput is measured live (serial, at the
    // grid's largest η), so this section is machine-dependent — the grid and
    // divergence tables above are the deterministic part of the report.
    let pareto_eta = etas.iter().copied().max().unwrap_or(0);
    println!("\n## Accuracy-vs-throughput Pareto (serial honest sweep at η={pareto_eta})\n");
    let reference = sweep_throughput(pareto_eta, seed, BackendKind::DensityMatrix);
    let pareto: Vec<Vec<String>> = BackendKind::ALL
        .into_iter()
        .map(|backend| {
            let throughput = if backend == BackendKind::DensityMatrix {
                reference
            } else {
                sweep_throughput(pareto_eta, seed, backend)
            };
            let speedup = throughput / reference;
            let max_divergence = alternates
                .iter()
                .position(|&b| b == backend)
                .and_then(|i| worst[i])
                .map_or(0.0, |(_, delta)| delta.abs());
            vec![
                backend.to_string(),
                format!("{throughput:.1}"),
                format!("{speedup:.1}x"),
                format!("{max_divergence:.3}"),
                format!("{:.4}", max_divergence / speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &[
                "backend",
                "trials/s",
                "speedup",
                "max abs Δ detection",
                "abs Δ per unit speedup",
            ],
            &pareto
        )
    );
}
