//! Regenerates Table I: comparison between state-of-the-art DI-QSDC protocols and the
//! proposed UA-DI-QSDC protocol.

use analysis::report::render_markdown_table;

fn main() {
    let rows = bench::table1_rows();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.protocol.clone(),
                r.resource.clone(),
                r.measurement.clone(),
                format!("{}", r.qubits_per_bit),
                if r.user_authentication { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    println!("# Table I — DI-QSDC protocol comparison\n");
    println!(
        "{}",
        render_markdown_table(
            &[
                "Protocol",
                "Resource type",
                "Measurement for decoding",
                "Qubits per message bit",
                "UA"
            ],
            &cells
        )
    );
}
