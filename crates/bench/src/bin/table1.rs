//! Regenerates Table I: comparison between state-of-the-art DI-QSDC protocols and the
//! proposed UA-DI-QSDC protocol. The static descriptor rows are cross-checked against a live
//! engine run: the measured per-session resource accounting must reproduce the UA-DI-QSDC
//! row's qubits-per-message-bit figure.

use analysis::report::render_markdown_table;
use protocol::engine::{Scenario, SessionEngine};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use rand::SeedableRng;

fn main() {
    let parallelism = bench::announce_parallelism();
    let rows = bench::table1_rows();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.protocol.clone(),
                r.resource.clone(),
                r.measurement.clone(),
                format!("{}", r.qubits_per_bit),
                if r.user_authentication { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    println!("# Table I — DI-QSDC protocol comparison\n");
    println!(
        "{}",
        render_markdown_table(
            &[
                "Protocol",
                "Resource type",
                "Measurement for decoding",
                "Qubits per message bit",
                "UA"
            ],
            &cells
        )
    );

    // Cross-check the UA-DI-QSDC row against the engine's measured resource
    // accounting, run under the env-selectable parallelism policy.
    let mut rng = rand::rngs::StdRng::seed_from_u64(20240916);
    let identities = IdentityPair::generate(4, &mut rng);
    let config = SessionConfig::builder()
        .message_bits(16)
        .check_bits(4)
        .di_check_pairs(64)
        .build()
        .expect("table1 verification config is valid");
    let scenario = Scenario::new(config, identities).with_label("table1-verification");
    let outcomes = SessionEngine::new(20240916)
        .with_parallelism(parallelism)
        .run_outcomes(&scenario, 4)
        .expect("table1 verification sessions run");
    let measured = outcomes[0].resources.qubits_per_message_bit;
    let claimed = rows
        .iter()
        .find(|r| r.user_authentication)
        .expect("Table I contains the UA-DI-QSDC row")
        .qubits_per_bit;
    println!(
        "\nEngine cross-check ({} sessions, {} EPR pairs each): measured {measured} \
         qubits per message bit, Table I claims {claimed}.",
        outcomes.len(),
        outcomes[0].resources.total_pairs
    );
    assert!(
        (measured - claimed).abs() < f64::EPSILON,
        "measured qubits/bit {measured} diverges from the descriptor's {claimed}"
    );
}
