//! Regenerates Table I: comparison between state-of-the-art DI-QSDC protocols and the
//! proposed UA-DI-QSDC protocol. The static descriptor rows are cross-checked against a live
//! engine run — the sessions must deliver, and the protocol's planned resource accounting
//! ([`ResourceUsage::planned`]) must reproduce the UA-DI-QSDC row's qubits-per-message-bit
//! figure (a `protocol` unit test locks the planned arithmetic to the engine's live
//! per-outcome accounting).
//!
//! The verification sessions run the checked-in `campaigns/table1.json` definition; pass
//! `--legacy` to run the pre-campaign direct engine loop instead (CI byte-diffs the two).

use analysis::report::render_markdown_table;
use protocol::engine::NoSampler;
use protocol::session::ResourceUsage;

const TRIALS: usize = 4;
const SEED: u64 = 20240916;

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("table1: {message}");
    std::process::exit(2)
}

fn parse_legacy_flag() -> bool {
    let mut legacy = false;
    for flag in std::env::args().skip(1) {
        match flag.as_str() {
            "--legacy" => legacy = true,
            other => fail(format_args!(
                "unknown option `{other}` (supported: --legacy)"
            )),
        }
    }
    legacy
}

fn main() {
    let legacy = parse_legacy_flag();
    bench::announce_parallelism();
    let rows = bench::table1_rows();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.protocol.clone(),
                r.resource.clone(),
                r.measurement.clone(),
                format!("{}", r.qubits_per_bit),
                if r.user_authentication { "Yes" } else { "No" }.to_string(),
            ]
        })
        .collect();
    println!("# Table I — DI-QSDC protocol comparison\n");
    println!(
        "{}",
        render_markdown_table(
            &[
                "Protocol",
                "Resource type",
                "Measurement for decoding",
                "Qubits per message bit",
                "UA"
            ],
            &cells
        )
    );

    // Cross-check the UA-DI-QSDC row against a live engine run: the honest
    // verification sessions must deliver, and the planned accounting must
    // reproduce the claimed qubits-per-message-bit figure.
    let summary = if legacy {
        bench::table1_verification_summary(TRIALS, SEED)
    } else {
        let report = bench::campaigns::stored_campaign("table1")
            .expect("table1 campaign is checked in")
            .run_direct(bench::engine_parallelism(), &NoSampler)
            .unwrap_or_else(|e| fail(format_args!("campaign failed: {e}")));
        bench::campaigns::table1_summary(&report).unwrap_or_else(|e| fail(e))
    };
    let scenario = bench::table1_verification_scenario(SEED);
    let planned = ResourceUsage::planned(&scenario.config, scenario.identities.qubit_len());
    let claimed = rows
        .iter()
        .find(|r| r.user_authentication)
        .expect("Table I contains the UA-DI-QSDC row")
        .qubits_per_bit;
    println!(
        "\nEngine cross-check ({} sessions, {} EPR pairs each): {}/{} delivered; planned \
         accounting gives {} qubits per message bit, Table I claims {claimed}.",
        summary.trials,
        planned.total_pairs,
        summary.delivered,
        summary.trials,
        planned.qubits_per_message_bit,
    );
    assert_eq!(
        summary.delivered, summary.trials,
        "honest ideal-channel verification sessions must all deliver"
    );
    assert!(
        (planned.qubits_per_message_bit - claimed).abs() < f64::EPSILON,
        "planned qubits/bit {} diverges from the descriptor's {claimed}",
        planned.qubits_per_message_bit
    );
}
