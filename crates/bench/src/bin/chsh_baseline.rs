//! CHSH-estimation behaviour: how the estimated S value and its spread depend on the
//! check-pair budget d and the pair noise level (supports the paper's choice of "several
//! hundred to a few thousand pairs" for each DI-check round).

use analysis::report::render_markdown_table;

fn main() {
    bench::announce_parallelism();
    let points =
        bench::chsh_baseline_experiment(&[50, 100, 200, 400, 800], &[0.0, 0.05, 0.2], 8, 99);
    println!("# CHSH estimation vs check-pair budget and noise\n");
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.check_pairs.to_string(),
                format!("{:.2}", p.depolarizing),
                format!("{:.3}", p.mean_chsh),
                format!("{:.3}", p.std_dev),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &["d (check pairs)", "depolarizing p", "mean S", "std dev"],
            &cells
        )
    );
    println!("ideal value 2√2 ≈ 2.828; classical bound 2; abort whenever S ≤ 2.");
}
