//! Regenerates Fig. 2: Bob's measurement outcomes for each 2-bit message sent over a channel
//! of η = 10 noisy identity gates with 1024 shots on the ibm_brisbane-like noise model.
//!
//! The figure is a formatter over the checked-in `campaigns/fig2.json` definition; pass
//! `--legacy` to run the pre-campaign hand-rolled loop instead (CI byte-diffs the two).

use analysis::report::render_markdown_table;
use analysis::rows::HistogramRow;
use bench::campaigns::{fig2_rows, figure_sampler, stored_campaign};
use noise::DeviceModel;

fn rows_from_campaign() -> Vec<HistogramRow> {
    let campaign = stored_campaign("fig2").expect("fig2 campaign is checked in");
    let report = campaign
        .run_direct(bench::engine_parallelism(), &figure_sampler())
        .expect("fig2 campaign runs");
    fig2_rows(&report).expect("fig2 rows recover")
}

fn main() {
    let mut legacy = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--legacy" => legacy = true,
            other => {
                eprintln!("unknown option `{other}` (supported: --legacy)");
                std::process::exit(2)
            }
        }
    }
    bench::announce_parallelism();
    let device = DeviceModel::ibm_brisbane_like();
    let rows = if legacy {
        bench::fig2_experiment(&device, 10, 1024, 20240916)
    } else {
        rows_from_campaign()
    };
    println!(
        "# Fig. 2 — Bob's decoded counts (η = 10, 1024 shots, {})\n",
        device.name()
    );
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.encoded.clone(),
                r.counts[0].to_string(),
                r.counts[1].to_string(),
                r.counts[2].to_string(),
                r.counts[3].to_string(),
                format!("{:.4}", r.accuracy()),
                format!("{:.4}", r.fidelity),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &["encoded", "count 00", "count 01", "count 10", "count 11", "accuracy", "fidelity"],
            &cells
        )
    );
    let mean_fidelity: f64 = rows.iter().map(|r| r.fidelity).sum::<f64>() / rows.len() as f64;
    println!("mean fidelity over the four panels: {mean_fidelity:.4} (paper: ≥ 0.95)");
}
