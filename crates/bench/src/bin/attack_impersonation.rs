//! Impersonation-attack simulation (Sections III-A and IV): measured detection rate versus
//! the analytic probability 1 − (1/4)^l for a range of identity lengths.

use analysis::report::render_markdown_table;
use protocol::session::Impersonation;

fn main() {
    bench::announce_parallelism();
    println!("# Impersonation attack — detection probability vs identity length\n");
    for (target, label) in [
        (Impersonation::OfBob, "Eve impersonates Bob (Alice detects)"),
        (
            Impersonation::OfAlice,
            "Eve impersonates Alice (Bob detects)",
        ),
    ] {
        let points = bench::impersonation_experiment(&[1, 2, 3, 4, 6, 8], target, 200, 77);
        println!("## {label}\n");
        let cells: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.identity_qubits.to_string(),
                    p.trials.to_string(),
                    format!("{:.4}", p.measured),
                    format!("{:.4}", p.analytic),
                    format!("{:.4}", p.deviation()),
                ]
            })
            .collect();
        println!(
            "{}",
            render_markdown_table(
                &[
                    "l (identity qubits)",
                    "trials",
                    "measured detection",
                    "1 - (1/4)^l",
                    "|deviation|"
                ],
                &cells
            )
        );
    }
}
