//! Regenerates Fig. 3: accuracy of Bob's measurement versus channel length (number of
//! identity operators, 10 ≤ η ≤ 700 in steps of 10).
//!
//! The figure is a formatter over the checked-in `campaigns/fig3.json` definition; pass
//! `--legacy` to run the pre-campaign hand-rolled loop instead (CI byte-diffs the two).

use analysis::report::render_csv;
use analysis::rows::AccuracyPoint;
use bench::campaigns::{fig3_points, figure_sampler, stored_campaign};
use noise::DeviceModel;

fn points_from_campaign() -> Vec<AccuracyPoint> {
    let campaign = stored_campaign("fig3").expect("fig3 campaign is checked in");
    let report = campaign
        .run_direct(bench::engine_parallelism(), &figure_sampler())
        .expect("fig3 campaign runs");
    fig3_points(&report).expect("fig3 points recover")
}

fn main() {
    let mut legacy = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--legacy" => legacy = true,
            other => {
                eprintln!("unknown option `{other}` (supported: --legacy)");
                std::process::exit(2)
            }
        }
    }
    bench::announce_parallelism();
    let device = DeviceModel::ibm_brisbane_like();
    let points = if legacy {
        bench::fig3_experiment(&device, &bench::fig3_eta_values(), 256, 424242)
    } else {
        points_from_campaign()
    };
    println!(
        "# Fig. 3 — accuracy vs channel length ({})\n",
        device.name()
    );
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.eta.to_string(),
                format!("{:.2}", p.duration_us),
                format!("{:.4}", p.accuracy),
            ]
        })
        .collect();
    println!(
        "{}",
        render_csv(&["eta", "duration_us", "accuracy"], &cells)
    );
    let first = points.first().expect("sweep has points");
    let last = points.last().expect("sweep has points");
    println!(
        "accuracy at η={} : {:.3}   |   accuracy at η={} : {:.3} (paper: drops below ~0.60 near η = 700)",
        first.eta, first.accuracy, last.eta, last.accuracy
    );
    if let Some(cross) = points.iter().find(|p| p.accuracy < 0.6) {
        println!(
            "first point below 60% accuracy: η = {} ({:.2} µs)",
            cross.eta, cross.duration_us
        );
    } else {
        println!("no point fell below 60% accuracy in this sweep");
    }
}
