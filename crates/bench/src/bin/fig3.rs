//! Regenerates Fig. 3: accuracy of Bob's measurement versus channel length (number of
//! identity operators, 10 ≤ η ≤ 700 in steps of 10).

use analysis::report::render_csv;
use noise::DeviceModel;

fn main() {
    bench::announce_parallelism();
    let device = DeviceModel::ibm_brisbane_like();
    let points = bench::fig3_experiment(&device, &bench::fig3_eta_values(), 256, 424242);
    println!(
        "# Fig. 3 — accuracy vs channel length ({})\n",
        device.name()
    );
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.eta.to_string(),
                format!("{:.2}", p.duration_us),
                format!("{:.4}", p.accuracy),
            ]
        })
        .collect();
    println!(
        "{}",
        render_csv(&["eta", "duration_us", "accuracy"], &cells)
    );
    let first = points.first().expect("sweep has points");
    let last = points.last().expect("sweep has points");
    println!(
        "accuracy at η={} : {:.3}   |   accuracy at η={} : {:.3} (paper: drops below ~0.60 near η = 700)",
        first.eta, first.accuracy, last.eta, last.accuracy
    );
    if let Some(cross) = points.iter().find(|p| p.accuracy < 0.6) {
        println!(
            "first point below 60% accuracy: η = {} ({:.2} µs)",
            cross.eta, cross.duration_us
        );
    } else {
        println!("no point fell below 60% accuracy in this sweep");
    }
}
