//! Entangle-and-measure attack simulation (Sections III-D and IV).
//!
//! Runs the checked-in `campaigns/attack_entangle.json` definition (rebuilt
//! via [`bench::campaigns::attack_campaign`] when `--backend` overrides the
//! stored substrate); pass `--legacy` to run the pre-campaign
//! [`bench::channel_attack_experiment_on`] loop instead (CI byte-diffs the
//! two).

use analysis::report::render_markdown_table;
use bench::campaigns::attack_experiment_rows;
use bench::ChannelAttackKind;

fn main() {
    let (backend, legacy) = bench::backend_and_legacy_from_args();
    bench::announce_parallelism();
    let (attacked, honest) =
        attack_experiment_rows(ChannelAttackKind::EntangleMeasure, backend, 20, 17, legacy)
            .unwrap_or_else(|e| {
                eprintln!("attack_entangle: {e}");
                std::process::exit(2)
            });
    println!("# Entangle-and-measure attack vs honest channel ({backend} backend)\n");
    let cells: Vec<Vec<String>> = [attacked, honest]
        .iter()
        .map(|r| {
            vec![
                r.attack.clone(),
                r.trials.to_string(),
                r.delivered.to_string(),
                format!("{:.3}", r.detection_rate),
                format!("{:.3}", r.mean_chsh_round1.unwrap_or(f64::NAN)),
                format!("{:.3}", r.mean_chsh_round2.unwrap_or(f64::NAN)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &[
                "scenario",
                "trials",
                "delivered",
                "detection rate",
                "mean S1",
                "mean S2"
            ],
            &cells
        )
    );
    println!("expected shape: monogamy of entanglement pushes S2 to ≈ 0 under a full CNOT probe.");
}
