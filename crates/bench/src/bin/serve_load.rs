//! Load generator for `qsdc-serve`: hundreds of concurrent clients against
//! an in-process server, reporting submit→done latency percentiles and
//! aggregate trial throughput into the committed benchmark report.
//!
//! ```text
//! cargo run --release -p bench --bin serve_load -- \
//!     [--clients N] [--jobs N] [--seed N] [--out FILE] [--check FILE]
//! ```
//!
//! Every client thread opens its own connection, submits its jobs one at a
//! time (retrying on [`Busy`](Response::Busy) backpressure — a `Busy` is
//! flow control, not a drop), and waits for each `Done`. A job counts as
//! **dropped** only if the server answers with an error or the terminal
//! response never arrives; the run fails loudly if that count is not zero,
//! because the service contract is explicit backpressure, never silent
//! loss.
//!
//! The job mix cycles three shapes — a small and a medium session sweep on
//! a lean scenario plus a session on the larger shardctl demo scenario —
//! so the scheduler sees heterogeneous job sizes, not a uniform batch.
//!
//! Results merge into the `serve` section of the throughput report (the
//! rest of the file — `bench_throughput`'s lanes — is preserved
//! byte-for-byte in field order). `--check FILE` compares against a
//! committed report: the section must exist, the committed and fresh runs
//! must both have zero dropped jobs, and fresh throughput must be at least
//! [`THROUGHPUT_SLACK`]× the committed figure (generous, because latency
//! is machine- and load-dependent in a way kernel throughput is not). CI
//! runs this as the `serve-smoke` lane of the `bench-trend` step.

use protocol::engine::{Parallelism, Scenario};
use protocol::identity::IdentityPair;
use protocol::wire::{JobSpec, Request, Response};
use protocol::SessionConfig;
use rand::SeedableRng;
use serde::{Serialize, Value};
use serve::{Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Fresh throughput must be at least this fraction of the committed
/// throughput for `--check` to pass.
const THROUGHPUT_SLACK: f64 = 0.25;

/// Snapshot cadence (= shard granularity) the load server runs at. Larger
/// than any job in the mix, so each job is a single shard and the measured
/// cost is scheduling + spool + protocol, not repeated shard bookkeeping.
const SNAPSHOT_TRIALS: usize = 64;

/// Per-client unfinished-job quota on the load server. Deliberately small
/// so the run actually exercises `Busy` backpressure under load.
const QUOTA: usize = 2;

/// The `serve` section of the throughput report.
#[derive(Debug, Clone, Serialize)]
struct ServeReport {
    /// Section schema version.
    version: u32,
    /// Concurrent client connections.
    clients: usize,
    /// Jobs submitted per client.
    jobs_per_client: usize,
    /// Worker threads the server ran.
    workers: usize,
    /// Per-client unfinished-job quota.
    quota: usize,
    /// Trials executed across every finished job.
    trials: u64,
    /// Wall-clock seconds from first connect to last `Done`.
    seconds: f64,
    /// Aggregate trials per second across the whole fleet.
    trials_per_sec: f64,
    /// Median submit→done latency, milliseconds.
    p50_ms: f64,
    /// 99th-percentile submit→done latency, milliseconds.
    p99_ms: f64,
    /// Worst submit→done latency, milliseconds.
    max_ms: f64,
    /// `Busy` responses absorbed by retrying (backpressure working).
    busy_retries: u64,
    /// Jobs that did not finish. The contract is zero.
    dropped: usize,
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("serve_load: {message}");
    std::process::exit(2)
}

struct Args {
    clients: usize,
    jobs: usize,
    seed: u64,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        clients: 200,
        jobs: 3,
        seed: 7,
        out: "BENCH_throughput.json".to_string(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(format_args!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--clients" => {
                parsed.clients = value("--clients")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --clients: {e}")));
                if parsed.clients == 0 {
                    fail("--clients must be at least 1");
                }
            }
            "--jobs" => {
                parsed.jobs = value("--jobs")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --jobs: {e}")));
                if parsed.jobs == 0 {
                    fail("--jobs must be at least 1");
                }
            }
            "--seed" => {
                parsed.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --seed: {e}")));
            }
            "--out" => parsed.out = value("--out"),
            "--check" => parsed.check = Some(value("--check")),
            other => fail(format_args!("unknown option `{other}`")),
        }
    }
    parsed
}

/// A lean session scenario: small message, small DI budget, ideal channel.
fn lean_scenario(seed: u64, di_check_pairs: usize, label: &str) -> Scenario {
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(di_check_pairs)
        .build()
        .unwrap_or_else(|e| fail(format_args!("lean scenario config: {e}")));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let identities = IdentityPair::generate(2, &mut rng);
    Scenario::new(config, identities).with_label(label.to_string())
}

/// The job shape for global job index `index`: the mix cycles small,
/// medium, and demo-scenario sessions so concurrent jobs differ in size.
fn job_spec(index: u64, seed: u64) -> JobSpec {
    let (scenario, trials) = match index % 3 {
        0 => (lean_scenario(seed, 16, "serve-load-small"), 4),
        1 => (lean_scenario(seed, 16, "serve-load-medium"), 12),
        _ => (
            bench::shard_io::demo_scenario("honest", seed, Default::default())
                .unwrap_or_else(|e| fail(e)),
            8,
        ),
    };
    JobSpec::Session {
        scenario,
        trials,
        seed: seed ^ index,
    }
}

/// Trials a job spec will execute (for the aggregate throughput figure).
fn spec_trials(spec: &JobSpec) -> u64 {
    match spec {
        JobSpec::Session { trials, .. } => *trials as u64,
        JobSpec::Campaign { .. } => 0,
    }
}

/// What one client thread brings home.
struct ClientOutcome {
    latencies_ms: Vec<f64>,
    trials: u64,
    busy_retries: u64,
    dropped: usize,
}

/// Connects with retry: two hundred simultaneous SYNs can overflow the
/// accept backlog, which is congestion, not failure.
fn connect_with_retry(addr: SocketAddr) -> Client {
    let mut last = None;
    for _ in 0..200 {
        match Client::connect(addr) {
            Ok(client) => return client,
            Err(error) => {
                last = Some(error);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    fail(format_args!(
        "client could not connect after 200 attempts: {}",
        last.expect("at least one attempt failed")
    ))
}

/// One pending job: accepted id, submit-time clock, expected trials.
struct Pending {
    job: u64,
    start: Instant,
    trials: u64,
}

/// One client's session, pipelined: every job is submitted before any
/// completion is waited for, so a client with more jobs than the server's
/// quota genuinely runs into `Busy` and must absorb it by retrying. The
/// server interleaves `Done` notifications with submit replies on the one
/// connection, so the loop folds both streams.
fn run_client(addr: SocketAddr, specs: Vec<JobSpec>) -> ClientOutcome {
    let mut client = connect_with_retry(addr);
    let mut outcome = ClientOutcome {
        latencies_ms: Vec::with_capacity(specs.len()),
        trials: 0,
        busy_retries: 0,
        dropped: 0,
    };
    let mut pending: Vec<Pending> = Vec::with_capacity(specs.len());
    let finish = |pending: &mut Vec<Pending>, outcome: &mut ClientOutcome, job: u64, lost: bool| {
        if let Some(index) = pending.iter().position(|p| p.job == job) {
            let entry = pending.swap_remove(index);
            if lost {
                outcome.dropped += 1;
            } else {
                outcome
                    .latencies_ms
                    .push(entry.start.elapsed().as_secs_f64() * 1e3);
                outcome.trials += entry.trials;
            }
        }
    };
    for spec in specs {
        let trials = spec_trials(&spec);
        let start = Instant::now();
        let mut backoff_ms = 2;
        loop {
            if client.send(&Request::Submit { job: spec.clone() }).is_err() {
                outcome.dropped += 1;
                break;
            }
            // Read until this submit's direct answer, folding completions
            // of earlier jobs along the way.
            let answer = loop {
                match client.recv() {
                    Ok(Response::Done { job, .. }) => {
                        finish(&mut pending, &mut outcome, job, false);
                    }
                    Ok(Response::Cancelled { job }) => {
                        finish(&mut pending, &mut outcome, job, true);
                    }
                    Ok(Response::Snapshot { .. }) | Ok(Response::Status { .. }) => {}
                    Ok(direct) => break Ok(direct),
                    Err(error) => break Err(error),
                }
            };
            match answer {
                Ok(Response::Accepted { job }) => {
                    pending.push(Pending { job, start, trials });
                    break;
                }
                Ok(Response::Busy { .. }) => {
                    outcome.busy_retries += 1;
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                    backoff_ms = (backoff_ms * 2).min(50);
                }
                Ok(other) => {
                    eprintln!("serve_load: job rejected: {other:?}");
                    outcome.dropped += 1;
                    break;
                }
                Err(error) => {
                    eprintln!("serve_load: submit failed: {error}");
                    outcome.dropped += 1;
                    break;
                }
            }
        }
    }
    // Drain the completions still in flight.
    while !pending.is_empty() {
        match client.recv() {
            Ok(Response::Done { job, .. }) => finish(&mut pending, &mut outcome, job, false),
            Ok(Response::Cancelled { job }) => finish(&mut pending, &mut outcome, job, true),
            Ok(Response::Error { kind, message }) => {
                eprintln!("serve_load: server error while draining: {kind:?}: {message}");
                outcome.dropped += pending.len();
                break;
            }
            Ok(_) => {}
            Err(error) => {
                eprintln!("serve_load: connection lost while draining: {error}");
                outcome.dropped += pending.len();
                break;
            }
        }
    }
    outcome
}

/// The `pct`-th percentile of an ascending-sorted latency list.
fn percentile(sorted_ms: &[f64], pct: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let index = ((sorted_ms.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted_ms[index.min(sorted_ms.len() - 1)]
}

/// Merges `section` into the `serve` key of the report at `path`,
/// preserving every other field (notably `bench_throughput`'s lanes) in
/// order. A missing file starts a fresh report holding only the section.
fn merge_into_report(path: &str, section: Value) {
    let mut root = match std::fs::read_to_string(path) {
        Ok(text) => serde::json::parse(&text)
            .unwrap_or_else(|e| fail(format_args!("cannot parse {path}: {e}"))),
        Err(_) => Value::Map(Vec::new()),
    };
    match &mut root {
        Value::Map(entries) => {
            if let Some(entry) = entries.iter_mut().find(|(key, _)| key == "serve") {
                entry.1 = section;
            } else {
                entries.push(("serve".to_string(), section));
            }
        }
        other => fail(format_args!(
            "{path} is not a JSON object (got {}), refusing to overwrite",
            other.kind()
        )),
    }
    let json = serde::json::to_string(&root);
    std::fs::write(path, &json).unwrap_or_else(|e| fail(format_args!("cannot write {path}: {e}")));
    eprintln!("merged serve section into {path}");
}

/// Compares the fresh run against the committed report's `serve` section:
/// it must exist, both runs must have zero dropped jobs, and fresh
/// throughput must be at least [`THROUGHPUT_SLACK`]× the committed figure.
fn check_against(fresh: &ServeReport, path: &str) {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
    let committed = serde::json::parse(&committed)
        .unwrap_or_else(|e| fail(format_args!("cannot parse {path}: {e}")));
    let section = committed
        .get_field("serve")
        .unwrap_or_else(|e| fail(format_args!("{path}: {e}")));
    if matches!(section, Value::Null) {
        fail(format_args!(
            "{path} has no serve section — regenerate it with this binary"
        ));
    }
    let field_u64 = |name: &str| {
        section
            .get_field(name)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|e| fail(format_args!("{path}: serve.{name}: {e}")))
    };
    let committed_dropped = field_u64("dropped");
    if committed_dropped != 0 {
        fail(format_args!(
            "{path}: committed serve section records {committed_dropped} dropped jobs — \
             the committed baseline itself violates the zero-drop contract"
        ));
    }
    let committed_tps = section
        .get_field("trials_per_sec")
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|e| fail(format_args!("{path}: serve.trials_per_sec: {e}")));
    let floor = committed_tps * THROUGHPUT_SLACK;
    if fresh.trials_per_sec < floor {
        fail(format_args!(
            "serve throughput regressed more than {}x: committed {committed_tps:.2} \
             trials/s vs fresh {:.2} trials/s",
            (1.0 / THROUGHPUT_SLACK),
            fresh.trials_per_sec
        ));
    }
    eprintln!(
        "check ok vs {path}: zero dropped jobs on both sides, fresh {:.2} trials/s >= \
         committed {committed_tps:.2} * {THROUGHPUT_SLACK}",
        fresh.trials_per_sec
    );
}

fn main() {
    let args = parse_args();
    let spool = std::env::temp_dir().join(format!("serve-load-{}", std::process::id()));
    let workers = Parallelism::Auto.worker_count().max(2);
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        spool_dir: spool.clone(),
        workers,
        quota: QUOTA,
        snapshot_trials: SNAPSHOT_TRIALS,
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| fail(format_args!("server start: {e}")));
    let addr = server.local_addr();
    eprintln!(
        "driving {} clients x {} jobs against {addr} ({workers} workers, quota {QUOTA})",
        args.clients, args.jobs
    );

    let start = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|client| {
            let specs: Vec<JobSpec> = (0..args.jobs)
                .map(|j| job_spec((client * args.jobs + j) as u64, args.seed))
                .collect();
            std::thread::Builder::new()
                .name(format!("serve-load-{client}"))
                .spawn(move || run_client(addr, specs))
                .unwrap_or_else(|e| fail(format_args!("spawn client thread: {e}")))
        })
        .collect();

    let mut latencies_ms = Vec::with_capacity(args.clients * args.jobs);
    let mut trials = 0;
    let mut busy_retries = 0;
    let mut dropped = 0;
    for handle in handles {
        let outcome = handle
            .join()
            .unwrap_or_else(|_| fail("client thread panicked"));
        latencies_ms.extend(outcome.latencies_ms);
        trials += outcome.trials;
        busy_retries += outcome.busy_retries;
        dropped += outcome.dropped;
    }
    let seconds = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&spool);

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let report = ServeReport {
        version: 1,
        clients: args.clients,
        jobs_per_client: args.jobs,
        workers,
        quota: QUOTA,
        trials,
        seconds,
        trials_per_sec: if seconds > 0.0 {
            trials as f64 / seconds
        } else {
            f64::INFINITY
        },
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        max_ms: percentile(&latencies_ms, 100.0),
        busy_retries,
        dropped,
    };
    eprintln!(
        "{} jobs done in {seconds:.2}s: {:.2} trials/s, p50 {:.1}ms, p99 {:.1}ms, \
         max {:.1}ms, {busy_retries} busy retries, {dropped} dropped",
        latencies_ms.len(),
        report.trials_per_sec,
        report.p50_ms,
        report.p99_ms,
        report.max_ms,
    );
    if report.dropped != 0 {
        fail(format_args!(
            "{} job(s) dropped — the service must answer Busy or finish, never lose work",
            report.dropped
        ));
    }
    if let Some(path) = &args.check {
        check_against(&report, path);
    }
    merge_into_report(&args.out, report.to_value());
    println!("{}", serde::json::to_string(&report.to_value()));
}
