//! Measures engine throughput (protocol sessions per second) and writes a
//! machine-readable report — one lane per execution policy × simulation
//! substrate — so throughput regressions show up as numbers, not vibes.
//!
//! ```text
//! cargo run --release -p bench --bin bench_throughput -- \
//!     [--trials N] [--seed N] [--out FILE]
//! ```
//!
//! The default output path is `BENCH_throughput.json` in the current
//! directory (CI runs it from the repo root). The timing is wall-clock and
//! machine-dependent; the `trials`/`seed`/scenario identity in the report
//! say exactly what was measured.

use protocol::engine::{BackendKind, Parallelism, Scenario, SessionEngine};
use serde::Serialize;

/// One measured configuration: an execution policy on a substrate.
#[derive(Debug, Clone, Serialize)]
struct ThroughputLane {
    /// Execution policy (`serial` or `auto`).
    parallelism: String,
    /// Worker threads the policy resolved to.
    workers: usize,
    /// Simulation substrate the sessions ran on.
    backend: String,
    /// Sessions executed.
    trials: usize,
    /// Wall-clock seconds for the lane.
    seconds: f64,
    /// Sessions per second.
    trials_per_sec: f64,
}

/// The whole report: the workload identity plus every measured lane.
#[derive(Debug, Clone, Serialize)]
struct ThroughputReport {
    /// Report schema version.
    version: u32,
    /// Scenario label the lanes executed.
    scenario: String,
    /// Fingerprint of that scenario (density-matrix variant).
    scenario_fingerprint: u64,
    /// Sessions per lane.
    trials: usize,
    /// Master seed of every lane.
    seed: u64,
    /// The measured lanes.
    lanes: Vec<ThroughputLane>,
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("bench_throughput: {message}");
    std::process::exit(2)
}

fn parse_args() -> (usize, u64, String) {
    let mut trials = 16usize;
    let mut seed = 7u64;
    let mut out = "BENCH_throughput.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(format_args!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--trials" => {
                trials = value("--trials")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --trials: {e}")));
                if trials == 0 {
                    fail("--trials must be at least 1");
                }
            }
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --seed: {e}")));
            }
            "--out" => out = value("--out"),
            other => fail(format_args!("unknown option `{other}`")),
        }
    }
    (trials, seed, out)
}

fn measure(
    scenario: &Scenario,
    trials: usize,
    seed: u64,
    parallelism: Parallelism,
) -> ThroughputLane {
    let engine = SessionEngine::new(seed).with_parallelism(parallelism);
    let start = std::time::Instant::now();
    let summary = engine
        .run_trials(scenario, trials)
        .unwrap_or_else(|e| fail(format_args!("throughput trials failed: {e}")));
    let seconds = start.elapsed().as_secs_f64();
    let lane = ThroughputLane {
        parallelism: parallelism.to_string(),
        workers: parallelism.worker_count(),
        backend: scenario.backend.to_string(),
        trials: summary.trials,
        seconds,
        trials_per_sec: if seconds > 0.0 {
            summary.trials as f64 / seconds
        } else {
            f64::INFINITY
        },
    };
    eprintln!(
        "{} on {}: {} trials in {:.2}s = {:.2} trials/s",
        lane.parallelism, lane.backend, lane.trials, lane.seconds, lane.trials_per_sec
    );
    lane
}

fn main() {
    let (trials, seed, out) = parse_args();
    let scenario = bench::shard_io::demo_scenario("intercept", seed, BackendKind::default())
        .unwrap_or_else(|e| fail(e));
    let mut lanes = Vec::new();
    for backend in BackendKind::ALL {
        let scenario = scenario.clone().with_backend(backend);
        for parallelism in [Parallelism::Serial, Parallelism::Auto] {
            lanes.push(measure(&scenario, trials, seed, parallelism));
        }
    }
    let report = ThroughputReport {
        version: 1,
        scenario: scenario.label.clone(),
        scenario_fingerprint: scenario.fingerprint(),
        trials,
        seed,
        lanes,
    };
    let json = serde::json::to_string(&report.to_value());
    std::fs::write(&out, &json).unwrap_or_else(|e| fail(format_args!("cannot write {out}: {e}")));
    eprintln!("wrote {out}");
    println!("{json}");
}
