//! Measures engine throughput (protocol sessions per second) and writes a
//! machine-readable report — one lane per execution policy × simulation
//! substrate — so throughput regressions show up as numbers, not vibes.
//!
//! ```text
//! cargo run --release -p bench --bin bench_throughput -- \
//!     [--trials N] [--seed N] [--out FILE] [--check FILE]
//! ```
//!
//! Every lane runs a short untimed warm-up first so the numbers reflect
//! steady-state kernel throughput (thread-local pair pools and basis caches
//! populated, allocator warmed) rather than first-trial setup cost.
//!
//! Besides the in-process `serial`/`auto` lanes, a `sharded` lane drives the
//! full shardctl-style pipeline — plan, split, execute each shard, merge —
//! so the distribution overhead of the shard queue protocol is measured
//! against the same workload.
//!
//! Two workloads are measured. The `shardctl-intercept` demo scenario (an
//! ideal channel under an intercept-resend tap) prices the protocol
//! bookkeeping floor; the `sweep-honest-eta50` scenario (η = 50 noisy
//! identity gates on an `ibm_brisbane`-like device, honest) prices the
//! channel simulation itself — the regime the paper's detection-rate curves
//! integrate over, and the one where the simulation substrates separate.
//!
//! `--check FILE` compares the fresh run against a previously committed
//! report: the lane structure (parallelism × backend × scenario) must match,
//! the serial density-matrix demo lane must not have regressed to less than
//! half the committed throughput, and on the sweep workload the serial
//! pauli-twirled lane must run at least [`TWIRL_SPEEDUP_FLOOR`]× the serial
//! density-matrix lane. CI runs this as the `bench-trend` step.
//!
//! The default output path is `BENCH_throughput.json` in the current
//! directory (CI runs it from the repo root). The timing is wall-clock and
//! machine-dependent; the `trials`/`seed`/scenario identity in the report
//! say exactly what was measured.

use protocol::engine::{
    BackendKind, Parallelism, Scenario, SessionEngine, ShardMerger, ShardOutput,
};
use serde::Serialize;

/// Serial density-matrix throughput recorded by the version-1 report, when
/// every trial re-derived and re-embedded its noise operators from scratch.
/// The compiled-kernel rewrite is measured against this constant.
const LEGACY_SERIAL_DM_TRIALS_PER_SEC: f64 = 3676.77;

/// Untimed sessions run before each lane is measured.
const WARMUP_TRIALS: usize = 32;

/// Channel length (identity gates) of the η-sweep workload.
const SWEEP_ETA: usize = 50;

/// The sweep-workload speedup the pauli-twirled substrate must deliver over
/// the exact density-matrix substrate (serial lanes) for `--check` to pass.
const TWIRL_SPEEDUP_FLOOR: f64 = 10.0;

/// One measured configuration: an execution policy on a substrate.
#[derive(Debug, Clone, Serialize)]
struct ThroughputLane {
    /// Execution policy (`serial`, `auto`, or `sharded`).
    parallelism: String,
    /// Worker threads the policy resolved to (shard count for `sharded`).
    workers: usize,
    /// Simulation substrate the sessions ran on.
    backend: String,
    /// Label of the scenario the lane executed.
    scenario: String,
    /// Sessions executed.
    trials: usize,
    /// Wall-clock seconds for the lane.
    seconds: f64,
    /// Sessions per second.
    trials_per_sec: f64,
}

/// The whole report: the workload identity plus every measured lane.
#[derive(Debug, Clone, Serialize)]
struct ThroughputReport {
    /// Report schema version.
    version: u32,
    /// Scenario label the lanes executed.
    scenario: String,
    /// Fingerprint of that scenario (density-matrix variant).
    scenario_fingerprint: u64,
    /// Sessions per lane.
    trials: usize,
    /// Untimed sessions run before each lane's clock starts.
    warmup_trials: usize,
    /// Master seed of every lane.
    seed: u64,
    /// The measured lanes.
    lanes: Vec<ThroughputLane>,
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("bench_throughput: {message}");
    std::process::exit(2)
}

struct Args {
    trials: usize,
    seed: u64,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        trials: 512,
        seed: 7,
        out: "BENCH_throughput.json".to_string(),
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(format_args!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--trials" => {
                parsed.trials = value("--trials")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --trials: {e}")));
                if parsed.trials == 0 {
                    fail("--trials must be at least 1");
                }
            }
            "--seed" => {
                parsed.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|e| fail(format_args!("invalid --seed: {e}")));
            }
            "--out" => parsed.out = value("--out"),
            "--check" => parsed.check = Some(value("--check")),
            other => fail(format_args!("unknown option `{other}`")),
        }
    }
    parsed
}

fn finish_lane(
    parallelism: &str,
    workers: usize,
    scenario: &Scenario,
    trials: usize,
    seconds: f64,
) -> ThroughputLane {
    let lane = ThroughputLane {
        parallelism: parallelism.to_string(),
        workers,
        backend: scenario.backend.to_string(),
        scenario: scenario.label.clone(),
        trials,
        seconds,
        trials_per_sec: if seconds > 0.0 {
            trials as f64 / seconds
        } else {
            f64::INFINITY
        },
    };
    eprintln!(
        "{} on {} ({}): {} trials in {:.2}s = {:.2} trials/s",
        lane.parallelism,
        lane.backend,
        lane.scenario,
        lane.trials,
        lane.seconds,
        lane.trials_per_sec
    );
    lane
}

fn measure(
    scenario: &Scenario,
    trials: usize,
    seed: u64,
    parallelism: Parallelism,
) -> ThroughputLane {
    let engine = SessionEngine::new(seed).with_parallelism(parallelism);
    engine
        .run_trials(scenario, WARMUP_TRIALS)
        .unwrap_or_else(|e| fail(format_args!("warm-up trials failed: {e}")));
    let start = std::time::Instant::now();
    let summary = engine
        .run_trials(scenario, trials)
        .unwrap_or_else(|e| fail(format_args!("throughput trials failed: {e}")));
    let seconds = start.elapsed().as_secs_f64();
    finish_lane(
        &parallelism.to_string(),
        parallelism.worker_count(),
        scenario,
        summary.trials,
        seconds,
    )
}

/// The shardctl pipeline as one lane: plan the run, split it into shards,
/// execute every shard (serially, like a fleet replayed on one machine),
/// and merge the results. The lane therefore prices the whole
/// plan/execute/merge protocol, not just the trial loop.
fn measure_sharded(scenario: &Scenario, trials: usize, seed: u64) -> ThroughputLane {
    let engine = SessionEngine::new(seed).with_parallelism(Parallelism::Serial);
    // Warm this thread's pools on the same scenario before the clock starts.
    engine
        .run_trials(scenario, WARMUP_TRIALS)
        .unwrap_or_else(|e| fail(format_args!("warm-up trials failed: {e}")));
    let shards = Parallelism::Auto.worker_count().max(2);
    let start = std::time::Instant::now();
    let plan = engine.plan(scenario, trials);
    let mut merger = ShardMerger::new();
    for shard in plan.split_into(shards) {
        if shard.is_empty() {
            continue;
        }
        let result = engine
            .execute_shard(&shard, ShardOutput::Summary)
            .unwrap_or_else(|e| fail(format_args!("shard execution failed: {e}")));
        merger
            .push(result)
            .unwrap_or_else(|e| fail(format_args!("shard merge failed: {e}")));
    }
    let merged = merger
        .finish()
        .unwrap_or_else(|e| fail(format_args!("shard merge failed: {e}")));
    let seconds = start.elapsed().as_secs_f64();
    let summary = merged
        .into_summary()
        .unwrap_or_else(|| fail("sharded lane did not produce a summary"));
    finish_lane("sharded", shards, scenario, summary.trials, seconds)
}

/// Finds the serial lane for `backend` whose scenario label starts with
/// `scenario_prefix` in the fresh report.
fn serial_lane<'a>(
    report: &'a ThroughputReport,
    backend: BackendKind,
    scenario_prefix: &str,
) -> Option<&'a ThroughputLane> {
    report.lanes.iter().find(|lane| {
        lane.parallelism == "serial"
            && lane.backend == backend.to_string()
            && lane.scenario.starts_with(scenario_prefix)
    })
}

/// The sweep-workload speedup of the serial pauli-twirled lane over the
/// serial density-matrix lane.
fn twirl_speedup(report: &ThroughputReport) -> f64 {
    let dm = serial_lane(report, BackendKind::DensityMatrix, "sweep-")
        .unwrap_or_else(|| fail("fresh report has no serial density-matrix sweep lane"));
    let twirled = serial_lane(report, BackendKind::PauliTwirled, "sweep-")
        .unwrap_or_else(|| fail("fresh report has no serial pauli-twirled sweep lane"));
    twirled.trials_per_sec / dm.trials_per_sec
}

/// Compares the fresh report against a committed one: same lane structure
/// (parallelism × backend × scenario, in order), the serial density-matrix
/// demo lane at no less than half the committed throughput, and the serial
/// pauli-twirled sweep lane at no less than [`TWIRL_SPEEDUP_FLOOR`]× the
/// serial density-matrix sweep lane.
fn check_against(report: &ThroughputReport, path: &str) {
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
    let committed = serde::json::parse(&committed)
        .unwrap_or_else(|e| fail(format_args!("cannot parse {path}: {e}")));
    let lanes = committed
        .get_field("lanes")
        .and_then(|lanes| lanes.as_seq())
        .unwrap_or_else(|e| fail(format_args!("{path}: {e}")));
    let shape = |parallelism: &str, backend: &str, scenario: &str| {
        format!("{parallelism} on {backend} ({scenario})")
    };
    let committed_shape: Vec<String> = lanes
        .iter()
        .map(|lane| {
            let field = |name: &str| {
                lane.get_field(name)
                    .and_then(|v| v.as_str().map(str::to_string))
                    .unwrap_or_else(|e| fail(format_args!("{path}: lane {e}")))
            };
            shape(&field("parallelism"), &field("backend"), &field("scenario"))
        })
        .collect();
    let fresh_shape: Vec<String> = report
        .lanes
        .iter()
        .map(|lane| shape(&lane.parallelism, &lane.backend, &lane.scenario))
        .collect();
    if committed_shape != fresh_shape {
        fail(format_args!(
            "lane structure drifted from {path}: committed [{}] vs fresh [{}] — \
             regenerate the committed report with this binary",
            committed_shape.join(", "),
            fresh_shape.join(", ")
        ));
    }
    let committed_serial_dm = lanes
        .iter()
        .find(|lane| {
            let field = |name: &str| {
                lane.get_field(name)
                    .and_then(|v| v.as_str().map(str::to_string))
                    .unwrap_or_default()
            };
            field("parallelism") == "serial"
                && field("backend") == BackendKind::default().to_string()
                && !field("scenario").starts_with("sweep-")
        })
        .and_then(|lane| {
            lane.get_field("trials_per_sec")
                .and_then(|v| v.as_f64())
                .ok()
        })
        .unwrap_or_else(|| fail(format_args!("{path}: no serial density-matrix demo lane")));
    let fresh_serial_dm = serial_lane(report, BackendKind::default(), "shardctl-")
        .map(|lane| lane.trials_per_sec)
        .unwrap_or_else(|| fail("fresh report has no serial density-matrix demo lane"));
    if fresh_serial_dm < committed_serial_dm / 2.0 {
        fail(format_args!(
            "serial density-matrix throughput regressed more than 2x: \
             committed {committed_serial_dm:.2} trials/s vs fresh {fresh_serial_dm:.2} trials/s"
        ));
    }
    let speedup = twirl_speedup(report);
    if speedup < TWIRL_SPEEDUP_FLOOR {
        fail(format_args!(
            "pauli-twirled sweep speedup regressed below {TWIRL_SPEEDUP_FLOOR}x: \
             measured {speedup:.1}x over the serial density-matrix sweep lane"
        ));
    }
    eprintln!(
        "check ok vs {path}: lane structure matches, serial density-matrix \
         {fresh_serial_dm:.2} trials/s >= committed {committed_serial_dm:.2} / 2, \
         pauli-twirled sweep speedup {speedup:.1}x >= {TWIRL_SPEEDUP_FLOOR}x"
    );
}

fn main() {
    let args = parse_args();
    let scenario = bench::shard_io::demo_scenario("intercept", args.seed, BackendKind::default())
        .unwrap_or_else(|e| fail(e));
    let mut lanes = Vec::new();
    for backend in BackendKind::ALL {
        let scenario = scenario.clone().with_backend(backend);
        for parallelism in [Parallelism::Serial, Parallelism::Auto] {
            lanes.push(measure(&scenario, args.trials, args.seed, parallelism));
        }
        lanes.push(measure_sharded(&scenario, args.trials, args.seed));
    }
    // The η-sweep lanes: one serial lane per backend on the noisy honest
    // workload, where the substrates separate. The density-matrix lane pays
    // SWEEP_ETA placement applications per pair, so it gets a smaller trial
    // budget to keep the bench under a minute.
    let sweep_trials = (args.trials / 4).max(32);
    for backend in BackendKind::ALL {
        let sweep = bench::sweep_scenario(SWEEP_ETA, args.seed, backend);
        lanes.push(measure(
            &sweep,
            sweep_trials,
            args.seed,
            Parallelism::Serial,
        ));
    }
    let report = ThroughputReport {
        version: 3,
        scenario: scenario.label.clone(),
        scenario_fingerprint: scenario.fingerprint(),
        trials: args.trials,
        warmup_trials: WARMUP_TRIALS,
        seed: args.seed,
        lanes,
    };
    let serial_dm = serial_lane(&report, BackendKind::default(), "shardctl-")
        .map(|lane| lane.trials_per_sec)
        .unwrap_or_else(|| fail("no serial density-matrix demo lane measured"));
    eprintln!(
        "kernel comparison (serial density-matrix): legacy embedded operators \
         {LEGACY_SERIAL_DM_TRIALS_PER_SEC:.2} trials/s -> compiled kernels {serial_dm:.2} \
         trials/s = {:.1}x",
        serial_dm / LEGACY_SERIAL_DM_TRIALS_PER_SEC
    );
    eprintln!(
        "substrate comparison (serial, η={SWEEP_ETA} sweep): pauli-twirled runs {:.1}x \
         the density-matrix lane (floor for --check: {TWIRL_SPEEDUP_FLOOR}x)",
        twirl_speedup(&report)
    );
    if let Some(path) = &args.check {
        check_against(&report, path);
    }
    let json = serde::json::to_string(&report.to_value());
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| fail(format_args!("cannot write {}: {e}", args.out)));
    eprintln!("wrote {}", args.out);
    println!("{json}");
}
