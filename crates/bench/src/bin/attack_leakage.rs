//! Information-leakage audit (Section III-E): inspects the public classical transcripts of
//! many honest sessions and reports what an eavesdropper could learn from them.

fn main() {
    bench::announce_parallelism();
    let audit = bench::leakage_experiment(40, 2024);
    println!("# Information-leakage audit of the classical channel\n");
    println!("transcripts audited       : {}", audit.transcripts);
    println!("classical messages        : {}", audit.messages);
    println!("unexpected message kinds  : {:?}", audit.unexpected_kinds);
    println!(
        "announced Bell results    : {}",
        audit.announced_bell_results
    );
    println!(
        "announced distribution    : {:?} (uniform = [0.25, 0.25, 0.25, 0.25])",
        audit.bell_result_distribution
    );
    println!(
        "distribution bias (TV)    : {:.4}",
        audit.bell_distribution_bias()
    );
    println!(
        "I(announced ; id_B)       : {:.4} bits (paper: Eve gains no information)",
        audit.mutual_information_with_id_b.unwrap_or(0.0)
    );
    println!(
        "\nstructurally clean: {} — only whitelisted announcement kinds ever cross the channel.",
        audit.structurally_clean()
    );
}
