//! Man-in-the-middle attack simulation (Sections III-C and IV).

use analysis::report::render_markdown_table;
use bench::ChannelAttackKind;

fn main() {
    let backend = bench::backend_from_args();
    bench::announce_parallelism();
    let (attacked, honest) =
        bench::channel_attack_experiment_on(ChannelAttackKind::ManInTheMiddle, backend, 20, 13);
    println!("# Man-in-the-middle attack vs honest channel ({backend} backend)\n");
    let cells: Vec<Vec<String>> = [attacked, honest]
        .iter()
        .map(|r| {
            vec![
                r.attack.clone(),
                r.trials.to_string(),
                r.delivered.to_string(),
                format!("{:.3}", r.detection_rate),
                format!("{:.3}", r.mean_chsh_round1.unwrap_or(f64::NAN)),
                format!("{:.3}", r.mean_chsh_round2.unwrap_or(f64::NAN)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_markdown_table(
            &[
                "scenario",
                "trials",
                "delivered",
                "detection rate",
                "mean S1",
                "mean S2"
            ],
            &cells
        )
    );
    println!("expected shape: Eve's substituted qubits give S2 ≤ 2 → protocol aborts every time.");
}
