//! Criterion bench for Table I generation (protocol descriptors → comparison rows).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/rows", |b| {
        b.iter(|| black_box(bench::table1_rows()));
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
