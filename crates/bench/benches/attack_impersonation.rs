//! Criterion bench for the impersonation-attack experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use protocol::session::Impersonation;
use std::hint::black_box;

fn bench_impersonation(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_impersonation");
    group.sample_size(10);
    group.bench_function("l4/5trials", |b| {
        b.iter(|| {
            black_box(bench::impersonation_experiment(
                &[4],
                Impersonation::OfBob,
                5,
                3,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_impersonation);
criterion_main!(benches);
