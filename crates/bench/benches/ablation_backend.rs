//! Ablation: statevector vs density-matrix execution, at two levels.
//!
//! *Circuit level*: the Fig. 2/3 message-transfer circuit sampled on the ideal
//! statevector simulator vs the noisy density-matrix executor.
//!
//! *Session level*: full engine sessions on the two production [`Backend`]s —
//! the exact [`DensityMatrixBackend`] emulation vs the sampled
//! [`StatevectorBackend`], which *can* represent the noise channels by
//! Born-sampling one Kraus branch per application (Monte-Carlo wavefunction
//! trajectories). The `ablation_backend` *binary* quantifies where the
//! sampled substrate's detection-rate curves diverge; this bench quantifies
//! what the cheaper substrate buys in wall time.
//!
//! [`Backend`]: protocol::engine::Backend
//! [`DensityMatrixBackend`]: protocol::engine::DensityMatrixBackend
//! [`StatevectorBackend`]: protocol::engine::StatevectorBackend

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noise::{DeviceModel, NoisyExecutor};
use protocol::engine::{BackendKind, Scenario, SessionEngine};
use protocol::identity::IdentityPair;
use protocol::SessionConfig;
use qchannel::quantum::ChannelSpec;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backend");
    group.sample_size(10);
    for eta in [10usize, 200] {
        let circuit = bench::message_transfer_circuit("10", eta);
        group.bench_with_input(
            BenchmarkId::new("statevector_ideal", eta),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                    black_box(circuit.sample(32, &mut rng).unwrap())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("density_matrix_noisy", eta),
            &circuit,
            |b, circuit| {
                let executor = NoisyExecutor::new(DeviceModel::ibm_brisbane_like());
                b.iter(|| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                    black_box(executor.sample(circuit, 32, &mut rng).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_session_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backend_session");
    group.sample_size(10);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let identities = IdentityPair::generate(4, &mut rng);
    let config = SessionConfig::builder()
        .message_bits(8)
        .check_bits(2)
        .di_check_pairs(24)
        .channel(ChannelSpec::noisy_identity_chain(
            10,
            DeviceModel::ibm_brisbane_like(),
        ))
        .build()
        .expect("bench config is valid");
    for kind in BackendKind::ALL {
        let scenario = Scenario::new(config.clone(), identities.clone())
            .with_label(format!("bench-{kind}"))
            .with_backend(kind);
        group.bench_with_input(
            BenchmarkId::new("noisy_session", kind.as_str()),
            &scenario,
            |b, scenario| {
                let engine = SessionEngine::new(3);
                b.iter(|| black_box(engine.run(scenario).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends, bench_session_backends);
criterion_main!(benches);
