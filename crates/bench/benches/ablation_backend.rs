//! Ablation: statevector vs density-matrix execution of the message-transfer circuit.
//!
//! The statevector back-end cannot represent the noise channels, so the production path uses
//! the density-matrix executor; this ablation quantifies the cost of that choice on the exact
//! circuit the Fig. 2/3 experiments run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noise::{DeviceModel, NoisyExecutor};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backend");
    group.sample_size(10);
    for eta in [10usize, 200] {
        let circuit = bench::message_transfer_circuit("10", eta);
        group.bench_with_input(
            BenchmarkId::new("statevector_ideal", eta),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                    black_box(circuit.sample(32, &mut rng).unwrap())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("density_matrix_noisy", eta),
            &circuit,
            |b, circuit| {
                let executor = NoisyExecutor::new(DeviceModel::ibm_brisbane_like());
                b.iter(|| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
                    black_box(executor.sample(circuit, 32, &mut rng).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
