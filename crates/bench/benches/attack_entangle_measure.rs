//! Criterion bench for the entangle-and-measure attack experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_entangle(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_entangle_measure");
    group.sample_size(10);
    group.bench_function("2trials", |b| {
        b.iter(|| {
            black_box(bench::channel_attack_experiment(
                bench::ChannelAttackKind::EntangleMeasure,
                2,
                6,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_entangle);
criterion_main!(benches);
