//! Criterion bench for the Fig. 2 experiment (message histograms at η = 10).

use criterion::{criterion_group, criterion_main, Criterion};
use noise::DeviceModel;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let device = DeviceModel::ibm_brisbane_like();
    let ideal = DeviceModel::ideal();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("noisy/eta10/64shots", |b| {
        b.iter(|| black_box(bench::fig2_experiment(&device, 10, 64, 1)));
    });
    group.bench_function("ideal/eta10/64shots", |b| {
        b.iter(|| black_box(bench::fig2_experiment(&ideal, 10, 64, 1)));
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
