//! Criterion bench for the man-in-the-middle attack experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_mitm(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_mitm");
    group.sample_size(10);
    group.bench_function("2trials", |b| {
        b.iter(|| {
            black_box(bench::channel_attack_experiment(
                bench::ChannelAttackKind::ManInTheMiddle,
                2,
                5,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_mitm);
criterion_main!(benches);
