//! Criterion bench for the CHSH-estimation experiment (check-pair budget sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_chsh(c: &mut Criterion) {
    let mut group = c.benchmark_group("chsh_estimation");
    group.sample_size(10);
    for d in [100usize, 400] {
        group.bench_with_input(BenchmarkId::new("pairs", d), &d, |b, &d| {
            b.iter(|| black_box(bench::chsh_baseline_experiment(&[d], &[0.05], 2, 7)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chsh);
criterion_main!(benches);
