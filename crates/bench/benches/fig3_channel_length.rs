//! Criterion bench for the Fig. 3 sweep (accuracy vs channel length).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noise::DeviceModel;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let device = DeviceModel::ibm_brisbane_like();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for eta in [10usize, 100, 700] {
        group.bench_with_input(BenchmarkId::new("single_point", eta), &eta, |b, &eta| {
            b.iter(|| black_box(bench::fig3_experiment(&device, &[eta], 32, 2)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
