//! Criterion bench for the intercept-and-resend attack experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_intercept(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_intercept_resend");
    group.sample_size(10);
    group.bench_function("2trials", |b| {
        b.iter(|| {
            black_box(bench::channel_attack_experiment(
                bench::ChannelAttackKind::InterceptResend,
                2,
                4,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_intercept);
criterion_main!(benches);
