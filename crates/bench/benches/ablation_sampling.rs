//! Ablation: per-shot re-measurement vs prefix-evolution sampling.
//!
//! The noisy executor evolves the deterministic gate/noise prefix of a circuit once and only
//! re-samples the measurement suffix per shot. This ablation compares that against the naive
//! strategy of re-running the whole circuit for every shot.

use criterion::{criterion_group, criterion_main, Criterion};
use noise::{DeviceModel, NoisyExecutor};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let circuit = bench::message_transfer_circuit("11", 100);
    let executor = NoisyExecutor::new(DeviceModel::ibm_brisbane_like());
    let mut group = c.benchmark_group("ablation_sampling");
    group.sample_size(10);
    group.bench_function("prefix_evolution/64shots", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            black_box(executor.sample(&circuit, 64, &mut rng).unwrap())
        });
    });
    group.bench_function("full_rerun/64shots", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let mut counts = qsim::Counts::new();
            for _ in 0..64 {
                let (_, bits) = executor.run(&circuit, &mut rng).unwrap();
                let label: String = bits
                    .iter()
                    .map(|b| if *b == 1 { '1' } else { '0' })
                    .collect();
                counts.record(label);
            }
            black_box(counts)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
