//! Criterion bench establishing the batching baseline: per-call legacy sessions versus
//! `SessionEngine::run_batch` over the same workload. Future perf PRs (threaded fan-out,
//! shared-state reuse) will be measured against these numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protocol::engine::{Scenario, SessionEngine};
use protocol::identity::IdentityPair;
use rand::SeedableRng;
use std::hint::black_box;

fn scenarios(count: usize) -> Vec<Scenario> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let config = bench::attack_session_config();
    (0..count)
        .map(|i| {
            Scenario::new(config.clone(), IdentityPair::generate(3, &mut rng))
                .with_label(format!("bench-{i}"))
        })
        .collect()
}

fn bench_engine_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    for count in [1usize, 4] {
        let batch = scenarios(count);
        group.bench_with_input(
            BenchmarkId::new("legacy_per_call", count),
            &batch,
            |b, batch| {
                b.iter(|| {
                    // The pre-engine shape: every consumer hand-rolls its own loop with
                    // one deprecated call per session.
                    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                    #[allow(deprecated)]
                    for scenario in batch {
                        for _ in 0..2 {
                            black_box(
                                protocol::session::run_session(
                                    &scenario.config,
                                    &scenario.identities,
                                    &mut rng,
                                )
                                .unwrap(),
                            );
                        }
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine_run_batch", count),
            &batch,
            |b, batch| {
                let engine = SessionEngine::new(7);
                b.iter(|| black_box(engine.run_batch(batch, 2).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_batch);
criterion_main!(benches);
