//! Placeholder; filled in with the SessionEngine batching bench.
fn main() {}
