//! Criterion bench for the engine's batch execution: the legacy per-call shape versus
//! `SessionEngine::run_batch`, and — since the parallel executor landed — serial versus
//! `Threads(2)`, `Threads(4)` and `Threads(8)` fan-out over the standard scenario mix, so the
//! speedup from multi-threaded trial execution is measured rather than asserted. Every mode
//! produces bit-for-bit identical summaries (asserted once before timing); only wall time may
//! differ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protocol::engine::{Adversary, Parallelism, Scenario, SessionEngine};
use protocol::identity::IdentityPair;
use protocol::message::SecretMessage;
use protocol::session::Impersonation;
use qchannel::quantum::NoTap;
use qchannel::taps::InterceptBasis;
use rand::SeedableRng;
use std::hint::black_box;

/// The standard scenario mix: honest sessions plus one early-aborting attack, so the
/// scheduler sees realistically uneven per-trial costs.
fn scenarios(count: usize) -> Vec<Scenario> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let config = bench::attack_session_config();
    (0..count)
        .map(|i| {
            let scenario = Scenario::new(config.clone(), IdentityPair::generate(3, &mut rng))
                .with_label(format!("bench-{i}"));
            if i % 4 == 3 {
                scenario.with_adversary(Adversary::InterceptResend(InterceptBasis::Computational))
            } else {
                scenario
            }
        })
        .collect()
}

fn bench_engine_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    for count in [1usize, 4] {
        let batch = scenarios(count);
        group.bench_with_input(
            BenchmarkId::new("manual_per_call", count),
            &batch,
            |b, batch| {
                b.iter(|| {
                    // The pre-engine shape: every consumer hand-rolls its own loop,
                    // threading one sequential RNG through `run_with` per session.
                    let engine = SessionEngine::default();
                    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                    for scenario in batch {
                        for _ in 0..2 {
                            let message =
                                SecretMessage::random(scenario.config.message_bits(), &mut rng);
                            black_box(
                                engine
                                    .run_with(
                                        &scenario.config,
                                        &scenario.identities,
                                        &message,
                                        Impersonation::None,
                                        &mut NoTap,
                                        &mut rng,
                                    )
                                    .unwrap(),
                            );
                        }
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine_run_batch", count),
            &batch,
            |b, batch| {
                let engine = SessionEngine::new(7);
                b.iter(|| black_box(engine.run_batch(batch, 2).unwrap()))
            },
        );
    }
    group.finish();
}

/// Serial vs threaded throughput over the standard scenario mix. The interesting number is
/// trials/second by mode: with ≥ 4 cores, `threads:4` should clear 1.5× serial.
fn bench_parallel_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_parallelism");
    group.sample_size(10);
    let batch = scenarios(4);
    let trials = 4;

    // Guard the claim the bench exists to quantify: identical results in every mode.
    let reference = SessionEngine::new(7).run_batch(&batch, trials).unwrap();
    for mode in [
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Threads(8),
    ] {
        let threaded = SessionEngine::new(7)
            .with_parallelism(mode)
            .run_batch(&batch, trials)
            .unwrap();
        assert_eq!(threaded, reference, "{mode} diverged from serial");
    }

    for mode in [
        Parallelism::Serial,
        Parallelism::Threads(2),
        Parallelism::Threads(4),
        Parallelism::Threads(8),
    ] {
        group.bench_with_input(BenchmarkId::new("run_batch", mode), &batch, |b, batch| {
            let engine = SessionEngine::new(7).with_parallelism(mode);
            b.iter(|| black_box(engine.run_batch(batch, trials).unwrap()))
        });
    }
    // One stats-carrying run per mode so `cargo bench` output shows the fan-out shape
    // (per-worker trial counts, wall time) next to the timings.
    for mode in [Parallelism::Serial, Parallelism::Threads(4)] {
        let engine = SessionEngine::new(7).with_parallelism(mode);
        let (_, stats) = engine.run_batch_with_stats(&batch, trials).unwrap();
        println!(
            "engine_parallelism/{mode}: {stats} ({:.1} trials/s)",
            stats.throughput()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_batch, bench_parallel_modes);
criterion_main!(benches);
