//! # analysis — statistics and experiment-data plumbing for the UA-DI-QSDC evaluation
//!
//! The bench harness produces the paper's tables and figures; this crate supplies the shared
//! machinery:
//!
//! - [`stats`] — means, standard deviations, binomial confidence intervals, linear trends.
//! - [`rows`] — one plain-data row type per experiment (Fig. 2 histogram row, Fig. 3 sweep
//!   point, attack summaries, Table I rows) so results can be serialised and rendered
//!   uniformly.
//! - [`report`] — markdown and CSV rendering of row collections.
//! - [`histogram`] — helpers for turning [`qsim::Counts`] into figure rows and fidelities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod report;
pub mod rows;
pub mod stats;

pub use report::{render_csv, render_markdown_table};
pub use rows::{AccuracyPoint, AttackRow, DetectionPoint, HistogramRow, Table1Row};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::histogram::{counts_to_row, ideal_distribution_for};
    pub use crate::report::{render_csv, render_markdown_table};
    pub use crate::rows::{AccuracyPoint, AttackRow, DetectionPoint, HistogramRow, Table1Row};
    pub use crate::stats::{
        binomial_confidence_interval, linear_trend, mean, population_std_dev, Summary,
    };
}
