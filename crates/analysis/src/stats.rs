//! Small statistics toolkit.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `None` for an empty slice.
///
/// ```rust
/// # use analysis::stats::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population standard deviation; `None` for an empty slice.
pub fn population_std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let variance = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(variance.sqrt())
}

/// Normal-approximation (Wald) confidence interval for a binomial proportion.
///
/// Returns `(lower, upper)`, both clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `successes > trials` or `trials == 0`.
pub fn binomial_confidence_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    assert!(trials > 0, "confidence interval needs at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    let p = successes as f64 / trials as f64;
    let half_width = z * (p * (1.0 - p) / trials as f64).sqrt();
    ((p - half_width).max(0.0), (p + half_width).min(1.0))
}

/// Wilson-score confidence interval for a binomial proportion.
///
/// Unlike the Wald interval from [`binomial_confidence_interval`], the Wilson
/// score stays well-behaved at the extremes (`successes == 0` or
/// `successes == trials`) and for small `trials`, which is exactly where
/// detection/false-alarm rates live — campaign reports use it for their
/// uncertainty columns. Returns `(lower, upper)`, both clamped to `[0, 1]`.
///
/// ```rust
/// # use analysis::stats::wilson_interval;
/// let (lo, hi) = wilson_interval(0, 20, 1.96);
/// assert_eq!(lo, 0.0);
/// assert!(hi > 0.0 && hi < 0.2); // Wald would collapse to (0, 0)
/// ```
///
/// # Panics
///
/// Panics if `successes > trials`, `trials == 0`, or `z` is negative.
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    assert!(trials > 0, "confidence interval needs at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    assert!(z >= 0.0, "z-score must be non-negative");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let half_width = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // At the degenerate proportions the bound is exactly 0 or 1 in exact
    // arithmetic; pin it so rounding in the division cannot leak a
    // 0.999…8-style bound into serialized reports.
    let lower = if successes == 0 {
        0.0
    } else {
        ((centre - half_width) / denom).max(0.0)
    };
    let upper = if successes == trials {
        1.0
    } else {
        ((centre + half_width) / denom).min(1.0)
    };
    (lower, upper)
}

/// Least-squares linear trend `y ≈ slope·x + intercept` over paired samples.
///
/// Returns `None` when fewer than two distinct x values are supplied.
pub fn linear_trend(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|(x, _)| x).sum();
    let sy: f64 = points.iter().map(|(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some((slope, intercept))
}

/// A mean ± standard-deviation summary of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub samples: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl Summary {
    /// Summarises a slice of samples; `None` when empty.
    pub fn of(values: &[f64]) -> Option<Self> {
        let mean_value = mean(values)?;
        let std_dev = population_std_dev(values)?;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Self {
            samples: values.len(),
            mean: mean_value,
            std_dev,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert!((population_std_dev(&xs).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(population_std_dev(&[]), None);
    }

    #[test]
    fn confidence_interval_brackets_the_proportion() {
        let (lo, hi) = binomial_confidence_interval(75, 100, 1.96);
        assert!(lo < 0.75 && 0.75 < hi);
        assert!(lo > 0.6 && hi < 0.9);
        let (lo, hi) = binomial_confidence_interval(0, 10, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.35);
        let (lo, hi) = binomial_confidence_interval(10, 10, 1.96);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.65);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn confidence_interval_rejects_zero_trials() {
        let _ = binomial_confidence_interval(0, 0, 1.96);
    }

    #[test]
    fn wilson_interval_brackets_the_proportion() {
        // Mid-range: close to (but tighter against the extremes than) Wald.
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!((lo - 0.4038).abs() < 5e-4, "lo = {lo}");
        assert!((hi - 0.5962).abs() < 5e-4, "hi = {hi}");
        // Extremes: non-degenerate, unlike the Wald interval.
        let (lo, hi) = wilson_interval(0, 20, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.1 && hi < 0.2, "hi = {hi}");
        let (lo, hi) = wilson_interval(20, 20, 1.96);
        assert_eq!(hi, 1.0);
        assert!(lo > 0.8 && lo < 0.9, "lo = {lo}");
        // z = 0 collapses to the point estimate.
        let (lo, hi) = wilson_interval(3, 4, 0.0);
        assert_eq!((lo, hi), (0.75, 0.75));
        // More trials tighten the interval.
        let narrow = wilson_interval(500, 1000, 1.96);
        let wide = wilson_interval(5, 10, 1.96);
        assert!(narrow.1 - narrow.0 < wide.1 - wide.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_interval_rejects_zero_trials() {
        let _ = wilson_interval(0, 0, 1.96);
    }

    #[test]
    fn linear_trend_recovers_slope() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 - 0.5 * i as f64)).collect();
        let (slope, intercept) = linear_trend(&points).unwrap();
        assert!((slope + 0.5).abs() < 1e-9);
        assert!((intercept - 3.0).abs() < 1e-9);
        assert_eq!(linear_trend(&[(1.0, 1.0)]), None);
        assert_eq!(linear_trend(&[(1.0, 1.0), (1.0, 2.0)]), None);
    }

    #[test]
    fn summary_of_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.samples, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(Summary::of(&[]).is_none());
    }
}
