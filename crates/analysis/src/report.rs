//! Markdown and CSV rendering of experiment results.

/// Renders a markdown table from a header row and data rows.
///
/// # Panics
///
/// Panics if any row has a different number of cells than the header.
///
/// ```rust
/// # use analysis::report::render_markdown_table;
/// let table = render_markdown_table(
///     &["η", "accuracy"],
///     &[vec!["10".to_string(), "0.96".to_string()]],
/// );
/// assert!(table.contains("| η | accuracy |"));
/// ```
pub fn render_markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(
            row.len(),
            header.len(),
            "every row must have exactly one cell per header column"
        );
    }
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&header.join(" | "));
    out.push_str(" |\n|");
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Renders a CSV document (comma-separated, newline-terminated rows, simple quoting of cells
/// containing commas or quotes).
pub fn render_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &header
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_structure() {
        let table = render_markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert!(lines[3].contains('3'));
    }

    #[test]
    #[should_panic(expected = "one cell per header column")]
    fn mismatched_row_width_panics() {
        let _ = render_markdown_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_escaping() {
        let csv = render_csv(
            &["name", "value"],
            &[
                vec!["plain".into(), "1".into()],
                vec!["with,comma".into(), "say \"hi\"".into()],
            ],
        );
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn empty_rows_render_header_only() {
        let md = render_markdown_table(&["x"], &[]);
        assert_eq!(md.lines().count(), 2);
        let csv = render_csv(&["x"], &[]);
        assert_eq!(csv.lines().count(), 1);
    }
}
