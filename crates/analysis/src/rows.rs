//! Plain-data row types for every experiment in the evaluation.
//!
//! Keeping one serialisable struct per experiment keeps the bench binaries small: they run the
//! protocol, fill rows, and hand them to [`crate::report`] for rendering.

use serde::{Deserialize, Serialize};

/// One bar group of Fig. 2: Bob's measurement counts for a given encoded message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramRow {
    /// The 2-bit message Alice encoded (`"00"`, `"01"`, `"10"`, `"11"`).
    pub encoded: String,
    /// Counts of Bob's decoded outcomes in the order `00, 01, 10, 11`.
    pub counts: [u64; 4],
    /// Number of shots.
    pub shots: u64,
    /// Classical fidelity of the observed distribution against the ideal (point-mass) one.
    pub fidelity: f64,
}

impl HistogramRow {
    /// The fraction of shots that decoded to the encoded message.
    pub fn accuracy(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let index = match self.encoded.as_str() {
            "00" => 0,
            "01" => 1,
            "10" => 2,
            _ => 3,
        };
        self.counts[index] as f64 / self.shots as f64
    }
}

/// One point of Fig. 3: message accuracy at a given channel length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyPoint {
    /// Channel length η (number of identity gates).
    pub eta: usize,
    /// Channel duration in microseconds (η × 60 ns on `ibm_brisbane`).
    pub duration_us: f64,
    /// Fraction of shots whose decoded 2-bit message matched the encoded one.
    pub accuracy: f64,
    /// Shots used for the estimate.
    pub shots: u64,
}

/// One row of the Table I comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Protocol name.
    pub protocol: String,
    /// Resource type column.
    pub resource: String,
    /// Decoding-measurement column.
    pub measurement: String,
    /// Qubits per message bit column.
    pub qubits_per_bit: f64,
    /// User-authentication column.
    pub user_authentication: bool,
}

/// One point of the impersonation-detection experiment: measured vs analytic detection
/// probability as a function of the identity length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionPoint {
    /// Identity length `l` in qubits.
    pub identity_qubits: usize,
    /// Trials run.
    pub trials: usize,
    /// Measured detection rate.
    pub measured: f64,
    /// Analytic probability `1 − (1/4)^l`.
    pub analytic: f64,
}

impl DetectionPoint {
    /// Absolute deviation between measurement and theory.
    pub fn deviation(&self) -> f64 {
        (self.measured - self.analytic).abs()
    }
}

/// One row of a channel-attack experiment (intercept-resend, MITM, entangle-and-measure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackRow {
    /// Attack name.
    pub attack: String,
    /// Sessions attempted.
    pub trials: usize,
    /// Sessions in which the message still got through.
    pub delivered: usize,
    /// Overall detection rate.
    pub detection_rate: f64,
    /// Mean CHSH of the first DI check.
    pub mean_chsh_round1: Option<f64>,
    /// Mean CHSH of the second DI check.
    pub mean_chsh_round2: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_row_accuracy_uses_the_encoded_column() {
        let row = HistogramRow {
            encoded: "10".into(),
            counts: [15, 1, 967, 41],
            shots: 1024,
            fidelity: 0.94,
        };
        assert!((row.accuracy() - 967.0 / 1024.0).abs() < 1e-12);
        let empty = HistogramRow {
            encoded: "00".into(),
            counts: [0; 4],
            shots: 0,
            fidelity: 0.0,
        };
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn detection_point_deviation() {
        let p = DetectionPoint {
            identity_qubits: 2,
            trials: 100,
            measured: 0.92,
            analytic: 0.9375,
        };
        assert!((p.deviation() - 0.0175).abs() < 1e-12);
    }

    #[test]
    fn rows_serialize_to_json_like_debug() {
        let row = Table1Row {
            protocol: "Proposed UA-DI-QSDC".into(),
            resource: "Entanglement".into(),
            measurement: "BSM".into(),
            qubits_per_bit: 1.0,
            user_authentication: true,
        };
        let text = format!("{row:?}");
        assert!(text.contains("Proposed"));
        let attack = AttackRow {
            attack: "mitm".into(),
            trials: 10,
            delivered: 0,
            detection_rate: 1.0,
            mean_chsh_round1: Some(2.8),
            mean_chsh_round2: Some(0.1),
        };
        assert!(format!("{attack:?}").contains("mitm"));
        let point = AccuracyPoint {
            eta: 700,
            duration_us: 42.0,
            accuracy: 0.57,
            shots: 1024,
        };
        assert!(format!("{point:?}").contains("700"));
    }
}
