//! Helpers for turning shot-count histograms into figure rows.

use crate::rows::HistogramRow;
use qsim::counts::Counts;

/// The four two-bit outcome labels in display order.
pub const MESSAGE_LABELS: [&str; 4] = ["00", "01", "10", "11"];

/// The ideal (noise-free) outcome distribution when `encoded` was sent: a point mass on the
/// encoded label.
///
/// # Panics
///
/// Panics if `encoded` is not one of `00`, `01`, `10`, `11`.
pub fn ideal_distribution_for(encoded: &str) -> [f64; 4] {
    let mut dist = [0.0; 4];
    let index = MESSAGE_LABELS
        .iter()
        .position(|&l| l == encoded)
        .unwrap_or_else(|| panic!("{encoded:?} is not a 2-bit message label"));
    dist[index] = 1.0;
    dist
}

/// Converts a [`Counts`] histogram for one encoded message into a Fig. 2 row, computing the
/// classical fidelity against the ideal point-mass distribution.
///
/// # Panics
///
/// Panics if `encoded` is not one of the four 2-bit labels.
pub fn counts_to_row(encoded: &str, counts: &Counts) -> HistogramRow {
    let ideal = ideal_distribution_for(encoded);
    let fidelity = counts.fidelity_with(&MESSAGE_LABELS, &ideal);
    HistogramRow {
        encoded: encoded.to_string(),
        counts: [
            counts.get("00"),
            counts.get("01"),
            counts.get("10"),
            counts.get("11"),
        ],
        shots: counts.total(),
        fidelity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2a_counts() -> Counts {
        // The paper's Fig. 2(a): Alice encoded "00".
        let mut c = Counts::new();
        c.record_many("00", 957);
        c.record_many("01", 40);
        c.record_many("10", 25);
        c.record_many("11", 2);
        c
    }

    #[test]
    fn ideal_distributions_are_point_masses() {
        assert_eq!(ideal_distribution_for("00"), [1.0, 0.0, 0.0, 0.0]);
        assert_eq!(ideal_distribution_for("11"), [0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "not a 2-bit message label")]
    fn invalid_label_panics() {
        let _ = ideal_distribution_for("2");
    }

    #[test]
    fn counts_to_row_matches_paper_numbers() {
        let row = counts_to_row("00", &fig2a_counts());
        assert_eq!(row.counts, [957, 40, 25, 2]);
        assert_eq!(row.shots, 1024);
        assert!((row.accuracy() - 957.0 / 1024.0).abs() < 1e-12);
        // The paper reports average fidelity ≥ 0.95 for η = 10; 957/1024 ≈ 0.934 is the raw
        // point-mass fidelity of panel (a) alone.
        assert!(row.fidelity > 0.9);
    }

    #[test]
    fn empty_counts_give_zero_row() {
        let row = counts_to_row("01", &Counts::new());
        assert_eq!(row.shots, 0);
        assert_eq!(row.counts, [0; 4]);
        assert_eq!(row.accuracy(), 0.0);
    }
}
