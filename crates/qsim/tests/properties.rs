//! Property-based tests for the quantum simulator.

use mathkit::complex::Complex64;
use proptest::prelude::*;
use qsim::bell::{bell_measure, BellState};
use qsim::gates;
use qsim::pauli::Pauli;
use qsim::statevector::StateVector;
use rand::SeedableRng;

fn angle() -> impl Strategy<Value = f64> {
    -std::f64::consts::PI..std::f64::consts::PI
}

fn pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::Z),
        Just(Pauli::X),
        Just(Pauli::IY),
    ]
}

fn bell_state() -> impl Strategy<Value = BellState> {
    prop_oneof![
        Just(BellState::PhiPlus),
        Just(BellState::PhiMinus),
        Just(BellState::PsiPlus),
        Just(BellState::PsiMinus),
    ]
}

proptest! {
    /// Any sequence of gates drawn from the protocol's alphabet keeps the state normalised.
    #[test]
    fn unitary_evolution_preserves_normalisation(
        seed in 0u64..1000,
        ops in prop::collection::vec(0usize..6, 1..40),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut state = StateVector::new(3);
        for op in ops {
            match op {
                0 => state.apply_single(&gates::hadamard(), 0),
                1 => state.apply_single(&gates::pauli_x(), 1),
                2 => state.apply_single(&gates::s_gate(), 2),
                3 => state.apply_two(&gates::cnot(), 0, 1),
                4 => state.apply_two(&gates::cz(), 1, 2),
                _ => { let _ = state.measure(0, &mut rng); }
            }
            prop_assert!(state.is_normalized(1e-8));
        }
    }

    /// U3 unitaries with arbitrary Euler angles keep probabilities summing to one.
    #[test]
    fn arbitrary_single_qubit_rotations_preserve_probability(
        theta in angle(), phi in angle(), lambda in angle()
    ) {
        let mut state = StateVector::new(2);
        state.apply_single(&gates::u3(theta, phi, lambda), 0);
        state.apply_single(&gates::u3(lambda, theta, phi), 1);
        let total: f64 = state.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// The Pauli-encoding / Bell-measurement round trip always recovers the encoded operator,
    /// regardless of which Bell state the pair started in.
    #[test]
    fn pauli_encoding_round_trip(start in bell_state(), p in pauli(), seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut state = start.statevector();
        state.apply_single(&p.matrix(), 0);
        let outcome = bell_measure(&mut state, 0, 1, &mut rng);
        prop_assert_eq!(outcome.state, start.after_pauli(p));
    }

    /// Cover operations compose: applying cover then encoding equals applying the composed
    /// Pauli (this is the algebra the authentication step relies on).
    #[test]
    fn cover_operation_composition(cover in pauli(), encode in pauli(), seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut state = BellState::PhiPlus.statevector();
        state.apply_single(&cover.matrix(), 0);
        state.apply_single(&encode.matrix(), 0);
        let outcome = bell_measure(&mut state, 0, 1, &mut rng);
        prop_assert_eq!(outcome.state.encoding_pauli(), cover.compose(encode));
    }

    /// Basis-change measurement statistics: measuring the +1 eigenstate of B(θ) in basis B(θ)
    /// always yields +1, for any θ.
    #[test]
    fn basis_eigenstate_measurement_is_deterministic(theta in angle(), seed in 0u64..500) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let amps = mathkit::vector::CVector::new(vec![
            Complex64::real(std::f64::consts::FRAC_1_SQRT_2),
            Complex64::cis(theta) * std::f64::consts::FRAC_1_SQRT_2,
        ]);
        let mut state = StateVector::from_amplitudes(amps).unwrap();
        prop_assert!(state.measure_in_basis(0, theta, &mut rng).is_plus());
    }

    /// The analytic CHSH value never exceeds Tsirelson's bound for any two-qubit pure state
    /// reachable by local rotations of a Bell state.
    #[test]
    fn chsh_respects_tsirelson(theta in angle(), phi in angle(), lambda in angle()) {
        let mut state = BellState::PhiPlus.statevector();
        state.apply_single(&gates::u3(theta, phi, lambda), 0);
        let s = qsim::chsh::analytic_chsh(&state);
        prop_assert!(s.abs() <= qsim::chsh::TSIRELSON_BOUND + 1e-9);
    }

    /// Sampling indices from any circuit-produced state only returns indices with non-zero
    /// probability.
    #[test]
    fn sampling_respects_support(seed in 0u64..200) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut state = StateVector::new(2);
        state.apply_single(&gates::hadamard(), 0);
        state.apply_two(&gates::cnot(), 0, 1);
        let probs = state.probabilities();
        for idx in state.sample_indices(200, &mut rng) {
            prop_assert!(probs[idx] > 0.0);
        }
    }
}
