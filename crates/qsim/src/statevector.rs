//! Pure-state (statevector) simulation.
//!
//! [`StateVector`] holds the 2^n complex amplitudes of an n-qubit register and supports
//! applying arbitrary unitaries to any subset of qubits, projective measurement (in the
//! computational basis or in the parameterised bases used by the DI security check), and
//! multi-shot sampling.

use crate::error::QsimError;
use crate::gates;
use crate::measurement::MeasurementOutcome;
use mathkit::complex::Complex64;
use mathkit::matrix::CMatrix;
use mathkit::vector::CVector;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pure quantum state of `n` qubits.
///
/// Qubit `0` is the leftmost (most significant) qubit of the basis label:
/// `|q0 q1 … q_{n-1}⟩` has index `q0·2^{n-1} + … + q_{n-1}`.
///
/// # Examples
///
/// ```rust
/// use qsim::statevector::StateVector;
/// use qsim::gates;
///
/// let mut psi = StateVector::new(2);
/// psi.apply_single(&gates::hadamard(), 0);
/// psi.apply_two(&gates::cnot(), 0, 1);
/// let probs = psi.probabilities();
/// assert!((probs[0] - 0.5).abs() < 1e-12); // |00⟩
/// assert!((probs[3] - 0.5).abs() < 1e-12); // |11⟩
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: CVector,
}

impl StateVector {
    /// Creates the all-zeros state `|0…0⟩` on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero or large enough to overflow the amplitude vector
    /// (more than 24 qubits is rejected to keep memory bounded).
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "register must have at least one qubit");
        assert!(
            num_qubits <= 24,
            "statevector simulation limited to 24 qubits"
        );
        let mut amplitudes = CVector::zeros(1 << num_qubits);
        amplitudes[0] = Complex64::ONE;
        Self {
            num_qubits,
            amplitudes,
        }
    }

    /// Creates a state from raw amplitudes.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::DimensionMismatch`] if the length is not a power of two and
    /// [`QsimError::NotNormalized`] if the amplitudes are not normalised.
    pub fn from_amplitudes(amplitudes: CVector) -> Result<Self, QsimError> {
        let len = amplitudes.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(QsimError::DimensionMismatch {
                expected: len.next_power_of_two().max(2),
                actual: len,
            });
        }
        if !amplitudes.is_normalized(1e-8) {
            return Err(QsimError::NotNormalized);
        }
        Ok(Self {
            num_qubits: len.trailing_zeros() as usize,
            amplitudes,
        })
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension of the underlying Hilbert space (`2^n`).
    pub fn dim(&self) -> usize {
        1 << self.num_qubits
    }

    /// Immutable view of the amplitudes.
    pub fn amplitudes(&self) -> &CVector {
        &self.amplitudes
    }

    /// Mutable view of the amplitudes, for the in-place compiled kernels
    /// (`crate::kernel`). Crate-private: external callers go through the
    /// validated operations so the state stays normalised.
    pub(crate) fn amplitudes_mut(&mut self) -> &mut CVector {
        &mut self.amplitudes
    }

    /// Consumes the state and returns the amplitude vector.
    pub fn into_amplitudes(self) -> CVector {
        self.amplitudes
    }

    /// Born-rule probabilities of all `2^n` basis outcomes.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.probabilities()
    }

    /// Returns `true` when the total probability is within `tol` of 1.
    pub fn is_normalized(&self, tol: f64) -> bool {
        self.amplitudes.is_normalized(tol)
    }

    /// Renormalises the state in place (used after noise injection and by the
    /// sampled trajectory step).
    ///
    /// # Panics
    ///
    /// Panics when the state has (near-)zero norm; use
    /// [`StateVector::try_renormalize`] for the fallible variant.
    pub fn renormalize(&mut self) {
        self.try_renormalize()
            .expect("renormalize: state has (near-)zero norm");
    }

    /// Renormalises the state in place, guarding against the zero vector.
    ///
    /// # Errors
    ///
    /// Returns [`QsimError::ZeroNorm`] when the norm is below
    /// [`MIN_NORM`](Self::MIN_NORM) (or not finite): dividing by it would
    /// poison every amplitude with NaN or infinity. The state is left
    /// untouched in that case.
    pub fn try_renormalize(&mut self) -> Result<(), QsimError> {
        let norm = self.amplitudes.norm();
        if !norm.is_finite() || norm <= Self::MIN_NORM {
            return Err(QsimError::ZeroNorm);
        }
        self.amplitudes = self.amplitudes.scale(Complex64::real(1.0 / norm));
        Ok(())
    }

    /// Smallest norm [`try_renormalize`](Self::try_renormalize) accepts, and
    /// the probability floor below which a Kraus branch counts as impossible
    /// in [`apply_kraus_sampled`](Self::apply_kraus_sampled).
    pub const MIN_NORM: f64 = 1e-12;

    /// Applies one **sampled trajectory step** of the CPTP map `{K_i}` to the
    /// given qubits: selects branch `i` with the Born probability
    /// `p_i = ‖K_i|ψ⟩‖²` and replaces the state with the renormalised branch
    /// state `K_i|ψ⟩ / √p_i`. Averaging `|ψ⟩⟨ψ|` over many samples reproduces
    /// the exact channel action `Σ_i K_i ρ K_i†` — the Monte-Carlo
    /// wavefunction (quantum-trajectory) unravelling of the channel.
    ///
    /// Exactly one `f64` is drawn from `rng` per call, so a caller's RNG
    /// stream advances identically no matter which branch wins. Branches with
    /// probability at or below [`MIN_NORM`](Self::MIN_NORM) are never
    /// selected, so a ≈ 0-probability Kraus operator (e.g. the flip branch of
    /// `bit_flip(0.0)`) cannot zero out the state.
    ///
    /// Returns the index of the selected Kraus operator.
    ///
    /// # Errors
    ///
    /// - The target-validation errors of [`StateVector::try_apply_unitary`]
    ///   (dimension mismatch, out-of-range or duplicate qubits).
    /// - [`QsimError::ZeroNorm`] when every branch has vanishing probability
    ///   (an empty or numerically annihilating operator set); the state is
    ///   left untouched.
    pub fn apply_kraus_sampled<R: Rng + ?Sized>(
        &mut self,
        operators: &[CMatrix],
        qubits: &[usize],
        rng: &mut R,
    ) -> Result<usize, QsimError> {
        let mut branches: Vec<StateVector> = Vec::with_capacity(operators.len());
        let mut probabilities: Vec<f64> = Vec::with_capacity(operators.len());
        for op in operators {
            let mut branch = self.clone();
            branch.try_apply_unitary(op, qubits)?;
            probabilities.push(branch.amplitudes.norm_sqr());
            branches.push(branch);
        }
        let index = sample_branch_index(&probabilities, rng)?;
        let mut chosen = branches.swap_remove(index);
        chosen.try_renormalize()?;
        *self = chosen;
        Ok(index)
    }

    /// Bit position (shift amount) of `qubit` in a basis index.
    #[inline]
    fn bit(&self, qubit: usize) -> usize {
        self.num_qubits - 1 - qubit
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), QsimError> {
        if qubit >= self.num_qubits {
            Err(QsimError::QubitOutOfRange {
                qubit,
                num_qubits: self.num_qubits,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a single-qubit unitary to `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range or the gate is not 2×2. Use
    /// [`StateVector::try_apply_unitary`] for a fallible variant.
    pub fn apply_single(&mut self, gate: &CMatrix, qubit: usize) {
        self.try_apply_unitary(gate, &[qubit])
            .expect("apply_single: invalid gate application");
    }

    /// Applies a two-qubit unitary to `(qubit_a, qubit_b)`, with `qubit_a` the more
    /// significant index of the gate matrix.
    ///
    /// # Panics
    ///
    /// Panics if the qubits are out of range, equal, or the gate is not 4×4.
    pub fn apply_two(&mut self, gate: &CMatrix, qubit_a: usize, qubit_b: usize) {
        self.try_apply_unitary(gate, &[qubit_a, qubit_b])
            .expect("apply_two: invalid gate application");
    }

    /// Applies a `2^k × 2^k` unitary to the ordered list of `k` target qubits.
    ///
    /// The first qubit in `qubits` corresponds to the most significant bit of the gate's
    /// basis ordering.
    ///
    /// # Errors
    ///
    /// - [`QsimError::QubitOutOfRange`] if any target is outside the register.
    /// - [`QsimError::DuplicateQubit`] if a target repeats.
    /// - [`QsimError::DimensionMismatch`] if the matrix dimension is not `2^k`.
    pub fn try_apply_unitary(&mut self, gate: &CMatrix, qubits: &[usize]) -> Result<(), QsimError> {
        let k = qubits.len();
        let gate_dim = 1usize << k;
        if gate.rows() != gate_dim || gate.cols() != gate_dim {
            return Err(QsimError::DimensionMismatch {
                expected: gate_dim,
                actual: gate.rows(),
            });
        }
        for (i, &q) in qubits.iter().enumerate() {
            self.check_qubit(q)?;
            if qubits[..i].contains(&q) {
                return Err(QsimError::DuplicateQubit(q));
            }
        }

        let shifts: Vec<usize> = qubits.iter().map(|&q| self.bit(q)).collect();
        let target_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        let dim = self.dim();
        let amps = self.amplitudes.as_mut_slice();

        // Iterate over every basis index whose target bits are all zero; each such index is
        // the anchor of a 2^k-dimensional block the gate acts on.
        let mut scratch_in = vec![Complex64::ZERO; gate_dim];
        let mut scratch_out = vec![Complex64::ZERO; gate_dim];
        for base in 0..dim {
            if base & target_mask != 0 {
                continue;
            }
            // Gather the block.
            #[allow(clippy::needless_range_loop)]
            // `sub` indexes both the scratch block and the bit pattern
            for sub in 0..gate_dim {
                let mut idx = base;
                for (bit_pos, &shift) in shifts.iter().enumerate() {
                    if (sub >> (k - 1 - bit_pos)) & 1 == 1 {
                        idx |= 1 << shift;
                    }
                }
                scratch_in[sub] = amps[idx];
            }
            // Multiply.
            for (row, out) in scratch_out.iter_mut().enumerate() {
                let mut acc = Complex64::ZERO;
                for (col, &amp) in scratch_in.iter().enumerate() {
                    acc += gate[(row, col)] * amp;
                }
                *out = acc;
            }
            // Scatter back.
            #[allow(clippy::needless_range_loop)]
            // `sub` indexes both the scratch block and the bit pattern
            for sub in 0..gate_dim {
                let mut idx = base;
                for (bit_pos, &shift) in shifts.iter().enumerate() {
                    if (sub >> (k - 1 - bit_pos)) & 1 == 1 {
                        idx |= 1 << shift;
                    }
                }
                amps[idx] = scratch_out[sub];
            }
        }
        Ok(())
    }

    /// Probability that measuring `qubit` in the computational basis yields `1`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn probability_one(&self, qubit: usize) -> f64 {
        self.check_qubit(qubit)
            .expect("probability_one: qubit out of range");
        let mask = 1usize << self.bit(qubit);
        self.amplitudes
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, z)| z.norm_sqr())
            .sum()
    }

    /// Measures `qubit` in the computational (Z) basis, collapsing the state.
    ///
    /// Returns the observed bit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn measure<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> u8 {
        let p1 = self.probability_one(qubit);
        let outcome = if rng.gen::<f64>() < p1 { 1u8 } else { 0u8 };
        self.collapse(qubit, outcome);
        outcome
    }

    /// Projects `qubit` onto the given computational-basis outcome and renormalises.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range or the projected state has zero probability.
    pub fn collapse(&mut self, qubit: usize, outcome: u8) {
        self.check_qubit(qubit)
            .expect("collapse: qubit out of range");
        let mask = 1usize << self.bit(qubit);
        let keep_set = outcome == 1;
        for (i, amp) in self.amplitudes.as_mut_slice().iter_mut().enumerate() {
            if ((i & mask) != 0) != keep_set {
                *amp = Complex64::ZERO;
            }
        }
        let norm = self.amplitudes.norm();
        assert!(
            norm > 1e-12,
            "collapse onto a zero-probability outcome (qubit {qubit}, outcome {outcome})"
        );
        self.amplitudes = self.amplitudes.scale(Complex64::real(1.0 / norm));
    }

    /// Measures `qubit` in the basis `B(θ) = {(|0⟩ + e^{iθ}|1⟩)/√2, (|0⟩ − e^{iθ}|1⟩)/√2}`,
    /// collapsing the state.
    ///
    /// This is exactly the measurement the DI security check performs; the returned
    /// [`MeasurementOutcome`] maps bit `0` (first basis vector) to eigenvalue `+1` and bit `1`
    /// to `−1`.
    pub fn measure_in_basis<R: Rng + ?Sized>(
        &mut self,
        qubit: usize,
        theta: f64,
        rng: &mut R,
    ) -> MeasurementOutcome {
        let rotation = gates::basis_change(theta);
        self.apply_single(&rotation, qubit);
        let bit = self.measure(qubit, rng);
        // Rotate back so that subsequent operations see the post-measurement state expressed
        // in the computational basis of the original frame.
        self.apply_single(&rotation.adjoint(), qubit);
        MeasurementOutcome::from_bit(bit)
    }

    /// Measures every qubit in the computational basis, collapsing the state.
    ///
    /// Returns the bits in qubit order (index 0 first).
    pub fn measure_all<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<u8> {
        (0..self.num_qubits).map(|q| self.measure(q, rng)).collect()
    }

    /// Samples `shots` full-register outcomes from the current distribution **without**
    /// collapsing the state. Returns basis indices.
    pub fn sample_indices<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Vec<usize> {
        let probs = self.probabilities();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        (0..shots)
            .map(|_| {
                let r: f64 = rng.gen::<f64>() * acc;
                match cumulative.binary_search_by(|c| c.partial_cmp(&r).unwrap()) {
                    Ok(i) | Err(i) => i.min(probs.len() - 1),
                }
            })
            .collect()
    }

    /// Formats a basis index as a bitstring in qubit order.
    pub fn bitstring(&self, index: usize) -> String {
        (0..self.num_qubits)
            .map(|q| {
                if index & (1 << self.bit(q)) != 0 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }

    /// The density matrix `|ψ⟩⟨ψ|` of this pure state.
    pub fn to_density_matrix(&self) -> CMatrix {
        CMatrix::outer(&self.amplitudes, &self.amplitudes)
    }

    /// Fidelity `|⟨ψ|φ⟩|²` with another pure state.
    ///
    /// # Panics
    ///
    /// Panics if the registers have different sizes.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "fidelity of states with different register sizes"
        );
        self.amplitudes.fidelity(&other.amplitudes)
    }

    /// Expectation value `⟨ψ|O|ψ⟩` of a Hermitian observable on the full register.
    ///
    /// # Panics
    ///
    /// Panics if the observable dimension does not match the register.
    pub fn expectation(&self, observable: &CMatrix) -> f64 {
        assert_eq!(
            observable.rows(),
            self.dim(),
            "observable dimension does not match register"
        );
        let applied = observable.apply(&self.amplitudes);
        self.amplitudes.inner(&applied).re
    }
}

/// Born-samples one Kraus branch from the given weights — the selection core
/// shared by [`StateVector::apply_kraus_sampled`] and
/// [`DensityMatrix::apply_kraus_sampled`](crate::density::DensityMatrix::apply_kraus_sampled),
/// so the two substrates can never diverge in branch statistics.
///
/// Draws exactly one `f64` from `rng` (one uniform draw over the total
/// weight); the first viable branch — probability above
/// [`StateVector::MIN_NORM`] — whose cumulative weight exceeds the draw wins,
/// and the last viable branch absorbs floating-point shortfall at the top of
/// the range.
///
/// # Errors
///
/// [`QsimError::ZeroNorm`] when the total weight vanishes (or is not finite)
/// or no branch is individually viable.
pub(crate) fn sample_branch_index<R: Rng + ?Sized>(
    probabilities: &[f64],
    rng: &mut R,
) -> Result<usize, QsimError> {
    let total: f64 = probabilities.iter().sum();
    if !total.is_finite() || total <= StateVector::MIN_NORM {
        return Err(QsimError::ZeroNorm);
    }
    let draw = rng.gen::<f64>() * total;
    let mut cumulative = 0.0;
    let mut selected = None;
    let mut last_viable = None;
    for (index, &p) in probabilities.iter().enumerate() {
        cumulative += p;
        if p > StateVector::MIN_NORM {
            last_viable = Some(index);
            if selected.is_none() && draw < cumulative {
                selected = Some(index);
            }
        }
    }
    selected.or(last_viable).ok_or(QsimError::ZeroNorm)
}

impl fmt::Display for StateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, amp) in self.amplitudes.iter().enumerate() {
            if amp.norm_sqr() > 1e-12 {
                if !first {
                    write!(f, " + ")?;
                }
                write!(f, "({amp})|{}⟩", self.bitstring(i))?;
                first = false;
            }
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12345)
    }

    fn bell_phi_plus() -> StateVector {
        let mut s = StateVector::new(2);
        s.apply_single(&gates::hadamard(), 0);
        s.apply_two(&gates::cnot(), 0, 1);
        s
    }

    #[test]
    fn new_state_is_all_zeros() {
        let s = StateVector::new(3);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.dim(), 8);
        assert!((s.probabilities()[0] - 1.0).abs() < 1e-12);
        assert!(s.is_normalized(1e-12));
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubit_register_panics() {
        let _ = StateVector::new(0);
    }

    #[test]
    fn from_amplitudes_validates() {
        let ok = StateVector::from_amplitudes(CVector::from_reals(&[FRAC_1_SQRT_2, FRAC_1_SQRT_2]));
        assert!(ok.is_ok());
        let err = StateVector::from_amplitudes(CVector::from_reals(&[1.0, 1.0]));
        assert_eq!(err.unwrap_err(), QsimError::NotNormalized);
        let err = StateVector::from_amplitudes(CVector::from_reals(&[1.0, 0.0, 0.0]));
        assert!(matches!(err, Err(QsimError::DimensionMismatch { .. })));
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut s = StateVector::new(1);
        s.apply_single(&gates::hadamard(), 0);
        assert!((s.probability_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pauli_x_flips_the_correct_qubit() {
        let mut s = StateVector::new(3);
        s.apply_single(&gates::pauli_x(), 1);
        // Expect |010⟩ = index 2.
        assert!((s.probabilities()[2] - 1.0).abs() < 1e-12);
        assert_eq!(s.bitstring(2), "010");
    }

    #[test]
    fn bell_pair_preparation_gives_phi_plus() {
        let s = bell_phi_plus();
        let probs = s.probabilities();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[3] - 0.5).abs() < 1e-12);
        assert!(probs[1].abs() < 1e-12 && probs[2].abs() < 1e-12);
    }

    #[test]
    fn cnot_on_non_adjacent_qubits() {
        // 3-qubit register, CNOT between qubit 0 (control) and qubit 2 (target).
        let mut s = StateVector::new(3);
        s.apply_single(&gates::pauli_x(), 0); // |100⟩
        s.apply_two(&gates::cnot(), 0, 2);
        // Expect |101⟩ = index 5.
        assert!((s.probabilities()[5] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn apply_unitary_rejects_bad_input() {
        let mut s = StateVector::new(2);
        assert!(matches!(
            s.try_apply_unitary(&gates::cnot(), &[0, 0]),
            Err(QsimError::DuplicateQubit(0))
        ));
        assert!(matches!(
            s.try_apply_unitary(&gates::cnot(), &[0, 5]),
            Err(QsimError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            s.try_apply_unitary(&gates::hadamard(), &[0, 1]),
            Err(QsimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn measurement_of_basis_state_is_deterministic() {
        let mut s = StateVector::new(2);
        s.apply_single(&gates::pauli_x(), 1); // |01⟩
        let mut r = rng();
        assert_eq!(s.measure(0, &mut r), 0);
        assert_eq!(s.measure(1, &mut r), 1);
    }

    #[test]
    fn bell_pair_measurements_are_perfectly_correlated() {
        let mut r = rng();
        for _ in 0..50 {
            let mut s = bell_phi_plus();
            let a = s.measure(0, &mut r);
            let b = s.measure(1, &mut r);
            assert_eq!(a, b, "Φ+ must give identical outcomes on both halves");
        }
    }

    #[test]
    fn collapse_renormalises() {
        let mut s = bell_phi_plus();
        s.collapse(0, 1);
        assert!(s.is_normalized(1e-12));
        // After projecting qubit 0 to 1, the state is |11⟩.
        assert!((s.probabilities()[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn collapse_onto_impossible_outcome_panics() {
        let mut s = StateVector::new(1); // |0⟩
        s.collapse(0, 1);
    }

    #[test]
    fn measure_in_basis_theta_zero_matches_x_basis_statistics() {
        // |0⟩ measured in B(0) (the X basis) is ±1 with probability 1/2 each.
        let mut r = rng();
        let mut plus = 0;
        let n = 2000;
        for _ in 0..n {
            let mut s = StateVector::new(1);
            if s.measure_in_basis(0, 0.0, &mut r).is_plus() {
                plus += 1;
            }
        }
        let frac = plus as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac = {frac}");
    }

    #[test]
    fn measure_in_basis_eigenstate_is_deterministic() {
        // The state (|0⟩ + e^{iθ}|1⟩)/√2 is the +1 eigenstate of B(θ).
        let theta = 1.234;
        let mut r = rng();
        for _ in 0..20 {
            let amps = CVector::new(vec![
                Complex64::real(FRAC_1_SQRT_2),
                Complex64::cis(theta) * FRAC_1_SQRT_2,
            ]);
            let mut s = StateVector::from_amplitudes(amps).unwrap();
            assert!(s.measure_in_basis(0, theta, &mut r).is_plus());
        }
    }

    #[test]
    fn sample_indices_matches_distribution() {
        let s = bell_phi_plus();
        let mut r = rng();
        let samples = s.sample_indices(4000, &mut r);
        let count00 = samples.iter().filter(|&&i| i == 0).count();
        let count11 = samples.iter().filter(|&&i| i == 3).count();
        assert_eq!(count00 + count11, 4000, "only |00⟩ and |11⟩ may appear");
        let frac = count00 as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05);
    }

    #[test]
    fn fidelity_and_density_matrix() {
        let s = bell_phi_plus();
        assert!((s.fidelity(&s) - 1.0).abs() < 1e-12);
        let zero = StateVector::new(2);
        assert!((s.fidelity(&zero) - 0.5).abs() < 1e-12);
        let rho = s.to_density_matrix();
        assert!(rho.is_density_matrix(1e-9));
    }

    #[test]
    fn expectation_of_z_on_zero_state() {
        let s = StateVector::new(1);
        assert!((s.expectation(&gates::pauli_z()) - 1.0).abs() < 1e-12);
        let mut minus = StateVector::new(1);
        minus.apply_single(&gates::pauli_x(), 0);
        assert!((minus.expectation(&gates::pauli_z()) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_chsh_observable_on_bell_state() {
        // ⟨Φ+| (A ⊗ B) |Φ+⟩ for A = Z, B = (Z + X)/√2 equals 1/√2.
        let s = bell_phi_plus();
        let b = (&gates::pauli_z() + &gates::pauli_x()).scale(Complex64::real(FRAC_1_SQRT_2));
        let obs = gates::pauli_z().kron(&b);
        assert!((s.expectation(&obs) - FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn display_shows_nonzero_terms() {
        let s = bell_phi_plus();
        let text = s.to_string();
        assert!(text.contains("|00⟩"));
        assert!(text.contains("|11⟩"));
        assert!(!text.contains("|01⟩"));
    }

    #[test]
    fn bitstring_round_trip() {
        let s = StateVector::new(4);
        assert_eq!(s.bitstring(0b1010), "1010");
        assert_eq!(s.bitstring(0b0001), "0001");
    }

    #[test]
    fn try_renormalize_rejects_the_zero_vector() {
        let mut zero = bell_phi_plus();
        for amp in [0, 1, 2, 3] {
            zero.amplitudes[amp] = Complex64::ZERO;
        }
        assert_eq!(zero.try_renormalize(), Err(QsimError::ZeroNorm));
        // The state is untouched — no NaN poisoning.
        assert!(zero.amplitudes().iter().all(|z| z.re == 0.0 && z.im == 0.0));
        let mut fine = bell_phi_plus();
        fine.amplitudes[0] *= Complex64::real(2.0);
        assert!(fine.try_renormalize().is_ok());
        assert!(fine.is_normalized(1e-12));
    }

    #[test]
    #[should_panic(expected = "(near-)zero norm")]
    fn renormalize_panics_on_the_zero_vector() {
        let mut s = StateVector::new(1);
        s.amplitudes[0] = Complex64::ZERO;
        s.renormalize();
    }

    #[test]
    fn sampled_bit_flip_matches_the_channel_statistics() {
        // bit_flip(0.3)-style Kraus pair: √0.7·I, √0.3·X.
        let ops = vec![
            gates::identity().scale(Complex64::real(0.7f64.sqrt())),
            gates::pauli_x().scale(Complex64::real(0.3f64.sqrt())),
        ];
        let mut r = rng();
        let mut flips = 0;
        let n = 4000;
        for _ in 0..n {
            let mut s = StateVector::new(1);
            let branch = s.apply_kraus_sampled(&ops, &[0], &mut r).unwrap();
            assert!(s.is_normalized(1e-12), "every trajectory stays normalised");
            if branch == 1 {
                flips += 1;
                assert!((s.probability_one(0) - 1.0).abs() < 1e-12);
            }
        }
        let frac = flips as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "flip fraction {frac}");
    }

    #[test]
    fn zero_probability_branches_are_never_selected() {
        // bit_flip(0.0): the X branch carries exactly zero weight; selecting
        // it would renormalise a zero vector.
        let ops = vec![gates::identity(), gates::pauli_x().scale(Complex64::ZERO)];
        let mut r = rng();
        for _ in 0..200 {
            let mut s = StateVector::new(1);
            assert_eq!(s.apply_kraus_sampled(&ops, &[0], &mut r).unwrap(), 0);
            assert!(s.is_normalized(1e-12));
        }
    }

    #[test]
    fn all_vanishing_branches_are_a_zero_norm_error() {
        let ops = vec![gates::identity().scale(Complex64::ZERO)];
        let mut s = bell_phi_plus();
        let before = s.clone();
        let mut r = rng();
        assert_eq!(
            s.apply_kraus_sampled(&ops, &[0], &mut r),
            Err(QsimError::ZeroNorm)
        );
        assert_eq!(s, before, "a failed step must leave the state untouched");
        // An empty operator set is equally impossible.
        assert_eq!(
            s.apply_kraus_sampled(&[], &[0], &mut r),
            Err(QsimError::ZeroNorm)
        );
    }

    #[test]
    fn sampled_step_validates_targets() {
        let mut s = StateVector::new(2);
        let mut r = rng();
        assert!(matches!(
            s.apply_kraus_sampled(&[gates::identity()], &[5], &mut r),
            Err(QsimError::QubitOutOfRange { .. })
        ));
        assert!(matches!(
            s.apply_kraus_sampled(&[gates::cnot()], &[0], &mut r),
            Err(QsimError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn sampled_trajectories_average_to_the_exact_channel() {
        // Mean of |ψ⟩⟨ψ| over sampled depolarizing trajectories approximates
        // Σ K ρ K† on a Bell pair half.
        let p: f64 = 0.4;
        let ops = vec![
            gates::identity().scale(Complex64::real((1.0 - 3.0 * p / 4.0).sqrt())),
            gates::pauli_x().scale(Complex64::real((p / 4.0).sqrt())),
            gates::pauli_y().scale(Complex64::real((p / 4.0).sqrt())),
            gates::pauli_z().scale(Complex64::real((p / 4.0).sqrt())),
        ];
        // Exact channel action via the density representation.
        let mut rho = crate::density::DensityMatrix::from_statevector(&bell_phi_plus());
        rho.apply_kraus(&ops, &[0]);
        let exact = rho.matrix().clone();
        let mut r = rng();
        let n = 4000;
        let mut mean = CMatrix::zeros(4, 4);
        for _ in 0..n {
            let mut s = bell_phi_plus();
            s.apply_kraus_sampled(&ops, &[0], &mut r).unwrap();
            mean = &mean + &s.to_density_matrix();
        }
        mean = mean.scale(Complex64::real(1.0 / n as f64));
        assert!(
            mean.approx_eq(&exact, 0.03),
            "trajectory mean must approximate the exact channel"
        );
    }

    #[test]
    fn three_qubit_ghz_state() {
        let mut s = StateVector::new(3);
        s.apply_single(&gates::hadamard(), 0);
        s.apply_two(&gates::cnot(), 0, 1);
        s.apply_two(&gates::cnot(), 1, 2);
        let probs = s.probabilities();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[7] - 0.5).abs() < 1e-12);
        // All three measurement outcomes agree.
        let mut r = rng();
        let bits = s.clone().measure_all(&mut r);
        assert!(bits.iter().all(|&b| b == bits[0]));
    }
}
